"""Micro-benchmarks of the library's building blocks.

Unlike the experiment benchmarks these use pytest-benchmark's normal
repeated timing, giving throughput numbers for the kernel, the loser
tree, the drive model, and a full simulation trial.
"""

import random

from repro.core.merge_sim import MergeTrial
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.mergesort.records import make_records
from repro.mergesort.tournament import LoserTree
from repro.sim import Simulator
from repro.workloads.depletion import random_depletion_sequence


def test_kernel_event_throughput(benchmark):
    """Schedule-and-fire cost of 10k chained timeouts."""

    def run():
        sim = Simulator()

        def body():
            for _ in range(10_000):
                yield sim.timeout(1.0)

        sim.process(body())
        sim.run()
        return sim.now

    assert benchmark(run) == 10_000.0


def test_loser_tree_merge_rate(benchmark):
    rng = random.Random(1)
    sources = [
        sorted(make_records(rng.randrange(1_000_000) for _ in range(1000)))
        for _ in range(32)
    ]

    def run():
        return sum(1 for _ in LoserTree(sources))

    assert benchmark(run) == 32_000


def test_depletion_sequence_rate(benchmark):
    def run():
        return sum(1 for _ in random_depletion_sequence(50, 1000, seed=3))

    assert benchmark(run) == 50_000


def test_file_sort_throughput(benchmark, tmp_path):
    """Records/second through the full file-sort pipeline."""
    from repro.io.filesort import FileSorter, write_random_input

    input_path = tmp_path / "input.blk"
    write_random_input(input_path, 20_000, seed=4)
    sorter = FileSorter(
        memory_records=2048,
        temp_dirs=[tmp_path / "d0", tmp_path / "d1"],
    )
    counter = iter(range(1_000_000))

    def run():
        output = tmp_path / f"out-{next(counter)}.blk"
        return sorter.sort_file(input_path, output).records

    assert benchmark(run) == 20_000


def test_merge_trial_no_prefetch(benchmark):
    config = SimulationConfig(
        num_runs=10, num_disks=2, strategy=PrefetchStrategy.NONE,
        blocks_per_run=200, trials=1,
    )

    def run():
        return MergeTrial(config, seed=1).run().blocks_depleted

    assert benchmark(run) == 2000


def test_merge_trial_inter_run(benchmark):
    config = SimulationConfig(
        num_runs=10, num_disks=5, strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10, blocks_per_run=200, trials=1,
    )

    def run():
        return MergeTrial(config, seed=1).run().blocks_depleted

    assert benchmark(run) == 2000
