"""Benchmarks regenerating Figure 3.2 (total time vs N).

Shape assertions encode the paper's qualitative claims: intra-run on
one disk is slowest everywhere; distributing runs over disks helps even
without prefetching overlap; inter-run prefetching dominates; all
curves fall as N grows.
"""

from conftest import run_once

from repro.experiments import get_experiment


def _column(table, header):
    index = table.headers.index(header)
    return [row[index] for row in table.rows]


def test_fig_32a(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("fig-3.2a").run(bench_scale))
    table = result.tables[0]
    intra1 = _column(table, "DemandRunOnly D=1")
    intra5 = _column(table, "DemandRunOnly D=5")
    inter5 = _column(table, "AllDisksOneRun D=5")
    # Who wins: inter < intra(5) < intra(1) at every N.
    for a, b, c in zip(inter5, intra5, intra1):
        assert a < b < c
    # Prefetching helps: the N=30 end is far below the N=1 end.
    assert intra1[-1] < intra1[0] / 3
    assert inter5[-1] < inter5[0] / 3


def test_fig_32b(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("fig-3.2b").run(bench_scale))
    table = result.tables[0]
    intra1 = _column(table, "DemandRunOnly D=1")
    intra10 = _column(table, "DemandRunOnly D=10")
    inter5 = _column(table, "AllDisksOneRun D=5")
    inter10 = _column(table, "AllDisksOneRun D=10")
    for row in zip(inter10, inter5, intra10, intra1):
        assert row[0] < row[2] < row[3]  # inter D=10 < intra D=10 < intra D=1
        assert row[1] < row[3]
    # More disks help inter-run prefetching roughly proportionally.
    assert inter10[-1] < inter5[-1]


def test_fig_32c(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("fig-3.2c").run(bench_scale))
    table = result.tables[0]
    inter25 = _column(table, "AllDisksOneRun k=25")
    intra25 = _column(table, "DemandRunOnly k=25")
    inter50 = _column(table, "AllDisksOneRun k=50")
    intra50 = _column(table, "DemandRunOnly k=50")
    for a, b in zip(inter25, intra25):
        assert a < b
    for a, b in zip(inter50, intra50):
        assert a < b
    # Twice the data, roughly twice the time for the same strategy.
    for a, b in zip(inter25, inter50):
        assert 1.4 < b / a < 2.8
