"""Shared configuration for the benchmark suite.

Each benchmark regenerates one paper artifact (figure or in-text table)
at ``BENCH_SCALE`` -- reduced run length and trial count so the whole
suite finishes in minutes while preserving the qualitative shape (who
wins, by roughly what factor, where curves flatten).  For full
paper-scale output use the CLI: ``python -m repro run all``.
"""

import pytest

from repro.bench.harness import timed_call
from repro.experiments.config import Scale

#: Scale used by every experiment benchmark.
BENCH_SCALE = Scale(trials=2, blocks_per_run=150, sweep_density=0.34)


@pytest.fixture
def bench_scale() -> Scale:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    These are multi-second simulation sweeps; statistical repetition
    belongs to the simulations' internal trials, not the timer.

    Timing goes through :func:`repro.bench.harness.timed_call` — the
    same measurement path as ``repro bench run`` — so pytest-benchmark
    numbers and BENCH_*.json reports are directly comparable; the
    harness sample is recorded in ``extra_info`` alongside
    pytest-benchmark's own statistics.
    """
    outcome: dict = {}

    def timed():
        outcome["result"], outcome["elapsed_ns"] = timed_call(fn)

    benchmark.pedantic(timed, rounds=1, iterations=1)
    benchmark.extra_info["harness_elapsed_ns"] = outcome["elapsed_ns"]
    return outcome["result"]
