"""Shared configuration for the benchmark suite.

Each benchmark regenerates one paper artifact (figure or in-text table)
at ``BENCH_SCALE`` -- reduced run length and trial count so the whole
suite finishes in minutes while preserving the qualitative shape (who
wins, by roughly what factor, where curves flatten).  For full
paper-scale output use the CLI: ``python -m repro run all``.
"""

import pytest

from repro.experiments.config import Scale

#: Scale used by every experiment benchmark.
BENCH_SCALE = Scale(trials=2, blocks_per_run=150, sweep_density=0.34)


@pytest.fixture
def bench_scale() -> Scale:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    These are multi-second simulation sweeps; statistical repetition
    belongs to the simulations' internal trials, not the timer.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
