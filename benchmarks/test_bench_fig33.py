"""Benchmark regenerating Figure 3.3 (effect of a finite-speed CPU)."""

from conftest import run_once

from repro.experiments import get_experiment


def test_fig_33(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("fig-3.3").run(bench_scale))
    table = result.tables[0]
    inter_unsync = [row[1] for row in table.rows]
    inter_sync = [row[2] for row in table.rows]
    intra_unsync = [row[3] for row in table.rows]
    intra_sync = [row[4] for row in table.rows]

    # Paper: inter-run N=10 beats intra-run over the whole CPU range.
    for i_un, i_sy, d_un, d_sy in zip(
        inter_unsync, inter_sync, intra_unsync, intra_sync
    ):
        assert i_un < d_un
        assert i_sy < d_sy

    # Synchronized times grow monotonically with CPU cost (no overlap).
    assert inter_sync == sorted(inter_sync)
    assert intra_sync == sorted(intra_sync)

    # Unsynchronized absorbs CPU cost: its slope is shallower than the
    # synchronized curve's over the swept range.
    sync_growth = inter_sync[-1] - inter_sync[0]
    unsync_growth = inter_unsync[-1] - inter_unsync[0]
    assert unsync_growth <= sync_growth + 0.2
