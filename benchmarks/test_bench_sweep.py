"""Benchmarks for the sweep engine: serial loop vs worker pool vs cache.

Three timings of the same 24-job campaign (12 cells x 2 trials):

* ``serial``  — the plain ``MergeSimulation`` loop the experiments used
  before the engine existed.
* ``parallel`` — the engine with 4 worker processes and a cold cache.
* ``cached``  — the engine re-running a finished campaign (pure cache
  hits; the expected steady state while iterating on figures).

On a multi-core machine ``parallel`` approaches ``serial / workers``;
``cached`` should be orders of magnitude faster than either.  The
equality assertions pin the determinism contract: all three paths
produce identical aggregates.
"""

import json

from conftest import run_once

from repro.core.simulator import MergeSimulation
from repro.sweep import ResultStore, SweepEngine, SweepSpec

SPEC = SweepSpec(
    name="bench",
    base={"num_runs": 8, "strategy": "intra-run", "blocks_per_run": 150},
    grid={"num_disks": [1, 2, 5], "prefetch_depth": [2, 5, 10, 20]},
    trials=2,
)


def _dump(cells):
    return json.dumps([cell.to_dict() for cell in cells])


def test_sweep_serial_baseline(benchmark):
    cells = run_once(
        benchmark,
        lambda: [MergeSimulation(config).run() for config in SPEC.cells()],
    )
    assert len(cells) == 12


def test_sweep_parallel_cold_cache(benchmark, tmp_path):
    engine = SweepEngine(store=ResultStore(tmp_path), workers=4)
    result = run_once(benchmark, lambda: engine.run_spec(SPEC))
    assert result.stats.computed == 24
    serial = [MergeSimulation(config).run() for config in SPEC.cells()]
    assert _dump(result.cells) == _dump(serial)


def test_sweep_rerun_warm_cache(benchmark, tmp_path):
    store = ResultStore(tmp_path)
    cold = SweepEngine(store=store, workers=4).run_spec(SPEC)
    warm_engine = SweepEngine(store=store, workers=4)
    warm = run_once(benchmark, lambda: warm_engine.run_spec(SPEC))
    assert warm.stats.cached == 24 and warm.stats.computed == 0
    assert _dump(warm.cells) == _dump(cold.cells)
