"""Benchmark for the companion-TR Markov policy analysis."""

import pytest
from conftest import run_once

from repro.experiments import get_experiment


def test_tab_markov(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("tab-markov").run(bench_scale))
    table = result.tables[0]
    for row in table.rows:
        cache, chain_cons, chain_greedy, sim_cons, sim_greedy, t_cons, t_greedy = row
        # Chain parallelism within [1, D] for both policies.
        assert 1.0 <= chain_cons <= 4.0 + 1e-9
        assert 1.0 <= chain_greedy <= 4.0 + 1e-9
        # Timed concurrency tracks the chain within modeling error
        # (the chain is synchronous; the simulation overlaps rounds).
        assert sim_cons == pytest.approx(chain_cons, abs=0.6)
        assert sim_greedy == pytest.approx(chain_greedy, abs=0.6)
    # Policies converge at the largest swept cache.
    last = table.rows[-1]
    assert last[1] == pytest.approx(last[2], rel=0.05)
    assert last[5] == pytest.approx(last[6], rel=0.1)
