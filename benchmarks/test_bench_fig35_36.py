"""Benchmarks regenerating Figures 3.5 and 3.6 (cache-size sweeps).

One experiment per configuration emits both the execution-time series
(Figure 3.5) and the success-ratio series (Figure 3.6).
"""

import pytest
from conftest import run_once

from repro.experiments import get_experiment


def _series(table, header):
    index = table.headers.index(header)
    return [
        (row[0], row[index]) for row in table.rows if row[index] != "-"
    ]


def _check_shape(result, k):
    table = result.tables[0]
    for n in (1, 5, 10):
        times = _series(table, f"time N={n}")
        ratios = _series(table, f"sr N={n}")
        assert times, f"no feasible cache sizes for N={n}"
        # Success ratio climbs toward 1 with cache size (allowing noise).
        assert ratios[-1][1] > ratios[0][1] - 0.05
        assert ratios[-1][1] > 0.9
        # Execution time falls as the cache grows.
        assert times[-1][1] < times[0][1] * 1.02
    # At the largest cache, deeper prefetching wins (Figure 3.5's
    # asymptote ordering).
    final_time = {
        n: _series(table, f"time N={n}")[-1][1] for n in (1, 5, 10)
    }
    assert final_time[10] < final_time[1]
    return table


@pytest.mark.parametrize(
    "experiment_id,k", [("fig-3.5a", 25), ("fig-3.5b", 50), ("fig-3.5c", 50)]
)
def test_fig_35_36(benchmark, bench_scale, experiment_id, k):
    result = run_once(
        benchmark, lambda: get_experiment(experiment_id).run(bench_scale)
    )
    _check_shape(result, k)
