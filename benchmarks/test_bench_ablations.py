"""Benchmarks for the ablation experiments (design choices the paper

adopts without sweeping)."""

import pytest
from conftest import run_once

from repro.experiments import get_experiment


def test_ablation_cache_policy(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("ablation-cache-policy").run(bench_scale)
    )
    rows = result.tables[0].rows
    # At generous cache sizes the two policies converge.
    last = rows[-1]
    assert last[1] == pytest.approx(last[3], rel=0.15)
    # Each policy completes everywhere (sanity: positive times).
    for row in rows:
        assert row[1] > 0 and row[3] > 0


def test_ablation_selector(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("ablation-selector").run(bench_scale)
    )
    rows = result.tables[0].rows
    # The thesis finding -- selector choice is marginal -- holds at the
    # generous cache size.  (At the constrained size, urgency-aware
    # selection does help; see EXPERIMENTS.md.)
    times_generous = [row[3] for row in rows]
    assert max(times_generous) < min(times_generous) * 1.3


def test_ablation_depletion_model(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: get_experiment("ablation-depletion-model").run(bench_scale),
    )
    rows = {row[0]: row for row in result.tables[0].rows}
    random_time = rows["random model"][1]
    assert rows["real merge: uniform"][1] == pytest.approx(random_time, rel=0.25)
    assert rows["real merge: nearly-sorted"][1] > random_time * 1.5


def test_ablation_streaming(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("ablation-streaming").run(bench_scale)
    )
    for row in result.tables[0].rows:
        _n, paper_model, streaming = row
        # Streaming can only remove positioning cost.
        assert streaming <= paper_model * 1.02


def test_ablation_queue_discipline(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: get_experiment("ablation-queue-discipline").run(bench_scale),
    )
    for row in result.tables[0].rows:
        _label, fifo, sstf = row
        # Queues stay short in the demand-driven strategies, so SSTF
        # must land within a few percent of FIFO.
        assert sstf == pytest.approx(fifo, rel=0.05)


def test_ext_write_traffic(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("ext-write-traffic").run(bench_scale)
    )
    rows = result.tables[0].rows
    ignored = rows[0][1]
    times = {row[0]: row[1] for row in rows[1:]}
    # One write disk makes the merge write-bound: roughly k*b*T/1.
    write_bound = 25 * bench_scale.blocks_per_run * 2.05 / 1000
    assert times["W=1"] == pytest.approx(write_bound, rel=0.25)
    # A wide array approaches the ignored-writes model from above.
    widest = rows[-1][1]
    assert ignored <= widest <= ignored * 1.35
    # Monotone: more write disks never hurt.
    ordered = [row[1] for row in rows[1:]]
    assert ordered == sorted(ordered, reverse=True)


def test_ext_skewed_depletion(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: get_experiment("ext-skewed-depletion").run(bench_scale),
    )
    rows = result.tables[0].rows
    by_alpha = {row[0]: (row[1], row[2], row[3]) for row in rows}
    # At uniform depletion inter-run wins comfortably...
    assert by_alpha[0.0][1] < by_alpha[0.0][0]
    # ...heavy skew erodes random-victim inter-run far more than
    # intra-run (which degrades mildly)...
    inter_degradation = by_alpha[2.0][1] / by_alpha[0.0][1]
    intra_degradation = by_alpha[2.0][0] / by_alpha[0.0][0]
    assert inter_degradation > intra_degradation
    assert intra_degradation < 1.5
    # ...and the urgency-aware selector recovers much of the loss.
    assert by_alpha[2.0][2] < by_alpha[2.0][1]


def test_ext_adaptive_depth(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("ext-adaptive-depth").run(bench_scale)
    )
    rows = result.tables[0].rows
    for row in rows:
        _cache, fixed_time, _fc, adaptive_time, _ac = row
        # Adaptive never loses by more than noise, anywhere.
        assert adaptive_time <= fixed_time * 1.10
    # And wins clearly at the tightest cache.
    assert rows[0][3] < rows[0][1] * 0.8


def test_ext_pass_planning(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("ext-pass-planning").run(bench_scale)
    )
    rows = [row for row in result.tables[0].rows if row[2] != "-"]
    times = [row[3] for row in rows]
    passes = [row[2] for row in rows]
    # Pass count is non-decreasing in depth; the time curve is
    # non-monotone (an interior optimum exists).
    assert passes == sorted(passes)
    best = min(times)
    assert times[0] > best and times[-1] > best


def test_ablation_k100(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("ablation-k100").run(bench_scale)
    )
    rows = {row[0]: row[1] for row in result.tables[0].rows}
    # Inter-run still wins at k=100, on both array sizes.
    assert rows["AllDisksOneRun D=5"] < rows["DemandRunOnly D=5"]
    assert rows["AllDisksOneRun D=10"] < rows["DemandRunOnly D=10"]
