"""Benchmarks regenerating the paper's in-text estimate-vs-simulation

numbers.  Each asserts the estimate and the simulation agree in the
formula's regime of validity -- the paper's own validation claim."""

import pytest
from conftest import run_once

from repro.experiments import get_experiment


def test_tab_seek(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("tab-seek").run(bench_scale))
    for row in result.tables[0].rows:
        k, exact, approx, empirical, pmf_total = row
        assert pmf_total == pytest.approx(1.0)
        assert approx == pytest.approx(exact, rel=0.01)
        assert empirical == pytest.approx(exact, rel=0.15)


def test_tab_single(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("tab-single").run(bench_scale))
    for row in result.tables[0].rows:
        _label, estimate, simulated, _std, _paper = row
        assert simulated == pytest.approx(estimate, rel=0.03)


def test_tab_intra_1d(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("tab-intra-1d").run(bench_scale)
    )
    for row in result.tables[0].rows:
        label, estimate, simulated, _std, _paper = row
        # The initial load of N blocks per run costs no I/O; at reduced
        # run length that is a sizable fraction, so scale the estimate
        # to the blocks actually fetched (at full scale the factor is
        # within 3% of 1).
        k = int(label.split()[0].split("=")[1])
        n = int(label.split()[1].split("=")[1])
        total = k * bench_scale.blocks_per_run
        adjusted = estimate * (total - k * n) / total
        assert simulated == pytest.approx(adjusted, rel=0.05)


def test_tab_multi_nopf(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("tab-multi-nopf").run(bench_scale)
    )
    for row in result.tables[0].rows:
        _label, estimate, simulated, _std, _paper = row
        assert simulated == pytest.approx(estimate, rel=0.03)


def test_tab_urn(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("tab-urn").run(bench_scale))
    analytic, measured = result.tables
    expected = {5: 2.51, 10: 3.66, 25: 5.95}
    for row in analytic.rows:
        d, exact, closed, best = row
        assert exact == pytest.approx(expected[d], abs=0.02)
        assert exact < best
    for row in measured.rows:
        _label, _est, _sim, concurrency, urn, _paper = row
        # Measured concurrency should be in the urn prediction's
        # neighbourhood (N=30 is pre-asymptotic).
        assert concurrency == pytest.approx(urn, rel=0.25)


def test_tab_inter_sync(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: get_experiment("tab-inter-sync").run(bench_scale)
    )
    _label, estimate, simulated, _std, _paper = result.tables[0].rows[0]
    # Adjust for the zero-cost initial load (k=25, N=10), as in
    # test_tab_intra_1d.
    total = 25 * bench_scale.blocks_per_run
    adjusted = estimate * (total - 25 * 10) / total
    assert simulated == pytest.approx(adjusted, rel=0.05)


def test_tab_bounds(benchmark, bench_scale):
    result = run_once(benchmark, lambda: get_experiment("tab-bounds").run(bench_scale))
    bounds, sims = result.tables
    for row in bounds.rows:
        _label, bound, paper = row
        assert bound == pytest.approx(paper, rel=0.01)
    # Simulated N=50 inter-run must land near its transfer bound.  At
    # this reduced run length the free initial load (k*N blocks) is a
    # large fraction of the data, so the effective bound excludes it.
    for row in sims.rows:
        label, simulated, ratio, _paper = row
        k = int(label.split()[0].split("=")[1])
        total_blocks = k * bench_scale.blocks_per_run
        fetched_blocks = total_blocks - k * 50  # minus the preload
        effective_bound = fetched_blocks * 2.05 / 5 / 1000
        full_bound = total_blocks * 2.05 / 5 / 1000
        assert effective_bound < simulated < full_bound * 1.5
        assert ratio > 0.8
