#!/usr/bin/env python3
"""End-to-end smoke test for the serve subsystem (``make serve-smoke``).

Starts a real :class:`SimulationServer` on an ephemeral port, then
drives the full admission pipeline through :class:`ServeClient`:

* a cold request computes its trials (cache misses),
* an identical request is answered entirely from the cache without a
  worker touching it (verified through ``/v1/metricz``),
* two identical concurrent misses coalesce onto one computation,
* a rate-limited client is shed with 429 + ``Retry-After``,
* a full admission queue sheds with 503,
* a sweep job is submitted, polled to ``done``, and warms the cache,
* the server drains cleanly.

Writes the final ``/v1/metricz`` snapshot to ``results/serve/`` when
that directory is writable (CI uploads it as an artifact).  Exits
non-zero on any violation.  Finishes in a few seconds.
"""

import json
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.serve import (  # noqa: E402
    NO_RETRY,
    ServeClient,
    ServeConfig,
    ServeHTTPError,
    SimulationServer,
)
from repro.serve.server import start_in_thread  # noqa: E402

CONFIG = {"num_runs": 4, "num_disks": 2, "strategy": "intra-run",
          "prefetch_depth": 2, "blocks_per_run": 40}
METRICS_OUT = Path("results") / "serve" / "serve_smoke_metricz.json"


def fail(message: str) -> int:
    print(f"[serve-smoke] FAIL: {message}")
    return 1


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    server = SimulationServer(
        ServeConfig(port=0, workers=0, rate=2.0, burst=20.0, queue_limit=4,
                    cache_dir=tmp)
    )
    handle = start_in_thread(server)
    host, port = handle.address
    client = ServeClient(host, port, client_id="smoke", retry=NO_RETRY)
    print(f"[serve-smoke] server on {host}:{port}, cache {tmp}")
    try:
        # -- cold misses then pure hits ---------------------------------
        cold = client.simulate(CONFIG, trials=2, seed=7)
        if cold["cache"] != {"hits": 0, "misses": 2, "coalesced": 0}:
            return fail(f"cold request not all misses: {cold['cache']}")
        warm = client.simulate(CONFIG, trials=2, seed=7)
        if warm["cache"] != {"hits": 2, "misses": 0, "coalesced": 0}:
            return fail(f"warm request not all hits: {warm['cache']}")
        if warm["trials"] != cold["trials"]:
            return fail("cached payload differs from computed payload")
        counters = client.metricz()["counters"]
        if counters.get("serve_computed") != 2:
            return fail(f"hits reached a worker: {counters}")
        print("[serve-smoke] cold 2 misses, warm 2 hits, payloads identical")

        # -- concurrent identical misses coalesce -----------------------
        fresh = {**CONFIG, "prefetch_depth": 3}
        answers, errors = [], []

        def request():
            try:
                answers.append(
                    ServeClient(host, port, client_id="smoke",
                                retry=NO_RETRY).simulate(
                        fresh, trials=1, seed=7)
                )
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=request) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        if errors:
            return fail(f"concurrent request errored: {errors[0]}")
        if answers[0]["trials"] != answers[1]["trials"]:
            return fail("coalesced answers differ")
        counters = client.metricz()["counters"]
        computed = counters.get("serve_computed", 0)
        coalesced = counters.get("serve_cache{outcome=coalesced}", 0)
        if computed + coalesced < 3 or computed > 3:
            # Either the requests overlapped (1 computation + 1 coalesce)
            # or the first landed before the second arrived (2nd is a
            # hit) — both are correct; >3 computations means the
            # single-flight map failed.
            return fail(
                f"coalescing broken: computed={computed} "
                f"coalesced={coalesced}"
            )
        print(f"[serve-smoke] concurrent identical requests: "
              f"computed={computed - 2}, coalesced={coalesced}, "
              "answers identical")

        # -- rate limiting: 429 + Retry-After ---------------------------
        greedy = ServeClient(host, port, client_id="greedy", retry=NO_RETRY)
        saw_429 = None
        for _ in range(25):  # burst is 20: the loop must hit the limiter
            try:
                greedy.simulate(CONFIG, trials=1, seed=7)
            except ServeHTTPError as exc:
                if exc.status != 429:
                    return fail(f"expected 429, got {exc.status}")
                saw_429 = exc
                break
        if saw_429 is None:
            return fail("rate limiter never engaged")
        if not saw_429.payload.get("retry_after_s", 0) > 0:
            return fail(f"429 without retry advice: {saw_429.payload}")
        print(f"[serve-smoke] rate limit: 429 after burst, retry in "
              f"{saw_429.payload['retry_after_s']:.2f}s")

        # -- queue shedding: 503 when every slot is held ----------------
        # Saturate deterministically: shrink the queue to one slot and
        # hold it from here (the loop is idle between our requests).
        server.admission.limit = 1
        server.admission.try_acquire()
        try:
            client.simulate({**CONFIG, "num_runs": 5}, trials=1, seed=7)
            return fail("full queue did not shed")
        except ServeHTTPError as exc:
            if exc.status != 503:
                return fail(f"expected 503, got {exc.status}")
        finally:
            server.admission.release()
        print("[serve-smoke] queue full: 503 with Retry-After")

        # -- sweep job lifecycle ----------------------------------------
        sweep_base = {k: v for k, v in CONFIG.items() if k != "num_disks"}
        job = client.sweep({
            "name": "serve-smoke", "base": sweep_base,
            "grid": {"num_disks": [1, 2]}, "trials": 1, "base_seed": 7,
        })
        done = client.wait_for_job(job["job"], poll_s=0.1)
        if done["status"] != "done":
            return fail(f"sweep job ended {done['status']}: {done['error']}")
        hit = client.simulate({**CONFIG, "num_disks": 1}, trials=1, seed=7)
        if hit["cache"]["hits"] != 1:
            return fail("sweep job did not warm the shared cache")
        print(f"[serve-smoke] sweep job {job['job']}: "
              f"{done['trials_done']} trials, cache shared")

        # -- metrics snapshot -------------------------------------------
        metricz = client.metricz()
        hits = metricz["counters"].get("serve_cache{outcome=hit}", 0)
        misses = metricz["counters"].get("serve_cache{outcome=miss}", 0)
        if not hits or hits / (hits + misses) <= 0:
            return fail(f"no cache hits recorded: {metricz['counters']}")
        try:
            METRICS_OUT.parent.mkdir(parents=True, exist_ok=True)
            METRICS_OUT.write_text(json.dumps(metricz, indent=2) + "\n")
            print(f"[serve-smoke] metricz snapshot -> {METRICS_OUT}")
        except OSError as exc:
            print(f"[serve-smoke] note: metricz snapshot not written: {exc}")
        print(f"[serve-smoke] hit rate "
              f"{hits / (hits + misses):.0%} ({hits:.0f} hits, "
              f"{misses:.0f} misses)")
    finally:
        handle.stop()
    if handle.thread.is_alive():
        return fail("server thread did not drain")
    print("[serve-smoke] ok: clean drain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
