#!/usr/bin/env python3
"""Concurrency-sanitizer smoke test (``make sanitize-smoke``).

Three phases, mirroring how the sanitizer is meant to be used:

1. **The detector detects.** In-process, with the sanitizer enabled, a
   rogue thread mutates a pool-owned ``RunCacheState`` counter without
   the BufferPool lock.  The violation must surface as a standard
   findings-pipeline :class:`Finding` (rule ``RPR090``), render through
   the normal reporter path, and make ``SanitizerReport.check`` raise.
2. **realio sort is clean.** ``repro realio run`` (per-disk reader
   threads feeding the BufferPool) executes under ``REPRO_SANITIZE=1``
   and must exit 0 with no ``sanitizer:`` report on stderr.
3. **A 2-worker dist campaign is clean.** Coordinator plus two worker
   processes drain a small campaign, every process under
   ``REPRO_SANITIZE=1``; all must exit 0 with silent sanitizers.

Phases 2-3 are the regression half of the contract: the concurrent
subsystems really do hold the invariants the sanitizer asserts, and the
instrumentation itself does not break them.  Finishes in well under a
minute.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

SPEC = {
    "name": "sanitize-smoke",
    "base": {"num_runs": 8, "blocks_per_run": 200},
    "grid": {"num_disks": [1, 2], "prefetch_depth": [1, 2]},
    "trials": 1,
    "base_seed": 1992,
}


def fail(message: str) -> int:
    print(f"[sanitize-smoke] FAIL: {message}")
    return 1


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_SANITIZE"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO, env=env, stderr=subprocess.PIPE, text=True,
    )


def sanitizer_lines(process: subprocess.Popen) -> list[str]:
    stderr = process.stderr.read() if process.stderr else ""
    return [
        line for line in stderr.splitlines() if line.startswith("sanitizer:")
    ]


def phase_detector() -> int:
    """A deliberate unlocked mutation must be caught and reported."""
    from repro.lint import sanitizer
    from repro.realio.pool import BufferPool

    with sanitizer.sanitized() as report:
        pool = BufferPool(4, [2, 2])
        pool.reserve(0, 1)  # properly locked: must stay silent

        def rogue() -> None:
            pool.runs[1].cached += 1  # no lock: the violation

        thread = threading.Thread(target=rogue, name="rogue")
        thread.start()
        thread.join()

        findings = report.findings()
        if [f.rule for f in findings] != ["RPR090"]:
            return fail(f"expected exactly one RPR090, got {findings}")
        rendered = findings[0].render()
        if "RPR090" not in rendered or "pool lock" not in rendered:
            return fail(f"finding renders badly: {rendered}")
        try:
            report.check()
        except sanitizer.ConcurrencyViolation:
            pass
        else:
            return fail("report.check() did not raise on a violation")
        report.clear()
    print(f"[sanitize-smoke] detector: caught the planted violation "
          f"({rendered})")
    return 0


def phase_realio(tmp: Path) -> int:
    """Real reader threads + BufferPool under the sanitizer: clean."""
    process = spawn(
        "realio", "run", "--dir", str(tmp / "dataset"), "--throttle", "0.2",
    )
    process.wait(timeout=120.0)
    noise = sanitizer_lines(process)
    if process.returncode != 0:
        return fail(f"realio run exited {process.returncode}")
    if noise:
        return fail("realio run raised sanitizer findings:\n"
                    + "\n".join(noise))
    print("[sanitize-smoke] realio sort: exit 0, sanitizer silent")
    return 0


def phase_dist(tmp: Path) -> int:
    """Coordinator + two workers, all sanitized: clean."""
    spec_path = tmp / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    port = free_port()
    coordinator = spawn(
        "dist", "coordinate", "--spec", str(spec_path),
        "--port", str(port), "--shard-size", "2",
        "--cache-dir", str(tmp / "cache"), "--exit-when-done",
    )
    workers = [
        spawn("dist", "work", "--port", str(port), "--id", f"w{index}",
              "--poll", "0.05")
        for index in (1, 2)
    ]
    try:
        coordinator.wait(timeout=120.0)
        for worker in workers:
            worker.wait(timeout=30.0)
    except subprocess.TimeoutExpired:
        return fail("dist campaign never drained")
    finally:
        for process in (coordinator, *workers):
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
    for process in (coordinator, *workers):
        if process.returncode != 0:
            return fail(f"a dist process exited {process.returncode}")
        noise = sanitizer_lines(process)
        if noise:
            return fail("dist raised sanitizer findings:\n"
                        + "\n".join(noise))
    print("[sanitize-smoke] dist campaign: coordinator + 2 workers "
          "exit 0, sanitizers silent")
    return 0


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-sanitize-smoke-"))
    for phase in (phase_detector, lambda: phase_realio(tmp),
                  lambda: phase_dist(tmp)):
        code = phase()
        if code != 0:
            return code
    print("[sanitize-smoke] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
