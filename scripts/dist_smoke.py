#!/usr/bin/env python3
"""End-to-end smoke test for the dist subsystem (``make dist-smoke``).

Everything runs as *real operating-system processes* through the real
CLI — exactly what a user would launch on three machines:

* a coordinator (``repro dist coordinate --exit-when-done``) shards a
  campaign and leases it over HTTP,
* worker A (``repro dist work``) starts pulling shards and is
  **SIGKILL'd mid-campaign** — no cleanup, no goodbye,
* worker B is started afterwards and must finish the whole campaign,
  re-executing whatever leases died with worker A.

The assertions are the crash-safety contract: the coordinator exits 0,
every trial is in the ResultStore, the campaign manifest records every
job ``done``, and at least one lease expired (proof the kill landed
mid-lease rather than between leases).  Writes the mid-run
``/v1/metricz`` snapshot to ``results/dist/`` when writable (CI
uploads it as an artifact).  Finishes in well under a minute.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.dist import CoordinatorClient  # noqa: E402
from repro.serve.client import ServeError  # noqa: E402
from repro.sweep.spec import SweepSpec  # noqa: E402
from repro.sweep.store import ResultStore  # noqa: E402

#: 8 jobs across 4 cells; each trial takes long enough (~0.1s) that
#: worker A is reliably holding a lease when the kill lands.
SPEC = {
    "name": "dist-smoke",
    "base": {"num_runs": 8, "blocks_per_run": 400},
    "grid": {"num_disks": [1, 2], "prefetch_depth": [1, 2]},
    "trials": 2,
    "base_seed": 1992,
}
METRICS_OUT = Path("results") / "dist" / "dist_smoke_metricz.json"


def fail(message: str) -> int:
    print(f"[dist-smoke] FAIL: {message}")
    return 1


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv], cwd=REPO, env=env
    )


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-dist-smoke-"))
    spec_path = tmp / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    cache_dir = tmp / "cache"
    port = free_port()
    total_jobs = len(SweepSpec.from_dict(SPEC).jobs())

    coordinator = spawn(
        "dist", "coordinate", "--spec", str(spec_path),
        "--port", str(port), "--shard-size", "1",
        "--lease-ttl", "2.0", "--cache-dir", str(cache_dir),
        "--exit-when-done",
    )
    worker_a = spawn("dist", "work", "--port", str(port), "--id", "doomed",
                     "--poll", "0.05")
    worker_b = None
    client = CoordinatorClient("127.0.0.1", port, timeout_s=5.0)
    print(f"[dist-smoke] coordinator on :{port}, campaign of "
          f"{total_jobs} jobs, cache {cache_dir}")

    try:
        # -- wait until worker A is genuinely mid-campaign --------------
        deadline = time.monotonic() + 60.0
        while True:
            if time.monotonic() > deadline:
                return fail("worker A never got mid-campaign")
            if coordinator.poll() is not None:
                return fail("coordinator exited before the kill")
            try:
                status = client.campaign(SPEC["name"])
            except ServeError:
                time.sleep(0.05)  # coordinator still binding
                continue
            completed = status["jobs"]["completed"]
            if 1 <= completed < total_jobs and status["leases"]["live"] > 0:
                break
            time.sleep(0.02)

        metricz = client.metricz()
        worker_a.send_signal(signal.SIGKILL)
        worker_a.wait(timeout=10.0)
        print(f"[dist-smoke] SIGKILL'd worker A at "
              f"{completed}/{total_jobs} jobs, "
              f"{status['leases']['live']} lease(s) live")

        # -- a fresh worker must finish what the corpse left behind -----
        worker_b = spawn("dist", "work", "--port", str(port), "--id",
                         "rescue", "--poll", "0.05")
        try:
            coordinator.wait(timeout=120.0)
        except subprocess.TimeoutExpired:
            return fail("coordinator never drained; lost shard?")
        if coordinator.returncode != 0:
            return fail(f"coordinator exited {coordinator.returncode}")
        if worker_b.wait(timeout=30.0) != 0:
            return fail(f"worker B exited {worker_b.returncode}")

        # -- crash-safety contract --------------------------------------
        store = ResultStore(cache_dir)
        if len(store) != total_jobs:
            return fail(f"store has {len(store)}/{total_jobs} trials")
        manifest = json.loads(
            (cache_dir / "campaigns" / f"{SPEC['name']}.json").read_text()
        )
        not_done = [k for k, s in manifest["jobs"].items() if s != "done"]
        if not_done:
            return fail(f"{len(not_done)} job(s) not done in manifest")
        reclaimed = [
            s for s in manifest["shards"].values()
            if s["status"] == "done" and s.get("reclaimed_from")
        ]
        print(f"[dist-smoke] campaign complete: {total_jobs}/{total_jobs} "
              f"trials stored, {len(reclaimed)} shard(s) reclaimed from "
              f"the killed worker")

        try:
            METRICS_OUT.parent.mkdir(parents=True, exist_ok=True)
            METRICS_OUT.write_text(json.dumps(metricz, indent=2))
            print(f"[dist-smoke] metricz snapshot -> {METRICS_OUT}")
        except OSError:
            pass
        print("[dist-smoke] OK")
        return 0
    finally:
        for process in (worker_a, worker_b, coordinator):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
