#!/usr/bin/env python3
"""End-to-end smoke test for the sweep subsystem (``make sweep-smoke``).

Runs a tiny 8-job campaign on a 2-worker pool into a throwaway cache
directory, then re-runs it and verifies the second pass is served
entirely from the cache with results identical to the first.  Exits
non-zero on any violation.  Finishes in a couple of seconds.
"""

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sweep import ResultStore, SweepEngine, SweepSpec  # noqa: E402

SPEC = SweepSpec(
    name="smoke",
    base={"num_runs": 4, "strategy": "intra-run", "blocks_per_run": 40},
    grid={"num_disks": [1, 2], "prefetch_depth": [2, 3]},
    trials=2,
)


def main() -> int:
    jobs = len(SPEC.jobs())
    with tempfile.TemporaryDirectory(prefix="repro-sweep-smoke-") as tmp:
        store = ResultStore(tmp)

        cold = SweepEngine(store=store, workers=2).run_spec(SPEC)
        print(f"[sweep-smoke] cold: {cold.stats.summary()}")
        if cold.stats.computed != jobs or cold.failures:
            print("[sweep-smoke] FAIL: cold run did not compute every job")
            return 1

        warm = SweepEngine(store=store, workers=2).run_spec(SPEC)
        print(f"[sweep-smoke] warm: {warm.stats.summary()}")
        if warm.stats.cached != jobs or warm.stats.computed != 0:
            print("[sweep-smoke] FAIL: warm run was not 100% cache hits")
            return 1

        dump = lambda cells: json.dumps([c.to_dict() for c in cells])  # noqa: E731
        if dump(cold.cells) != dump(warm.cells):
            print("[sweep-smoke] FAIL: cached results differ from computed")
            return 1

    print(f"[sweep-smoke] ok: {jobs} jobs, second pass 100% cached")
    return 0


if __name__ == "__main__":
    sys.exit(main())
