# Convenience targets for the reproduction.

PYTHON ?= python3

# Every target works from a clean checkout: put the package on the
# import path without requiring an install step.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test test-fast sweep-smoke bench check reproduce reproduce-quick clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/
	$(PYTHON) scripts/sweep_smoke.py

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Tiny 2-worker sweep; verifies the second pass is 100% cache hits.
sweep-smoke:
	$(PYTHON) scripts/sweep_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

check:
	$(PYTHON) -m repro paper-check
	$(PYTHON) -m repro selfcheck

# Full paper-scale regeneration of every figure and table (~25 min).
reproduce:
	$(PYTHON) -m repro run all --out full_results.txt --export-dir results/

reproduce-quick:
	$(PYTHON) -m repro run all --quick --out quick_results.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
