# Convenience targets for the reproduction.

PYTHON ?= python3

# Every target works from a clean checkout: put the package on the
# import path without requiring an install step.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test test-fast lint sanitize-smoke sweep-smoke serve-smoke dist-smoke bench bench-smoke bench-pytest obs-smoke realio-smoke check reproduce reproduce-quick clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/
	$(PYTHON) scripts/sweep_smoke.py
	$(PYTHON) scripts/serve_smoke.py
	$(PYTHON) scripts/dist_smoke.py
	$(PYTHON) -m repro lint src --stats

# Static invariant enforcement (rules RPR001-RPR013, docs/LINT.md);
# exits non-zero on any finding not in lint-baseline.json.
lint:
	$(PYTHON) -m repro lint src --stats

# Runtime concurrency sanitizer (docs/LINT.md, RPR090-RPR092): a
# planted unlocked mutation must be caught, then a real-I/O sort and a
# 2-worker dist campaign must run clean under REPRO_SANITIZE=1.
sanitize-smoke:
	$(PYTHON) scripts/sanitize_smoke.py

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Tiny 2-worker sweep; verifies the second pass is 100% cache hits.
sweep-smoke:
	$(PYTHON) scripts/sweep_smoke.py

# Live repro.serve instance on an ephemeral port: cache hits without a
# worker, coalescing, 429/503 shedding, a sweep job, clean drain.  The
# final /v1/metricz snapshot lands in results/serve/ (CI artifact).
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Real-process distributed campaign: coordinator + worker over the CLI,
# SIGKILL the worker mid-campaign, a second worker must finish every
# shard (lease expiry + re-issue).  Mid-run /v1/metricz lands in
# results/dist/ (CI artifact).
dist-smoke:
	$(PYTHON) scripts/dist_smoke.py

# Canonical benchmarks: every scenario on every kernel, reports written
# as BENCH_<scenario>.json at the repo root (diff with
# `python -m repro bench compare`).
bench:
	$(PYTHON) -m repro bench run

# One tiny scenario against the committed baseline (what CI runs).
bench-smoke:
	$(PYTHON) -m repro bench run --scenario smoke-d2 --out-dir results/bench
	$(PYTHON) -m repro bench compare BENCH_smoke-d2.json \
		results/bench/BENCH_smoke-d2.json --threshold 2.0

# Traced replay of the pinned merge-d5 scenario: exercises the
# repro.obs pipeline end to end (trace collection, busy-accounting
# cross-check, Chrome export, schema validation).  What CI's obs-smoke
# job runs.
obs-smoke:
	$(PYTHON) -m repro run merge-d5 --trace-out results/obs/merge-d5.json
	$(PYTHON) -m repro trace validate results/obs/merge-d5.json

# The full sim-vs-real loop on a temp-filesystem dataset: run both
# strategies through the real-I/O backend with tracing, validate the
# trace artifact, check the calibrated simulator agrees on strategy
# ordering (exits non-zero on DISAGREE), and guard the realio-sort
# bench scenario against its committed baseline.  What CI's
# realio-smoke job runs; report + trace land in results/realio/.
realio-smoke:
	$(PYTHON) -m repro realio validate --dir results/realio/dataset \
		--throttle 0.2 --trials 2 \
		--report results/realio/realio-report.json \
		--trace-out results/realio/realio-trace.json
	$(PYTHON) -m repro trace validate results/realio/realio-trace.json
	$(PYTHON) -m repro bench run --scenario realio-sort --out-dir results/bench
	$(PYTHON) -m repro bench compare BENCH_realio-sort.json \
		results/bench/BENCH_realio-sort.json --threshold 2.0

# The pytest-benchmark suite (paper-artifact regeneration timings).
bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

check:
	$(PYTHON) -m repro lint src --stats
	$(PYTHON) -m repro paper-check
	$(PYTHON) -m repro selfcheck

# Full paper-scale regeneration of every figure and table (~25 min).
reproduce:
	$(PYTHON) -m repro run all --out full_results.txt --export-dir results/

reproduce-quick:
	$(PYTHON) -m repro run all --quick --out quick_results.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
