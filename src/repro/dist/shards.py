"""Shard expansion: contiguous job slices of a campaign.

A shard is the lease granularity — the unit of work a worker checks
out, executes, and streams back in one ``complete`` call.  Shards are
contiguous slices of the spec's deterministic job order
(:meth:`repro.sweep.spec.SweepSpec.jobs`), so shard membership is a
pure function of ``(spec, shard_size, cached-key set)`` and every
coordinator restart re-derives identical shards for the identical
remaining work.

Jobs cross the wire as plain dicts (``job_wire``/``job_from_wire``):
the worker side rebuilds exactly the payload
:func:`repro.sweep.worker.execute_job` expects, so the serialization
is pinned by the sweep cache-key tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sweep.spec import SweepJob

#: Default jobs per shard (lease granularity).
DEFAULT_SHARD_SIZE = 4


@dataclass(frozen=True)
class Shard:
    """One leaseable slice of the campaign's job list."""

    shard_id: str
    jobs: tuple[SweepJob, ...]

    def __len__(self) -> int:
        return len(self.jobs)


def make_shards(
    jobs: Sequence[SweepJob], shard_size: int = DEFAULT_SHARD_SIZE
) -> list[Shard]:
    """Slice ``jobs`` (already in deterministic order) into shards."""
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    shards = []
    for start in range(0, len(jobs), shard_size):
        chunk = tuple(jobs[start:start + shard_size])
        shards.append(Shard(shard_id=f"shard-{len(shards):04d}", jobs=chunk))
    return shards


def job_wire(job: SweepJob) -> dict:
    """The JSON form of one job handed to a worker."""
    from repro.sweep.keys import config_to_dict

    return {
        "index": job.index,
        "cell": job.cell,
        "trial": job.trial,
        "config": config_to_dict(job.config),
        "key": job.key,
    }


def job_from_wire(data: dict) -> dict:
    """Validate a wire job back into an ``execute_job``-shaped dict.

    The worker never rebuilds a :class:`SweepJob` (it has no use for
    the typed config); it only needs the serialized config, the trial,
    and the bookkeeping fields.
    """
    for field in ("index", "cell", "trial", "config", "key"):
        if field not in data:
            raise ValueError(f"wire job missing {field!r}")
    return {
        "index": data["index"],
        "cell": data["cell"],
        "trial": data["trial"],
        "config": data["config"],
        "key": data["key"],
    }
