"""The campaign coordinator: leases out shards, merges streamed results.

One :class:`Coordinator` owns one campaign.  On startup it

1. expands the spec and **pre-settles every job already in the
   store** (content addressing *is* the resume mechanism — a restarted
   campaign simply finds its finished trials by key),
2. slices the remaining jobs into contiguous shards
   (:mod:`repro.dist.shards`) under a :class:`~repro.dist.leases.LeaseManager`,
3. serves the worker protocol (docs/DIST.md) over the shared
   :mod:`repro.netutil` HTTP dialect::

       POST /v1/lease              check out the next pending shard
       POST /v1/heartbeat          keep a lease alive
       POST /v1/complete           stream a shard's results back
       GET  /v1/campaigns/<name>   partial aggregates, any time
       GET  /v1/healthz            liveness + campaign state
       GET  /v1/metricz            obs MetricsRegistry snapshot

Completed results are merged into the shared
:class:`~repro.sweep.store.ResultStore` with the exact
``store.put(key, metrics, config=..., seed=..., elapsed_s=...)`` call
the single-host engine makes, so the two paths produce byte-identical
stores.  The campaign manifest records per-key job status plus shard
lifecycle, and every lease event lands in the
:class:`~repro.obs.registry.MetricsRegistry` (and, when a trace
session is attached, as ``LEASE_*``/``SHARD_COMPLETE`` instants on the
``"coordinator"`` track).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import signal
import threading
from pathlib import Path
from typing import Callable, Optional

from repro.core.metrics import MergeMetrics
from repro.dist.aggregate import CampaignAggregator
from repro.dist.leases import LeaseError, LeaseManager
from repro.dist.protocol import (
    DIST_PROTOCOL_VERSION,
    DistProtocolError,
    done_body,
    granted_body,
    lease_lost_body,
    parse_complete_request,
    parse_heartbeat_request,
    parse_lease_request,
    wait_body,
)
from repro.dist.shards import DEFAULT_SHARD_SIZE, job_wire, make_shards
from repro.netutil import (
    READ_TIMEOUT_S,
    REQUEST_READ_ERRORS,
    method_not_allowed,
    read_http_request,
    write_json_response,
)
from repro.obs.events import EventKind
from repro.obs.registry import MetricsRegistry
from repro.serve.clock import Clock, monotonic_clock
from repro.sweep.keys import config_to_dict
from repro.sweep.spec import SweepSpec
from repro.sweep.store import DEFAULT_CACHE_DIR, CampaignManifest, ResultStore

#: Body size limit (a completed shard of metrics is well under this).
MAX_BODY_BYTES = 4 << 20

#: What a worker is told to wait when every shard is leased elsewhere.
_WAIT_RETRY_S = 0.25


@dataclasses.dataclass(frozen=True)
class CoordinatorConfig:
    """Operational knobs of one coordinator instance."""

    host: str = "127.0.0.1"
    port: int = 8178
    #: Jobs per shard — the lease (and completion-streaming) granularity.
    shard_size: int = DEFAULT_SHARD_SIZE
    #: Lease TTL; a worker silent for this long forfeits its shard.
    lease_ttl_s: float = 30.0
    #: Per-job SIGALRM budget relayed to workers (None = unguarded).
    job_timeout_s: Optional[float] = None
    #: Per-job retry attempts workers should make before reporting failure.
    retries: int = 1
    #: Content-addressed result store shared with sweep/serve.
    cache_dir: str | Path = DEFAULT_CACHE_DIR
    #: Stop serving (and release run()) once every shard is done.
    exit_when_done: bool = False
    #: How long a drain waits for in-flight connections.
    drain_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be > 0")
        if self.retries < 1:
            raise ValueError("retries must be >= 1")


class Coordinator:
    """One campaign's coordinator bound to one event loop."""

    def __init__(
        self,
        spec: SweepSpec,
        config: CoordinatorConfig = CoordinatorConfig(),
        *,
        store: Optional[ResultStore] = None,
        clock: Clock = monotonic_clock,
        trace=None,
    ) -> None:
        self.spec = spec
        self.config = config
        self.clock = clock
        self.store = store if store is not None else ResultStore(config.cache_dir)
        self.metrics = MetricsRegistry()
        self.aggregator = CampaignAggregator(spec)
        self.manifest = CampaignManifest(self.store.root, spec.name)
        self.port: Optional[int] = None
        self.leases: Optional[LeaseManager] = None  # built in start()
        self._trace = None
        if trace is not None:
            self._trace = trace.trial(
                seed=spec.base_seed, config_description=f"campaign {spec.name}"
            )
        self._started_at: Optional[float] = None
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._active: set[asyncio.Task] = set()
        self._drain_task: Optional[asyncio.Task] = None
        #: shard_id -> worker whose lease on it expired; threaded into
        #: later manifest records so a finished campaign still shows
        #: which shards were reclaimed from crashed workers.
        self._reclaimed: dict[str, str] = {}

    # -- campaign setup ------------------------------------------------------

    def _settle_cached(self) -> list:
        """Resume: settle every job whose key is already in the store.

        Returns the jobs that still need computing.  This is the whole
        resume story — no lease state survives a coordinator restart,
        only results, and results are all that matters.
        """
        remaining = []
        for job in self.aggregator.jobs:
            metrics = self.store.get(job.key)
            if metrics is not None:
                self.aggregator.record(job.index, metrics, cached=True)
                self.metrics.counter("dist_jobs", outcome="cached").inc()
            else:
                remaining.append(job)
        return remaining

    def prepare(self) -> None:
        """Expand, pre-settle, shard, and checkpoint (idempotent)."""
        if self.leases is not None:
            return
        self.manifest.begin(
            self.spec.to_dict(),
            self.spec.spec_key(),
            [job.key for job in self.aggregator.jobs],
        )
        remaining = self._settle_cached()
        for job in self.aggregator.jobs:
            if self.aggregator.metrics_for(job.index) is not None:
                self.manifest.record(job.key, "done")
        shards = make_shards(remaining, self.config.shard_size)
        self.leases = LeaseManager(
            shards, ttl_s=self.config.lease_ttl_s, clock=self.clock
        )
        for shard in shards:
            self.manifest.record_shard(
                shard.shard_id, "pending",
                jobs=[job.index for job in shard.jobs],
            )
        self._refresh_gauges()

    # -- lifecycle (mirrors serve.SimulationServer) --------------------------

    async def start(self) -> None:
        self.prepare()
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._started_at = self.clock()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.exit_when_done and self._campaign_done():
            # Resumed into an already-finished campaign: nothing to serve.
            self.request_drain()

    async def run(
        self,
        *,
        install_signal_handlers: bool = True,
        on_ready: Optional[Callable[[], None]] = None,
    ) -> None:
        await self.start()
        if install_signal_handlers:
            self._install_signal_handlers()
        if on_ready is not None:
            on_ready()
        await self._stopped.wait()

    def _install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                break

    def request_drain(self) -> None:
        """Stop accepting, finish in-flight answers, release run()."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        if self._active:
            done, straggling = await asyncio.wait(
                self._active, timeout=self.config.drain_grace_s
            )
            for task in straggling:
                task.cancel()
            if straggling:
                await asyncio.wait(straggling, timeout=1.0)
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._draining

    def _campaign_done(self) -> bool:
        return self.leases is not None and self.leases.done

    # -- HTTP ----------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._active.add(task)
        try:
            await self._serve_one(reader, writer)
        finally:
            self._active.discard(task)
            writer.close()
            with contextlib.suppress(OSError):
                await writer.wait_closed()

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await asyncio.wait_for(
                read_http_request(reader, max_body_bytes=MAX_BODY_BYTES),
                READ_TIMEOUT_S,
            )
        except REQUEST_READ_ERRORS:
            return
        if parsed is None:
            return
        method, path, headers, body = parsed
        try:
            status, payload, extra = self._dispatch(method, path, body)
        except Exception as exc:
            # Request isolation boundary: one failing handler answers
            # 500; the coordinator keeps serving every other worker.
            status, extra = 500, {}
            payload = {"error": "internal", "detail": f"{type(exc).__name__}"}
        self.metrics.counter("dist_responses", code=status).inc()
        await write_json_response(writer, status, payload, extra)
        if self.config.exit_when_done and self._campaign_done():
            self.request_drain()

    def _dispatch(
        self, method: str, path: str, body: Optional[bytes]
    ) -> tuple[int, dict, dict]:
        self.metrics.counter(
            "dist_requests", endpoint=_endpoint_label(path)
        ).inc()
        if body is None:
            return 413, {"error": "payload-too-large",
                         "detail": f"body exceeds {MAX_BODY_BYTES} bytes"}, {}
        if path == "/v1/healthz":
            if method != "GET":
                return method_not_allowed("GET")
            return 200, self._health_body(), {}
        if path == "/v1/metricz":
            if method != "GET":
                return method_not_allowed("GET")
            self._refresh_gauges()
            return 200, self.metrics.to_dict(), {}
        if path.startswith("/v1/campaigns/"):
            if method != "GET":
                return method_not_allowed("GET")
            return self._campaign_status(path.removeprefix("/v1/campaigns/"))
        if path == "/v1/lease":
            if method != "POST":
                return method_not_allowed("POST")
            return self._handle_lease(body)
        if path == "/v1/heartbeat":
            if method != "POST":
                return method_not_allowed("POST")
            return self._handle_heartbeat(body)
        if path == "/v1/complete":
            if method != "POST":
                return method_not_allowed("POST")
            return self._handle_complete(body)
        return 404, {"error": "not-found", "detail": f"no route for {path}"}, {}

    # -- endpoint handlers ---------------------------------------------------

    def _handle_lease(self, body: bytes) -> tuple[int, dict, dict]:
        try:
            worker = parse_lease_request(json.loads(body or b"null"))
        except json.JSONDecodeError as exc:
            return 400, {"error": "bad-json", "detail": str(exc)}, {}
        except DistProtocolError as exc:
            return exc.status, exc.body(), {}
        self._note_expiries()
        if self._campaign_done():
            return 200, done_body(), {}
        lease = self.leases.acquire(worker)
        if lease is None:
            return 200, wait_body(_WAIT_RETRY_S), {}
        self.metrics.counter("dist_leases", event="granted").inc()
        fields = {}
        if lease.shard.shard_id in self._reclaimed:
            fields["reclaimed_from"] = self._reclaimed[lease.shard.shard_id]
        self.manifest.record_shard(
            lease.shard.shard_id, "leased",
            worker=worker, token=lease.token,
            jobs=[job.index for job in lease.shard.jobs],
            **fields,
        )
        self._emit(
            EventKind.LEASE_GRANTED,
            {"token": lease.token, "shard": lease.shard.shard_id,
             "worker": worker},
        )
        self._refresh_gauges()
        return 200, granted_body(
            lease.token,
            lease.shard.shard_id,
            [job_wire(job) for job in lease.shard.jobs],
            ttl_s=self.config.lease_ttl_s,
            timeout_s=self.config.job_timeout_s,
            retries=self.config.retries,
        ), {}

    def _handle_heartbeat(self, body: bytes) -> tuple[int, dict, dict]:
        try:
            token = parse_heartbeat_request(json.loads(body or b"null"))
        except json.JSONDecodeError as exc:
            return 400, {"error": "bad-json", "detail": str(exc)}, {}
        except DistProtocolError as exc:
            return exc.status, exc.body(), {}
        self._note_expiries()
        try:
            lease = self.leases.heartbeat(token)
        except LeaseError as exc:
            return 409, lease_lost_body(exc.detail), {}
        self.metrics.counter("dist_leases", event="renewed").inc()
        self._emit(
            EventKind.LEASE_RENEWED,
            {"token": token, "shard": lease.shard.shard_id},
        )
        return 200, {
            "protocol": DIST_PROTOCOL_VERSION,
            "status": "renewed",
            "ttl_s": self.config.lease_ttl_s,
        }, {}

    def _handle_complete(self, body: bytes) -> tuple[int, dict, dict]:
        try:
            token, results = parse_complete_request(json.loads(body or b"null"))
        except json.JSONDecodeError as exc:
            return 400, {"error": "bad-json", "detail": str(exc)}, {}
        except DistProtocolError as exc:
            return exc.status, exc.body(), {}
        self._note_expiries()
        try:
            shard, duplicate = self.leases.complete(token)
        except LeaseError as exc:
            return 409, lease_lost_body(exc.detail), {}
        if duplicate:
            self.metrics.counter("dist_leases", event="duplicate").inc()
            return 200, {
                "protocol": DIST_PROTOCOL_VERSION,
                "status": "accepted",
                "duplicate": True,
            }, {}
        self._merge_results(shard, results)
        self.metrics.counter("dist_leases", event="completed").inc()
        fields = {}
        if shard.shard_id in self._reclaimed:
            fields["reclaimed_from"] = self._reclaimed[shard.shard_id]
        self.manifest.record_shard(
            shard.shard_id, "done",
            jobs=[job.index for job in shard.jobs],
            **fields,
        )
        self._emit(
            EventKind.SHARD_COMPLETE,
            {"token": token, "shard": shard.shard_id,
             "jobs": len(shard.jobs)},
        )
        self._refresh_gauges()
        return 200, {
            "protocol": DIST_PROTOCOL_VERSION,
            "status": "accepted",
            "duplicate": False,
            "campaign_complete": self._campaign_done(),
        }, {}

    def _merge_results(self, shard, results: list[dict]) -> None:
        """Atomic-merge one shard's streamed results into the store."""
        by_index = {job.index: job for job in shard.jobs}
        for entry in results:
            job = by_index.get(entry["index"])
            if job is None:
                continue  # not this shard's job: ignore, don't trust
            if entry.get("ok"):
                try:
                    metrics = MergeMetrics.from_dict(entry["metrics"])
                except (KeyError, TypeError, ValueError):
                    self.aggregator.record_failure(
                        job.index, "undecodable metrics payload"
                    )
                    self.manifest.record(job.key, "failed")
                    self.metrics.counter("dist_jobs", outcome="failed").inc()
                    continue
                self.store.put(
                    job.key,
                    metrics,
                    config=config_to_dict(job.config),
                    seed=job.seed,
                    elapsed_s=entry.get("elapsed_s"),
                )
                self.aggregator.record(job.index, metrics)
                self.manifest.record(job.key, "done")
                self.metrics.counter("dist_jobs", outcome="completed").inc()
            else:
                self.aggregator.record_failure(
                    job.index, str(entry.get("error", "unknown error"))
                )
                self.manifest.record(job.key, "failed")
                self.metrics.counter("dist_jobs", outcome="failed").inc()

    def _campaign_status(self, name: str) -> tuple[int, dict, dict]:
        if name != self.spec.name:
            return 404, {"error": "not-found",
                         "detail": f"unknown campaign {name!r}"}, {}
        body = self.aggregator.snapshot()
        body["protocol"] = DIST_PROTOCOL_VERSION
        body["shards"] = self.leases.counts()
        body["leases"] = {
            "live": len(self.leases.live_leases()),
            "expired_total": self.leases.expired_total,
            "duplicate_total": self.leases.duplicate_total,
        }
        return 200, body, {}

    def _health_body(self) -> dict:
        counts = self.leases.counts()
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": DIST_PROTOCOL_VERSION,
            "campaign": self.spec.name,
            "uptime_s": self.clock() - self._started_at,
            "shards": counts,
            "complete": self._campaign_done(),
        }

    # -- obs -----------------------------------------------------------------

    def _note_expiries(self) -> None:
        """Fold lazily detected lease expiries into metrics/manifest."""
        for record in self.leases.sweep_expired():
            self.metrics.counter("dist_leases", event="expired").inc()
            self._reclaimed[record.shard_id] = record.worker
            self.manifest.record_shard(
                record.shard_id, "pending", reclaimed_from=record.worker
            )
            self._emit(
                EventKind.LEASE_EXPIRED,
                {"token": record.token, "shard": record.shard_id,
                 "worker": record.worker},
            )

    def _emit(self, kind: EventKind, args: dict) -> None:
        if self._trace is None:
            return
        now_ms = (self.clock() - (self._started_at or 0.0)) * 1000.0
        self._trace.instant(kind, "coordinator", now_ms, args)

    def _refresh_gauges(self) -> None:
        if self.leases is None:
            return
        counts = self.leases.counts()
        for status, value in counts.items():
            self.metrics.gauge("dist_shards", status=status).set(float(value))
        self.metrics.gauge("dist_jobs_in_flight").set(
            float(self.aggregator.in_flight)
        )


def _endpoint_label(path: str) -> str:
    """Bounded-cardinality endpoint label for metrics."""
    if path.startswith("/v1/campaigns/"):
        return "campaigns"
    known = {"/v1/lease": "lease", "/v1/heartbeat": "heartbeat",
             "/v1/complete": "complete", "/v1/healthz": "healthz",
             "/v1/metricz": "metricz"}
    return known.get(path, "other")


# -- threaded harness (tests, benchmarks, smoke scripts) ---------------------


class CoordinatorHandle:
    """A running coordinator on a daemon thread, stoppable from outside."""

    def __init__(self, coordinator: Coordinator, thread: threading.Thread):
        self.coordinator = coordinator
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return self.coordinator.config.host, self.coordinator.port

    def stop(self, timeout_s: float = 15.0) -> None:
        loop = self.coordinator._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.coordinator.request_drain)
        self.thread.join(timeout_s)

    def join(self, timeout_s: float = 60.0) -> None:
        """Wait for the coordinator to finish on its own
        (``exit_when_done`` campaigns)."""
        self.thread.join(timeout_s)

    def __enter__(self) -> "CoordinatorHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_coordinator_in_thread(
    coordinator: Coordinator, *, ready_timeout_s: float = 15.0
) -> CoordinatorHandle:
    """Run ``coordinator`` on a daemon thread; returns once accepting."""
    ready = threading.Event()
    failures: list[BaseException] = []

    def runner() -> None:
        try:
            asyncio.run(
                coordinator.run(
                    install_signal_handlers=False, on_ready=ready.set
                )
            )
        except BaseException as exc:
            failures.append(exc)
            ready.set()
            raise

    thread = threading.Thread(
        target=runner, name="repro-dist-coordinator", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout_s):
        raise RuntimeError("coordinator did not start within the timeout")
    if failures:
        raise RuntimeError("coordinator failed to start") from failures[0]
    return CoordinatorHandle(coordinator, thread)
