"""The worker loop: lease, execute, heartbeat, stream back, repeat.

A :class:`DistWorker` is deliberately dumb — all campaign state lives
at the coordinator.  The loop:

1. ``POST /v1/lease``.  ``done`` → exit; ``wait`` → sleep and retry.
2. Execute each leased job through the exact sweep
   :func:`~repro.sweep.worker.execute_job` path (kernel selection,
   fault plans, and SIGALRM per-job timeouts all inherited), with the
   coordinator-relayed retry budget.  Between jobs, heartbeat whenever
   the lease TTL has less than half its budget left.
3. ``POST /v1/complete`` with every result (successes carry metrics,
   failures carry the error string).

A ``409`` from heartbeat or complete means the lease expired (this
worker stalled, or the campaign was re-coordinated): the shard is
abandoned without ceremony — the coordinator already re-issued it —
and the loop leases afresh.  SIGALRM is main-thread-only, so in-thread
workers (tests, the bench harness) auto-disable timeout enforcement.

All timing goes through the injected clock/sleep seam
(:mod:`repro.serve.clock`); the module stays in the lint determinism
scope.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Optional

from repro.dist.client import CoordinatorClient, is_lease_lost
from repro.serve.client import RetryPolicy, ServeError, ServeHTTPError
from repro.serve.clock import Clock, Sleep, blocking_sleep, monotonic_clock
from repro.sweep.worker import execute_job

#: Default first-contact retry: workers are routinely launched before
#: the coordinator's socket listens (e.g. `repro dist work` in one
#: terminal, `repro dist coordinate` still starting in another), so a
#: refused connection before first contact is retried with the same
#: capped-backoff shape ServeClient uses, not treated as fatal.
CONNECT_RETRY = RetryPolicy(max_attempts=6, backoff_s=0.25)


@dataclasses.dataclass
class WorkerStats:
    """What one worker did across its whole run."""

    leases: int = 0
    jobs_ok: int = 0
    jobs_failed: int = 0
    shards_completed: int = 0
    shards_lost: int = 0
    heartbeats: int = 0
    #: Refused/failed connection attempts retried before first contact.
    connect_retries: int = 0
    #: The coordinator vanished after we had talked to it — for an
    #: ``exit_when_done`` campaign that just means it finished first.
    coordinator_gone: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerStats":
        names = {field.name for field in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


class DistWorker:
    """One pull-loop worker against one coordinator."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8178,
        *,
        worker_id: str = "worker",
        client: Optional[CoordinatorClient] = None,
        clock: Clock = monotonic_clock,
        sleep: Sleep = blocking_sleep,
        poll_s: float = 0.25,
        enforce_timeouts: Optional[bool] = None,
        connect_retry: RetryPolicy = CONNECT_RETRY,
    ) -> None:
        self.client = client if client is not None else CoordinatorClient(
            host, port, client_id=worker_id
        )
        self.worker_id = worker_id
        self.clock = clock
        self.sleep = sleep
        self.poll_s = poll_s
        # SIGALRM (signal.setitimer) raises off the main thread; detect
        # rather than crash when embedded in tests or the bench harness.
        if enforce_timeouts is None:
            enforce_timeouts = (
                threading.current_thread() is threading.main_thread()
            )
        self.enforce_timeouts = enforce_timeouts
        self.connect_retry = connect_retry
        self.stats = WorkerStats()
        self._contacted = False

    def run(self, *, max_leases: Optional[int] = None) -> WorkerStats:
        """Pull and execute shards until the campaign reports done.

        ``max_leases`` bounds how many granted leases to process
        (tests); ``None`` runs to campaign completion.  A coordinator
        that disappears *after* first contact is treated as a finished
        ``exit_when_done`` campaign, not an error — by then every shard
        this worker could have helped with is settled or re-issuable.
        Before first contact, connection failures are retried with
        capped backoff (``connect_retry``): workers started ahead of
        the coordinator's socket wait for it instead of dying.
        """
        connect_attempts = 0
        while max_leases is None or self.stats.leases < max_leases:
            try:
                response = self.client.lease(self.worker_id)
            except ServeHTTPError:
                raise
            except ServeError:
                if self._contacted:
                    self.stats.coordinator_gone = True
                    break
                connect_attempts += 1
                if connect_attempts >= self.connect_retry.max_attempts:
                    raise
                self.stats.connect_retries += 1
                self.sleep(self.connect_retry.backoff_for(connect_attempts))
                continue
            self._contacted = True
            status = response.get("status")
            if status == "done":
                break
            if status == "wait":
                self.sleep(float(response.get("retry_after_s", self.poll_s)))
                continue
            if status != "granted":
                raise ServeError(f"unexpected lease answer: {response!r}")
            self.stats.leases += 1
            if self._process_lease(response["lease"]):
                break  # that complete finished the campaign
        return self.stats

    # -- one shard -----------------------------------------------------------

    def _process_lease(self, lease: dict) -> bool:
        """Execute one leased shard; True when the campaign completed."""
        token = lease["token"]
        ttl_s = float(lease["ttl_s"])
        retries = int(lease.get("retries", 1))
        timeout_s = lease.get("timeout_s")
        if not self.enforce_timeouts:
            timeout_s = None
        renewed_at = self.clock()
        results: list[dict] = []
        for job in lease["jobs"]:
            renewed = self._maybe_heartbeat(token, renewed_at, ttl_s)
            if renewed is None:
                self.stats.shards_lost += 1
                return False  # lease gone: the shard is someone else's now
            renewed_at = renewed
            results.append(self._run_job(job, timeout_s, retries))
        try:
            answer = self.client.complete(token, results)
        except ServeHTTPError as exc:
            if is_lease_lost(exc):
                self.stats.shards_lost += 1
                return False
            raise
        self.stats.shards_completed += 1
        return bool(answer.get("campaign_complete"))

    def _maybe_heartbeat(
        self, token: str, renewed_at: float, ttl_s: float
    ) -> Optional[float]:
        """Renew when less than half the TTL remains.

        Returns the new renewal timestamp, or ``None`` when the lease
        is lost.
        """
        now = self.clock()
        if now - renewed_at < ttl_s / 2.0:
            return renewed_at
        try:
            self.client.heartbeat(token)
        except ServeHTTPError as exc:
            if is_lease_lost(exc):
                return None
            raise
        self.stats.heartbeats += 1
        return now

    def _run_job(
        self, job: dict, timeout_s: Optional[float], retries: int
    ) -> dict:
        payload = {
            "config": job["config"],
            "trial": job["trial"],
            "timeout_s": timeout_s,
        }
        error: Optional[str] = None
        for _attempt in range(max(1, retries)):
            try:
                outcome = execute_job(payload)
            except Exception as exc:
                # Job isolation boundary: one failing simulation must be
                # reported to the coordinator, never kill the worker (the
                # coordinator would wait out the lease TTL for nothing).
                error = f"{type(exc).__name__}: {exc}"
                continue
            self.stats.jobs_ok += 1
            return {
                "index": job["index"],
                "ok": True,
                "metrics": outcome["metrics"],
                "elapsed_s": outcome.get("elapsed_s"),
            }
        self.stats.jobs_failed += 1
        return {"index": job["index"], "ok": False, "error": error}
