"""A blocking client for the coordinator protocol.

:class:`CoordinatorClient` reuses the :class:`~repro.serve.client.ServeClient`
transport wholesale — one fresh ``http.client`` connection per request,
capped-exponential retry of ``429``/``503``/``504`` and transport
errors, injected sleep.  Lease conflicts (``409``) are deliberately
*not* retryable: they surface as
:class:`~repro.serve.client.ServeHTTPError` with ``status == 409``,
which the worker loop treats as "drop this shard and lease another".
"""

from __future__ import annotations

from repro.serve.client import ServeClient, ServeHTTPError


def is_lease_lost(error: ServeHTTPError) -> bool:
    """True when the server said this lease can no longer be honored."""
    return error.status == 409


class CoordinatorClient(ServeClient):
    """Blocking JSON client speaking the dist protocol (docs/DIST.md)."""

    def lease(self, worker: str) -> dict:
        """``POST /v1/lease``; body status is granted / wait / done."""
        return self._request("POST", "/v1/lease", {"worker": worker})

    def heartbeat(self, token: str) -> dict:
        """``POST /v1/heartbeat``; raises 409 ServeHTTPError when lost."""
        return self._request("POST", "/v1/heartbeat", {"token": token})

    def complete(self, token: str, results: list[dict]) -> dict:
        """``POST /v1/complete``; streams one shard's results back."""
        return self._request(
            "POST", "/v1/complete", {"token": token, "results": results}
        )

    def campaign(self, name: str) -> dict:
        """``GET /v1/campaigns/<name>``; partial aggregates any time."""
        return self._request("GET", f"/v1/campaigns/{name}")
