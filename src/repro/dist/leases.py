"""Lease bookkeeping: the crash-safety core of the dist subsystem.

A :class:`LeaseManager` is a small synchronous state machine (the
coordinator's event loop is its lock) tracking every shard through
``pending → leased → done``:

* :meth:`acquire` hands the lowest-numbered pending shard to a worker
  under a token with a TTL.
* :meth:`heartbeat` extends a live lease's TTL.
* :meth:`complete` settles a shard.  Any *known* token settles — even
  an expired one, because results are content-addressed: if the shard
  was re-issued meanwhile, both workers computed byte-identical
  entries and the second ``complete`` is a recorded duplicate, not a
  conflict.
* Expiry is **lazy**: every public call first sweeps live leases
  against the injected clock and returns expired shards to the front
  of the pending pool (lowest shard first), so killing a worker never
  needs a background timer — the next lease request re-issues its
  work.

Time only ever enters through the injected ``clock`` (the
:mod:`repro.serve.clock` seam), keeping the whole state machine
deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dist.shards import Shard
from repro.serve.clock import Clock, monotonic_clock


class LeaseError(Exception):
    """An operation referenced a token the manager cannot honor."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


@dataclass
class Lease:
    """One live (or historical) checkout of one shard."""

    token: str
    shard: Shard
    worker: str
    granted_at: float
    expires_at: float
    renewals: int = 0

    def remaining_s(self, now: float) -> float:
        return self.expires_at - now


@dataclass
class ExpiryRecord:
    """One lease the lazy sweep reclaimed (for metrics/tracing)."""

    token: str
    shard_id: str
    worker: str
    expired_at: float = field(default=0.0)


class LeaseManager:
    """Shard states and live leases of one campaign."""

    def __init__(
        self,
        shards: list[Shard],
        *,
        ttl_s: float = 30.0,
        clock: Clock = monotonic_clock,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be > 0")
        self.ttl_s = ttl_s
        self.clock = clock
        self._shards = {shard.shard_id: shard for shard in shards}
        #: shard_id -> "pending" | "leased" | "done"
        self._status = {shard.shard_id: "pending" for shard in shards}
        self._pending = [shard.shard_id for shard in shards]
        self._live: dict[str, Lease] = {}  # token -> live lease
        self._token_shard: dict[str, str] = {}  # every token ever issued
        self._seq = 0
        self.expired_total = 0
        self.duplicate_total = 0

    # -- queries -------------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(status == "done" for status in self._status.values())

    def counts(self) -> dict[str, int]:
        self.sweep_expired()
        counts = {"pending": 0, "leased": 0, "done": 0}
        for status in self._status.values():
            counts[status] += 1
        return counts

    def shard(self, shard_id: str) -> Shard:
        return self._shards[shard_id]

    def live_leases(self) -> list[Lease]:
        self.sweep_expired()
        return sorted(self._live.values(), key=lambda lease: lease.token)

    # -- the state machine ---------------------------------------------------

    def sweep_expired(self) -> list[ExpiryRecord]:
        """Reclaim every lease past its TTL; returns what was reclaimed."""
        now = self.clock()
        expired = [
            lease for lease in self._live.values() if lease.expires_at <= now
        ]
        records = []
        for lease in sorted(expired, key=lambda entry: entry.shard.shard_id):
            del self._live[lease.token]
            if self._status[lease.shard.shard_id] == "leased":
                self._status[lease.shard.shard_id] = "pending"
                # Front of the pool: reclaimed work is the oldest work.
                self._pending.insert(0, lease.shard.shard_id)
            self.expired_total += 1
            records.append(
                ExpiryRecord(
                    token=lease.token,
                    shard_id=lease.shard.shard_id,
                    worker=lease.worker,
                    expired_at=now,
                )
            )
        return records

    def acquire(self, worker: str) -> Optional[Lease]:
        """Lease the next pending shard to ``worker`` (None = nothing
        pending right now — either all done or all leased elsewhere)."""
        self.sweep_expired()
        if not self._pending:
            return None
        shard_id = self._pending.pop(0)
        self._status[shard_id] = "leased"
        self._seq += 1
        now = self.clock()
        lease = Lease(
            token=f"lease-{self._seq:06d}",
            shard=self._shards[shard_id],
            worker=worker,
            granted_at=now,
            expires_at=now + self.ttl_s,
        )
        self._live[lease.token] = lease
        self._token_shard[lease.token] = shard_id
        return lease

    def heartbeat(self, token: str) -> Lease:
        """Extend a live lease's TTL; raises :class:`LeaseError` if the
        lease already expired (its shard may be running elsewhere)."""
        self.sweep_expired()
        lease = self._live.get(token)
        if lease is None:
            if token in self._token_shard:
                raise LeaseError(
                    "lease-lost",
                    f"lease {token} expired; its shard was returned to "
                    "the pool",
                )
            raise LeaseError("unknown-token", f"no lease {token} was issued")
        lease.expires_at = self.clock() + self.ttl_s
        lease.renewals += 1
        return lease

    def complete(self, token: str) -> tuple[Shard, bool]:
        """Settle the shard behind ``token``; returns ``(shard, duplicate)``.

        Any issued token settles its shard — a worker that lost its
        lease mid-shard still computed correct, content-addressed
        results, so discarding them would only waste work.  If the
        shard is already done the call is an idempotent duplicate; if
        it was re-issued to another live worker, that newer lease is
        revoked (its eventual ``complete`` becomes the duplicate).
        """
        self.sweep_expired()
        shard_id = self._token_shard.get(token)
        if shard_id is None:
            raise LeaseError("unknown-token", f"no lease {token} was issued")
        shard = self._shards[shard_id]
        if self._status[shard_id] == "done":
            self.duplicate_total += 1
            return shard, True
        # Revoke any other live lease on the same shard.
        for other_token, lease in list(self._live.items()):
            if lease.shard.shard_id == shard_id:
                del self._live[other_token]
        if shard_id in self._pending:
            self._pending.remove(shard_id)
        self._status[shard_id] = "done"
        return shard, False
