"""Wire formats of the coordinator/worker protocol (docs/DIST.md).

Everything on the wire is JSON over the shared :mod:`repro.netutil`
HTTP/1.1 dialect.  This module owns request parsing and response
shaping for the four coordinator endpoints so :mod:`.coordinator` and
:mod:`.client` agree by construction:

* ``POST /v1/lease``      — ``{"worker": id}`` → granted / wait / done
* ``POST /v1/heartbeat``  — ``{"token": t}`` → renewed, or 409
* ``POST /v1/complete``   — ``{"token": t, "results": [...]}``
* ``GET  /v1/campaigns/<name>`` — streaming-aggregation snapshot

A lease error is a **409 Conflict** — deliberately outside the
client's retryable statuses, because retrying an expired lease cannot
help; the worker must drop the shard and ask for a fresh lease.
"""

from __future__ import annotations

from typing import Any, Optional

#: Version stamp carried in every coordinator answer.
DIST_PROTOCOL_VERSION = 1


class DistProtocolError(Exception):
    """A malformed request, mapped straight to an HTTP answer."""

    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.code = code
        self.detail = detail

    def body(self) -> dict:
        return {"error": self.code, "detail": self.detail}


def _require_dict(payload: Any) -> dict:
    if not isinstance(payload, dict):
        raise DistProtocolError(
            400, "bad-request", "request body must be a JSON object"
        )
    return payload


def parse_lease_request(payload: Any) -> str:
    """``{"worker": <id>}`` → the worker id."""
    data = _require_dict(payload)
    worker = data.get("worker")
    if not isinstance(worker, str) or not worker:
        raise DistProtocolError(
            400, "bad-request", "'worker' must be a non-empty string"
        )
    return worker


def parse_heartbeat_request(payload: Any) -> str:
    """``{"token": <lease token>}`` → the token."""
    data = _require_dict(payload)
    token = data.get("token")
    if not isinstance(token, str) or not token:
        raise DistProtocolError(
            400, "bad-request", "'token' must be a non-empty string"
        )
    return token


def parse_complete_request(payload: Any) -> tuple[str, list[dict]]:
    """``{"token": t, "results": [...]}`` → ``(token, results)``.

    Each result is ``{"index": int, "ok": bool}`` plus, when ok,
    ``"metrics"``/``"elapsed_s"``, or ``"error"`` when not.
    """
    data = _require_dict(payload)
    token = data.get("token")
    if not isinstance(token, str) or not token:
        raise DistProtocolError(
            400, "bad-request", "'token' must be a non-empty string"
        )
    results = data.get("results")
    if not isinstance(results, list):
        raise DistProtocolError(
            400, "bad-request", "'results' must be a list"
        )
    for entry in results:
        if not isinstance(entry, dict) or not isinstance(
            entry.get("index"), int
        ):
            raise DistProtocolError(
                400, "bad-request",
                "each result needs an integer 'index'",
            )
        if entry.get("ok") and not isinstance(entry.get("metrics"), dict):
            raise DistProtocolError(
                400, "bad-request",
                "an ok result needs a 'metrics' dict",
            )
    return token, results


# -- response shaping --------------------------------------------------------


def granted_body(
    token: str,
    shard_id: str,
    jobs: list[dict],
    *,
    ttl_s: float,
    timeout_s: Optional[float],
    retries: int,
) -> dict:
    return {
        "protocol": DIST_PROTOCOL_VERSION,
        "status": "granted",
        "lease": {
            "token": token,
            "shard": shard_id,
            "ttl_s": ttl_s,
            "jobs": jobs,
            "timeout_s": timeout_s,
            "retries": retries,
        },
    }


def wait_body(retry_after_s: float) -> dict:
    return {
        "protocol": DIST_PROTOCOL_VERSION,
        "status": "wait",
        "retry_after_s": retry_after_s,
    }


def done_body() -> dict:
    return {"protocol": DIST_PROTOCOL_VERSION, "status": "done"}


def lease_lost_body(detail: str) -> dict:
    return {"error": "lease-lost", "detail": detail}
