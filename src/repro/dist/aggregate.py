"""Streaming campaign aggregation: partial results while workers run.

The single-host :class:`~repro.sweep.engine.SweepEngine` only builds
its :class:`~repro.core.metrics.AggregateMetrics` when the whole sweep
returns.  A distributed campaign instead settles jobs one streamed
``complete`` at a time, in whatever order leases land — so the
aggregator keeps a per-job result map and can produce, at any moment,

* a cheap **snapshot** (completed / failed / in-flight counts plus the
  partial per-cell aggregates built from whatever trials have landed),
  which is what ``GET /v1/campaigns/<name>`` answers mid-run, and
* the **final result**, ordered by trial index within each cell —
  exactly the trial order the single-host engine produces, which is
  what makes the two paths' aggregates comparable.
"""

from __future__ import annotations

from typing import Optional

from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.sweep.spec import SweepSpec


class CampaignAggregator:
    """Per-job results of one campaign, aggregated on demand."""

    def __init__(self, spec: SweepSpec) -> None:
        self.spec = spec
        self.jobs = spec.jobs()
        self._by_index = {job.index: job for job in self.jobs}
        self._configs = spec.cells()
        self._results: dict[int, MergeMetrics] = {}
        self._failures: dict[int, str] = {}
        self.cached = 0  # jobs settled from the store at startup

    # -- recording -----------------------------------------------------------

    def record(
        self, index: int, metrics: MergeMetrics, *, cached: bool = False
    ) -> None:
        """Settle job ``index`` with its metrics (idempotent)."""
        if index not in self._by_index:
            raise KeyError(f"campaign has no job index {index}")
        fresh = index not in self._results
        self._results[index] = metrics
        self._failures.pop(index, None)
        if cached and fresh:
            self.cached += 1

    def record_failure(self, index: int, error: str) -> None:
        """Settle job ``index`` as permanently failed."""
        if index not in self._by_index:
            raise KeyError(f"campaign has no job index {index}")
        if index not in self._results:
            self._failures[index] = error

    # -- queries -------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.jobs)

    @property
    def completed(self) -> int:
        return len(self._results)

    @property
    def failed(self) -> int:
        return len(self._failures)

    @property
    def settled(self) -> int:
        return self.completed + self.failed

    @property
    def in_flight(self) -> int:
        return self.total - self.settled

    def is_complete(self) -> bool:
        return self.settled == self.total

    def failures(self) -> dict[int, str]:
        return dict(self._failures)

    def cell_aggregates(self) -> list[AggregateMetrics]:
        """Per-cell aggregates over the trials that have landed so far.

        Trials appear in trial-index order within each cell, matching
        the single-host engine's ordering regardless of the order
        shards completed in.
        """
        per_cell: dict[int, list] = {
            cell: [] for cell in range(len(self._configs))
        }
        for job in self.jobs:
            metrics = self._results.get(job.index)
            if metrics is not None:
                per_cell[job.cell].append((job.trial, metrics))
        aggregates = []
        for cell, config in enumerate(self._configs):
            trials = [m for _, m in sorted(per_cell[cell])]
            aggregates.append(AggregateMetrics(config.describe(), trials))
        return aggregates

    def snapshot(self, *, include_cells: bool = True) -> dict:
        """The JSON body of ``GET /v1/campaigns/<name>`` (partial OK)."""
        body: dict = {
            "campaign": self.spec.name,
            "spec_key": self.spec.spec_key(),
            "jobs": {
                "total": self.total,
                "completed": self.completed,
                "cached": self.cached,
                "failed": self.failed,
                "in_flight": self.in_flight,
            },
            "complete": self.is_complete(),
        }
        if self._failures:
            body["failures"] = {
                str(index): error
                for index, error in sorted(self._failures.items())
            }
        if include_cells:
            body["cells"] = [
                aggregate.to_dict() for aggregate in self.cell_aggregates()
            ]
        return body

    def result(self) -> list[AggregateMetrics]:
        """Final per-cell aggregates (call once :meth:`is_complete`)."""
        return self.cell_aggregates()

    def metrics_for(self, index: int) -> Optional[MergeMetrics]:
        return self._results.get(index)
