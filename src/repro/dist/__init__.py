"""Distributed, resumable sweep execution (docs/DIST.md).

One coordinator (``repro dist coordinate``) owns a campaign: it
expands a :class:`~repro.sweep.spec.SweepSpec` into contiguous job
shards, hands them to workers under crash-safe time-limited leases
(lease → heartbeat → complete / expire; an expired lease is simply
re-issued, so a SIGKILL'd worker never loses work), and merges the
streamed-back results into the shared content-addressed
:class:`~repro.sweep.store.ResultStore` — the same store, keys, and
payloads a single-host :class:`~repro.sweep.engine.SweepEngine` run
produces, byte for byte.  Workers (``repro dist work``) are dumb pull
loops around the exact sweep :func:`~repro.sweep.worker.execute_job`
path, so kernels, fault plans, and SIGALRM job timeouts are inherited
unchanged.

The HTTP/JSON dialect is :mod:`repro.netutil` (shared with
:mod:`repro.serve`), and all wall-clock access goes through the
injected :mod:`repro.serve.clock` seam — the dist package itself is
inside the lint determinism scope.
"""

from repro.dist.aggregate import CampaignAggregator
from repro.dist.client import CoordinatorClient
from repro.dist.coordinator import Coordinator, CoordinatorConfig
from repro.dist.leases import Lease, LeaseError, LeaseManager
from repro.dist.protocol import DIST_PROTOCOL_VERSION
from repro.dist.shards import Shard, job_from_wire, job_wire, make_shards
from repro.dist.worker import DistWorker, WorkerStats

__all__ = [
    "CampaignAggregator",
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorClient",
    "DIST_PROTOCOL_VERSION",
    "DistWorker",
    "Lease",
    "LeaseError",
    "LeaseManager",
    "Shard",
    "WorkerStats",
    "job_from_wire",
    "job_wire",
    "make_shards",
]
