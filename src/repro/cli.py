"""Command-line interface.

Usage::

    python -m repro list
    python -m repro run fig-3.2a --quick
    python -m repro run all --out results.txt
    python -m repro paper-check
    python -m repro simulate -k 25 -D 5 --strategy inter-run -N 10
    python -m repro sweep -k 25 -D 1,2,5 --strategy intra-run -N 5,10,20 \
        --workers 4 --blocks 200
    python -m repro serve --port 8177 --workers 2 --rate 10
"""

from __future__ import annotations

import argparse
import sys

from repro.core.parameters import (
    CachePolicy,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.core.simulator import MergeSimulation
from repro.sim.kernel import kernel_names


def _common_parser() -> argparse.ArgumentParser:
    """The shared parent parser of ``run``/``simulate``/``sweep``/``bench run``.

    One definition per flag, uniform spelling and defaults everywhere:
    ``--kernel``/``--faults``/``--seed`` default to None (each command
    applies its own fallback), ``--trace``/``--trace-out`` turn on the
    observability layer (:mod:`repro.obs`).
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group(
        "common options (uniform across run, simulate, sweep, bench run)"
    )
    group.add_argument(
        "--kernel", choices=kernel_names(), default=None,
        help="simulation kernel (results are bit-identical across "
        "kernels; 'fast' only changes wall-clock time)",
    )
    group.add_argument(
        "--faults", metavar="PLAN_JSON", default=None,
        help="subject plan-free configurations to this fault plan "
        "(JSON file, see repro.faults); a zero-fault plan reproduces "
        "the baseline numbers exactly",
    )
    group.add_argument(
        "--seed", type=int, default=None,
        help="override the base seed (default: the command's pinned seed)",
    )
    group.add_argument(
        "--trace", action="store_true",
        help="collect a structured trace (repro.obs) and print a text "
        "timeline",
    )
    group.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the collected trace to PATH: .json = Chrome "
        "trace_event (Perfetto-loadable), .jsonl = flat event log; "
        "implies --trace",
    )
    return common


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Pai & Varman (ICDE 1992): prefetching with "
            "multiple disks for external mergesort."
        ),
    )
    common = _common_parser()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run = sub.add_parser(
        "run", parents=[common],
        help="run experiments by id (or 'all', or a bench scenario name)",
    )
    run.add_argument(
        "ids", nargs="+",
        help="experiment ids, 'all', or single-config bench scenario "
        "names (e.g. merge-d5)",
    )
    run.add_argument("--quick", action="store_true", help="reduced scale")
    run.add_argument("--trials", type=int, help="override trial count")
    run.add_argument("--blocks", type=int, help="override blocks per run")
    run.add_argument("--out", help="also write the report to this file")
    run.add_argument(
        "--export-dir",
        help="also export JSON + CSV per experiment into this directory",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="fan simulations out through the sweep engine with this many "
        "worker processes (and the persistent result cache)",
    )
    run.add_argument(
        "--cache-dir", default=None,
        help="result cache directory used with --workers "
        "(default results/cache)",
    )

    sub.add_parser(
        "paper-check",
        help="print the paper's analytical numbers from the closed forms",
    )

    validate = sub.add_parser(
        "validate",
        help="audit the reproduction: simulate every paper-printed value "
        "at full scale and report verdicts (~3 min)",
    )
    validate.add_argument(
        "--blocks", type=int, default=None,
        help="override blocks per run (full paper scale = 1000; smaller "
        "values are smoke tests, not comparable to the paper)",
    )

    sub.add_parser(
        "selfcheck",
        help="quick end-to-end verification: analytics + reduced-scale "
        "simulations against the closed forms (~15s)",
    )

    predict = sub.add_parser(
        "predict", help="analytical estimate for one configuration (no simulation)"
    )
    predict.add_argument("-k", "--runs", type=int, required=True)
    predict.add_argument("-D", "--disks", type=int, required=True)
    predict.add_argument(
        "--strategy",
        choices=[s.value for s in PrefetchStrategy],
        default=PrefetchStrategy.NONE.value,
    )
    predict.add_argument("-N", "--depth", type=int, default=1)
    predict.add_argument("--blocks", type=int, default=1000)
    predict.add_argument("--sync", action="store_true")

    plan = sub.add_parser(
        "plan",
        help="multi-pass merge plan and whole-sort time estimate for a "
        "cache budget",
    )
    plan.add_argument("-k", "--runs", type=int, required=True,
                      help="initial sorted runs")
    plan.add_argument("-D", "--disks", type=int, default=1)
    plan.add_argument("--blocks", type=int, default=1000,
                      help="blocks per initial run")
    plan.add_argument("--cache", type=int, required=True,
                      help="cache budget in blocks")
    plan.add_argument("-N", "--depth", type=int, default=1,
                      help="intra-run prefetch depth")

    gen = sub.add_parser(
        "gen", help="generate a binary input file of random records"
    )
    gen.add_argument("path", help="output file (.blk)")
    gen.add_argument("-n", "--records", type=int, required=True)
    gen.add_argument("--seed", type=int, default=1992)

    sort = sub.add_parser(
        "sort", help="externally sort a binary record file with bounded memory"
    )
    sort.add_argument("input", help="input .blk file (see 'repro gen')")
    sort.add_argument("output", help="sorted output file")
    sort.add_argument(
        "--memory-records", type=int, default=65_536,
        help="records held in memory during run formation (default 64Ki)",
    )
    sort.add_argument(
        "--temp-dir", action="append", default=None,
        help="spill directory (repeat for several 'disks'; default: "
        "alongside the output)",
    )
    sort.add_argument("--fan-in", type=int, default=None,
                      help="maximum merge order (forces extra passes)")
    sort.add_argument("--verify", action="store_true",
                      help="re-read and check the output after sorting")

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="parallel parameter sweep with a persistent result cache; "
        "comma-separate a flag's values to sweep it "
        "(e.g. -D 1,2,5 -N 5,10,20); 'repro sweep gc' compacts the cache",
    )
    sweep.add_argument(
        "action", nargs="?", default="run", choices=["run", "gc"],
        help="'run' (default) executes the sweep; 'gc' reclaims orphaned "
        "temp files and stale campaign manifests from --cache-dir",
    )
    sweep.add_argument(
        "--min-age", type=float, default=3600.0, metavar="SECONDS",
        help="gc: only remove files older than this (default 3600; "
        "protects in-flight writes of live sweeps)",
    )
    sweep.add_argument(
        "--remove-completed", action="store_true",
        help="gc: also remove campaign manifests whose every job is done",
    )
    sweep.add_argument(
        "--dry-run", action="store_true",
        help="gc: report what would be removed without deleting anything",
    )
    sweep.add_argument("-k", "--runs", default="25",
                       help="number of runs k (comma list to sweep)")
    sweep.add_argument("-D", "--disks", default="1",
                       help="number of disks D (comma list to sweep)")
    sweep.add_argument(
        "--strategy", default=PrefetchStrategy.NONE.value,
        help="prefetch strategy (comma list to sweep): "
        + ", ".join(s.value for s in PrefetchStrategy),
    )
    sweep.add_argument("-N", "--depth", default="1",
                       help="prefetch depth N (comma list to sweep)")
    sweep.add_argument("--cache", default=None,
                       help="cache capacity C in blocks (comma list to sweep)")
    sweep.add_argument("--cpu-ms", default="0.0",
                       help="CPU ms per block (comma list to sweep)")
    sweep.add_argument("--blocks", type=int, default=1000)
    sweep.add_argument("--trials", type=int, default=5)
    sweep.add_argument("--sync", action="store_true")
    sweep.add_argument(
        "--fault-rate", default=None,
        help="sweep a transient per-attempt failure probability on "
        "drive 0 (comma list, e.g. 0.0,0.05,0.2); combines with the "
        "other axes",
    )
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = inline)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds")
    sweep.add_argument("--retries", type=int, default=1,
                       help="retry attempts per failed job")
    sweep.add_argument("--cache-dir", default="results/cache",
                       help="persistent result cache directory")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    sweep.add_argument("--name", default="cli-sweep",
                       help="campaign name (checkpoint manifest key)")
    sweep.add_argument("--export", help="write full sweep results JSON here")
    sweep.add_argument("--progress-json",
                       help="write final progress counters JSON here")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")

    simulate = sub.add_parser(
        "simulate", parents=[common], help="run one custom configuration"
    )
    simulate.add_argument("-k", "--runs", type=int, required=True)
    simulate.add_argument("-D", "--disks", type=int, required=True)
    simulate.add_argument(
        "--strategy",
        choices=[s.value for s in PrefetchStrategy],
        default=PrefetchStrategy.NONE.value,
    )
    simulate.add_argument("-N", "--depth", type=int, default=1)
    simulate.add_argument("--cache", type=int)
    simulate.add_argument("--blocks", type=int, default=1000)
    simulate.add_argument("--sync", action="store_true")
    simulate.add_argument("--cpu-ms", type=float, default=0.0)
    simulate.add_argument(
        "--policy",
        choices=[p.value for p in CachePolicy],
        default=CachePolicy.CONSERVATIVE.value,
    )
    simulate.add_argument(
        "--selector",
        choices=[s.value for s in VictimSelector],
        default=VictimSelector.RANDOM.value,
    )
    simulate.add_argument("--trials", type=int, default=5)
    simulate.add_argument(
        "--timeline",
        action="store_true",
        help="print disk/cache utilization sparklines (first trial)",
    )

    bench = sub.add_parser(
        "bench",
        help="performance benchmarks: fixed scenarios, canonical "
        "BENCH_<scenario>.json reports, regression comparison",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", parents=[common],
        help="benchmark scenarios and write BENCH_<scenario>.json",
    )
    bench_run.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to run (repeatable; default: all registered)",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=None,
        help="timed repetitions per variant (default: per scenario)",
    )
    bench_run.add_argument(
        "--warmup", type=int, default=None,
        help="untimed warmup calls per variant (default: per scenario)",
    )
    bench_run.add_argument(
        "--out-dir", default=".",
        help="directory for the BENCH_<scenario>.json files (default: "
        "current directory)",
    )
    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff two bench reports; non-zero exit on median regression",
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("current", help="current BENCH_*.json")
    bench_compare.add_argument(
        "--threshold", type=float, default=0.25,
        help="fail when current/baseline median exceeds 1+threshold "
        "(default 0.25 = 25%% slower)",
    )
    bench_sub.add_parser("list", help="list registered bench scenarios")

    trace_cmd = sub.add_parser(
        "trace", help="trace artifact utilities (see docs/OBSERVABILITY.md)"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_validate = trace_sub.add_parser(
        "validate",
        help="validate a Chrome trace JSON against the checked-in schema "
        "(docs/schemas/chrome_trace_schema.json)",
    )
    trace_validate.add_argument(
        "path", help="trace file written with --trace-out"
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON simulation service (caching, coalescing, "
        "rate limits, backpressure; see docs/SERVE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8177,
                       help="bind port; 0 picks an ephemeral port")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for cache misses; 0 computes in-process "
        "on a thread (default 2)",
    )
    serve.add_argument(
        "--rate", type=float, default=0.0,
        help="per-client request rate limit in requests/s; 0 disables "
        "(default)",
    )
    serve.add_argument(
        "--burst", type=float, default=None,
        help="per-client token-bucket capacity (default max(1, rate))",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="concurrent compute slots before misses are shed with 503; "
        "0 disables shedding (default 64)",
    )
    serve.add_argument(
        "--deadline", type=float, default=30.0,
        help="default per-request deadline in seconds; 0 disables "
        "(default 30)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-trial SIGALRM budget inside pool workers (seconds)",
    )
    serve.add_argument(
        "--cache-dir", default="results/cache",
        help="content-addressed result store shared with 'repro sweep' "
        "(default results/cache)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds a SIGTERM drain waits for in-flight work "
        "(default 10)",
    )

    dist = sub.add_parser(
        "dist",
        help="distributed sweep execution: coordinator + pull workers "
        "with crash-safe leases (see docs/DIST.md)",
    )
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)
    coordinate = dist_sub.add_parser(
        "coordinate",
        help="serve one campaign: shard the spec, lease shards to "
        "workers, merge streamed results into the shared cache",
    )
    coordinate.add_argument(
        "--spec", required=True, metavar="SPEC_JSON",
        help="campaign spec file (the JSON form of a SweepSpec: name, "
        "base, grid, trials, base_seed)",
    )
    coordinate.add_argument("--host", default="127.0.0.1",
                            help="bind address (default 127.0.0.1)")
    coordinate.add_argument("--port", type=int, default=8178,
                            help="bind port; 0 picks an ephemeral port")
    coordinate.add_argument(
        "--shard-size", type=int, default=4,
        help="jobs per shard — the lease granularity (default 4)",
    )
    coordinate.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds a worker may stay silent before its shard is "
        "re-issued (default 30)",
    )
    coordinate.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job SIGALRM budget relayed to workers (seconds)",
    )
    coordinate.add_argument(
        "--retries", type=int, default=1,
        help="per-job attempts workers make before reporting failure "
        "(default 1)",
    )
    coordinate.add_argument(
        "--cache-dir", default="results/cache",
        help="content-addressed result store shared with 'repro sweep' "
        "and 'repro serve' (default results/cache)",
    )
    coordinate.add_argument(
        "--exit-when-done", action="store_true",
        help="stop serving once every shard is settled (batch mode)",
    )
    coordinate.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the coordinator's lease-lifecycle trace to PATH "
        "when the campaign ends",
    )
    work = dist_sub.add_parser(
        "work",
        help="pull-loop worker: lease shards, execute jobs through the "
        "sweep worker path, stream results back",
    )
    work.add_argument("--host", default="127.0.0.1",
                      help="coordinator address (default 127.0.0.1)")
    work.add_argument("--port", type=int, default=8178,
                      help="coordinator port (default 8178)")
    work.add_argument("--id", default="worker",
                      help="worker id (shows up in leases and metrics)")
    work.add_argument(
        "--poll", type=float, default=0.25,
        help="seconds between lease attempts while all shards are "
        "leased elsewhere (default 0.25)",
    )
    dist_status = dist_sub.add_parser(
        "status",
        help="print a running campaign's streaming-aggregation snapshot",
    )
    dist_status.add_argument("campaign", help="campaign name (spec name)")
    dist_status.add_argument("--host", default="127.0.0.1")
    dist_status.add_argument("--port", type=int, default=8178)

    realio = sub.add_parser(
        "realio",
        help="real-I/O strategy backend: run the paper's prefetch "
        "strategies against real files, calibrate effective disk "
        "constants, and validate the simulator (see docs/REALIO.md)",
    )
    realio_sub = realio.add_subparsers(dest="realio_command", required=True)

    def _realio_dataset_args(command) -> None:
        command.add_argument(
            "--dir", default="results/realio/dataset",
            help="dataset directory (default results/realio/dataset); "
            "generated on demand if missing",
        )
        command.add_argument("-k", "--runs", type=int, default=8,
                             help="runs when generating (default 8)")
        command.add_argument("-D", "--disks", type=int, default=2,
                             help="disks when generating (default 2)")
        command.add_argument("--blocks", type=int, default=32,
                             help="blocks per run when generating "
                             "(default 32)")
        command.add_argument("--seed", type=int, default=1992,
                             help="base seed (default 1992)")

    def _realio_trace_args(command) -> None:
        command.add_argument(
            "--trace", action="store_true",
            help="collect a structured trace (repro.obs) and print a "
            "text timeline",
        )
        command.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="write the collected trace to PATH (.json = Chrome "
            "trace_event, .jsonl = flat event log); implies --trace",
        )

    realio_gen = realio_sub.add_parser(
        "gen", help="generate a sorted-run dataset on real storage"
    )
    _realio_dataset_args(realio_gen)

    realio_run = realio_sub.add_parser(
        "run", help="merge a dataset's runs under one prefetch strategy"
    )
    _realio_dataset_args(realio_run)
    _realio_trace_args(realio_run)
    realio_run.add_argument(
        "--strategy", choices=[s.value for s in PrefetchStrategy],
        default=PrefetchStrategy.INTRA_RUN.value,
    )
    realio_run.add_argument("-N", "--depth", type=int, default=4,
                            help="prefetch depth N (default 4)")
    realio_run.add_argument("--trials", type=int, default=1)
    realio_run.add_argument("--cache", type=int, default=None,
                            help="buffer pool capacity in blocks "
                            "(default: the strategy's natural size)")
    realio_run.add_argument(
        "--throttle", type=float, default=0.0, metavar="MS",
        help="emulated per-block device time in ms (default 0 = "
        "native speed)",
    )
    realio_run.add_argument("--out", default=None,
                            help="also write the merged output to this "
                            "run file")

    realio_calibrate = realio_sub.add_parser(
        "calibrate",
        help="probe the dataset's storage and fit effective (S, R, T)",
    )
    _realio_dataset_args(realio_calibrate)
    realio_calibrate.add_argument("--rounds", type=int, default=4,
                                  help="probe rounds (default 4)")
    realio_calibrate.add_argument(
        "--throttle", type=float, default=0.0, metavar="MS",
        help="emulated per-block device time in ms",
    )
    realio_calibrate.add_argument("--json", default=None, metavar="PATH",
                                  help="also write the report as JSON")

    realio_validate = realio_sub.add_parser(
        "validate",
        help="measure strategies on the real backend, re-simulate under "
        "fitted constants, and check the orderings agree",
    )
    _realio_dataset_args(realio_validate)
    _realio_trace_args(realio_validate)
    realio_validate.add_argument("-N", "--depth", type=int, default=4,
                                 help="prefetch depth N (default 4)")
    realio_validate.add_argument("--trials", type=int, default=3)
    realio_validate.add_argument(
        "--throttle", type=float, default=0.2, metavar="MS",
        help="emulated per-block device time in ms (default 0.2; keeps "
        "the comparison I/O-bound even on tmpfs)",
    )
    realio_validate.add_argument("--report", default=None, metavar="PATH",
                                 help="write the validation report JSON")
    realio_validate.add_argument(
        "--strict", action="store_true",
        help="also require total-time ordering agreement (flaky on "
        "page-cache-fast storage; off by default)",
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis enforcing the repo's determinism, hot-path, "
        "and serialization invariants (rules RPR001-RPR008; see "
        "docs/LINT.md)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _cmd_list() -> int:
    from repro.experiments import all_experiments

    for experiment in all_experiments():
        print(f"{experiment.experiment_id:24s} {experiment.title}")
        print(f"{'':24s}   [{experiment.paper_reference}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import Scale
    from repro.experiments.runner import default_experiment_ids, run_experiments

    scale = Scale.quick() if args.quick else Scale.full()
    overrides = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.blocks is not None:
        overrides["blocks_per_run"] = args.blocks
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if overrides:
        scale = Scale(
            trials=overrides.get("trials", scale.trials),
            blocks_per_run=overrides.get("blocks_per_run", scale.blocks_per_run),
            sweep_density=scale.sweep_density,
            base_seed=overrides.get("base_seed", scale.base_seed),
        )
    ids = args.ids
    if ids == ["all"]:
        ids = default_experiment_ids()
    experiment_ids, scenario_ids = _partition_run_ids(ids)
    engine = None
    if args.workers is not None:
        from repro.sweep import ResultStore, SweepEngine

        engine = SweepEngine(
            store=ResultStore(args.cache_dir or "results/cache"),
            workers=args.workers,
        )
    session = _trace_session(args, "run")
    context, code = _run_context(args, session)
    if context is None:
        return code
    scenario_failures = 0
    results = []
    with context:
        if experiment_ids:
            results = run_experiments(experiment_ids, scale, engine=engine)
        for name in scenario_ids:
            if not _replay_scenario(name, args, session):
                scenario_failures += 1
    _export_trace(session, args)
    if args.out:
        with open(args.out, "w") as handle:
            for result in results:
                handle.write(result.render())
                handle.write("\n\n")
        print(f"report written to {args.out}")
    if args.export_dir:
        from repro.experiments.export import export_results

        written = export_results(results, args.export_dir)
        print(f"{len(written)} files exported to {args.export_dir}")
    from repro.experiments.runner import failed_experiment_ids

    failed = failed_experiment_ids(results)
    if failed:
        print(f"{len(failed)} experiment(s) failed: {', '.join(failed)}")
    if failed or scenario_failures:
        return 1
    return 0


def _partition_run_ids(ids: list) -> tuple[list, list]:
    """Split ``repro run`` ids into experiments and bench-scenario replays.

    Anything the experiment registry knows stays an experiment; of the
    rest, names the bench registry knows become scenario replays, and
    unknown ids stay in the experiment list so the runner reports them
    the same way it always has.
    """
    from repro.bench import SCENARIOS
    from repro.experiments import get_experiment

    experiments, scenarios = [], []
    for experiment_id in ids:
        try:
            get_experiment(experiment_id)
        except (KeyError, ValueError):
            if experiment_id in SCENARIOS:
                scenarios.append(experiment_id)
                continue
        experiments.append(experiment_id)
    return experiments, scenarios


def _replay_scenario(name: str, args: argparse.Namespace, session) -> bool:
    """Run one bench scenario's pinned config outside the timing harness.

    Honors the common overrides (ambient kernel/faults/trace are
    already installed by the caller; ``--seed``/``--trials``/``--blocks``
    rewrite the pinned config).  With tracing on, also cross-checks the
    collected per-drive service spans against ``DriveStats.busy_ms``
    (the obs-smoke invariant) and fails loudly on drift.
    """
    import dataclasses

    from repro.bench import scenario_config

    try:
        config = scenario_config(name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return False
    overrides = {}
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.blocks is not None:
        overrides["blocks_per_run"] = args.blocks
    if overrides:
        config = dataclasses.replace(config, **overrides)
    first_trial = len(session.trials) if session is not None else 0
    result = MergeSimulation(config).run()
    low, high = result.total_time_s.confidence_interval()
    print(f"scenario      : {name}")
    print(f"configuration : {config.describe()}")
    print(f"total time    : {result.total_time_s.mean:.2f} s "
          f"(95% CI [{low:.2f}, {high:.2f}], {config.trials} trials)")
    print(f"success ratio : {result.success_ratio.mean:.3f}")
    if session is not None:
        worst = 0.0
        for index, metrics in enumerate(result.trials):
            trial = session.trials[first_trial + index]
            for disk, stats in enumerate(metrics.drive_stats):
                worst = max(
                    worst,
                    abs(trial.service_busy_ms(disk) - stats.busy_ms),
                )
        if worst > 1e-6:
            print(f"error: trace busy spans drift from DriveStats.busy_ms "
                  f"by {worst:.3e} ms", file=sys.stderr)
            return False
        print("trace check   : per-drive busy spans match "
              "DriveStats.busy_ms (<= 1e-6 ms)")
    print()
    return True


def _cmd_paper_check() -> int:
    from repro.analysis import (
        expected_concurrency,
        inter_run_sync_total_s,
        lower_bound_total_s,
        total_time_s,
    )
    from repro.analysis.iotime import (
        intra_run_single_disk_block_ms,
        no_prefetch_multi_disk_block_ms,
        no_prefetch_single_disk_block_ms,
    )
    from repro.core.parameters import PAPER_DISK

    m = 15.625
    print("Reconstructed paper constants: S=0.03 ms/cyl, R=8.33 ms, T=2.05 ms,")
    print("m=15.625 cylinders/run, 1000 blocks/run, 64 blocks/cylinder\n")
    checks = [
        ("no prefetch k=25 D=1", total_time_s(
            no_prefetch_single_disk_block_ms(25, m, PAPER_DISK), 25), 357.2),
        ("no prefetch k=50 D=1", total_time_s(
            no_prefetch_single_disk_block_ms(50, m, PAPER_DISK), 50), 909.7),
        ("no prefetch k=25 D=5", total_time_s(
            no_prefetch_multi_disk_block_ms(25, m, 5, PAPER_DISK), 25), 279.0),
        ("no prefetch k=50 D=10", total_time_s(
            no_prefetch_multi_disk_block_ms(50, m, 10, PAPER_DISK), 50), 558.1),
        ("intra k=25 N=10 D=1", total_time_s(
            intra_run_single_disk_block_ms(25, m, 10, PAPER_DISK), 25), 81.8),
        ("intra k=50 N=10 D=1", total_time_s(
            intra_run_single_disk_block_ms(50, m, 10, PAPER_DISK), 50), 183.2),
        ("inter sync k=25 D=5 N=10", inter_run_sync_total_s(
            25, m, 10, 5, PAPER_DISK), 17.6),
        ("bound k=25 D=1", lower_bound_total_s(25, 1, PAPER_DISK), 51.2),
        ("bound k=50 D=1", lower_bound_total_s(50, 1, PAPER_DISK), 102.4),
        ("bound k=25 D=5", lower_bound_total_s(25, 5, PAPER_DISK), 10.25),
        ("urn E(L) D=5", expected_concurrency(5), 2.51),
        ("urn E(L) D=10", expected_concurrency(10), 3.66),
        ("urn E(L) D=25", expected_concurrency(25), 5.92),
    ]
    failures = 0
    for label, computed, paper in checks:
        ok = abs(computed - paper) / paper < 0.01
        failures += 0 if ok else 1
        status = "ok " if ok else "FAIL"
        print(f"[{status}] {label:28s} computed {computed:8.2f}  paper {paper:8.2f}")
    print(f"\n{len(checks) - failures}/{len(checks)} analytical checks match")
    return 1 if failures else 0


def _cmd_selfcheck() -> int:
    """Reduced-scale simulations against the analytical models."""
    from repro.analysis.predictions import predict

    checks = [
        ("no prefetch, 1 disk", dict(num_runs=10, num_disks=1), 0.03),
        ("no prefetch, 5 disks", dict(num_runs=10, num_disks=5), 0.03),
        (
            "intra-run N=5, 1 disk",
            dict(
                num_runs=10,
                num_disks=1,
                strategy=PrefetchStrategy.INTRA_RUN,
                prefetch_depth=5,
            ),
            0.05,
        ),
        (
            "intra-run N=5, sync, 5 disks",
            dict(
                num_runs=10,
                num_disks=5,
                strategy=PrefetchStrategy.INTRA_RUN,
                prefetch_depth=5,
                synchronized=True,
            ),
            0.05,
        ),
        (
            "inter-run N=5, sync, 5 disks",
            dict(
                num_runs=10,
                num_disks=5,
                strategy=PrefetchStrategy.INTER_RUN,
                prefetch_depth=5,
                cache_capacity=400,
                synchronized=True,
            ),
            0.08,
        ),
    ]
    failures = 0
    print("simulating each configuration at 300 blocks/run, 2 trials:\n")
    for label, kwargs, tolerance in checks:
        config = SimulationConfig(blocks_per_run=300, trials=2, **kwargs)
        estimate = predict(config)
        simulated = MergeSimulation(config).run().total_time_s.mean
        # Correct for the zero-cost initial load at reduced run length.
        preload = config.num_runs * config.initial_blocks_per_run
        adjusted = estimate.total_s * (config.total_blocks - preload) / (
            config.total_blocks
        )
        relative = abs(simulated - adjusted) / adjusted
        ok = relative <= tolerance
        failures += 0 if ok else 1
        status = "ok " if ok else "FAIL"
        print(
            f"[{status}] {label:32s} sim {simulated:7.2f}s  "
            f"model {adjusted:7.2f}s  ({relative:+.1%})"
        )
    print(
        f"\n{len(checks) - failures}/{len(checks)} simulation checks within "
        "tolerance"
    )
    return 1 if failures else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.analysis.predictions import predict

    config = SimulationConfig(
        num_runs=args.runs,
        num_disks=args.disks,
        strategy=PrefetchStrategy(args.strategy),
        prefetch_depth=args.depth,
        blocks_per_run=args.blocks,
        synchronized=args.sync,
    )
    estimate = predict(config)
    print(f"configuration : {config.describe()}")
    print(f"formula       : {estimate.formula}")
    print(f"quality       : {estimate.quality.value}")
    print(f"tau per block : {estimate.block_ms:.3f} ms")
    print(f"total time    : {estimate.total_s:.2f} s")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.io.filesort import write_random_input

    write_random_input(args.path, args.records, seed=args.seed)
    size = args.records * 64
    print(f"wrote {args.records} records ({size:,} payload bytes) to "
          f"{args.path}")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from repro.io.filesort import FileSorter, verify_sorted_file

    temp_dirs = args.temp_dir or [str(Path(args.output).parent / "repro-spill")]
    sorter = FileSorter(
        memory_records=args.memory_records,
        temp_dirs=temp_dirs,
        max_fan_in=args.fan_in,
    )
    start = time.perf_counter()
    stats = sorter.sort_file(args.input, args.output)
    elapsed = time.perf_counter() - start
    print(f"sorted {stats.records} records in {elapsed:.2f}s "
          f"({stats.records / max(elapsed, 1e-9):,.0f} records/s)")
    print(f"runs: {stats.initial_runs} initial, {stats.merge_passes} "
          f"merge pass(es), final fan-in {stats.runs}")
    print(f"I/O: {stats.bytes_read:,} B read, {stats.bytes_written:,} B "
          "written (final pass)")
    if args.verify:
        count = verify_sorted_file(args.output)
        print(f"verified: {count} records in order")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.passes import estimate_sort_time_s, fan_in_for_cache
    from repro.core.parameters import PAPER_DISK

    fan_in = fan_in_for_cache(args.cache, args.depth)
    plan, total = estimate_sort_time_s(
        initial_runs=args.runs,
        blocks_per_run=args.blocks,
        cache_blocks=args.cache,
        prefetch_depth=args.depth,
        num_disks=args.disks,
        disk=PAPER_DISK,
    )
    print(f"cache {args.cache} blocks at depth N={args.depth} "
          f"-> fan-in {fan_in}")
    for merge_pass in plan.passes:
        print(f"  pass {merge_pass.index}: {merge_pass.runs_in} runs -> "
              f"{merge_pass.runs_out} (fan-in {merge_pass.fan_in})")
    print(f"estimated merge I/O ({args.disks} disk(s), synchronized "
          f"intra-run model): {total:.1f} s")
    return 0


def _split_list(text: str, convert) -> list:
    """Parse a comma-separated CLI value into a typed list."""
    return [convert(part.strip()) for part in text.split(",") if part.strip()]


def _load_fault_plan(path):
    """Load a fault plan, or print ``error: ...`` and return None."""
    from repro.faults.plan import load_plan

    try:
        return load_plan(path)
    except (OSError, TypeError, ValueError) as exc:
        print(f"error: cannot load fault plan {path}: {exc}", file=sys.stderr)
        return None


def _trace_session(args, name: str):
    """A fresh TraceSession when --trace/--trace-out asked for one."""
    if not (args.trace or args.trace_out):
        return None
    from repro.obs import TraceSession

    return TraceSession(name=name)


def _run_context(args, session):
    """The RunContext for one command's common flags.

    Loads ``--faults`` (returning ``(None, exit_code)`` on a bad plan),
    and composes it with ``--kernel`` and the trace session.  The
    caller enters the returned context around its whole workload.
    """
    from repro.api import UNSET, RunContext

    plan = UNSET
    if args.faults is not None:
        loaded = _load_fault_plan(args.faults)
        if loaded is None:
            return None, 2
        print(f"fault plan {args.faults}: {loaded.describe_short()}"
              + (" (empty: baseline behaviour)" if loaded.is_empty() else ""))
        plan = loaded
    context = RunContext(
        fault_plan=plan,
        kernel=args.kernel if args.kernel is not None else UNSET,
        trace=session if session is not None else UNSET,
    )
    return context, 0


def _export_trace(session, args) -> None:
    """Write or print the collected trace per --trace/--trace-out."""
    if session is None:
        return
    if args.trace_out:
        from repro.obs import write_trace

        fmt = write_trace(session, args.trace_out)
        print(f"{fmt} trace ({session.total_events} events, "
              f"{len(session.trials)} trial(s)) written to {args.trace_out}")
    else:
        from repro.obs import print_timeline

        print()
        print_timeline(session, sys.stdout)


def _cmd_sweep_gc(args: argparse.Namespace) -> int:
    from repro.sweep.gc import collect_garbage
    from repro.sweep.store import ResultStore

    report = collect_garbage(
        ResultStore(args.cache_dir),
        min_age_s=args.min_age,
        remove_completed_manifests=args.remove_completed,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(f"gc {args.cache_dir}: {verb} {len(report.tmp_removed)} orphaned "
          f"temp file(s), {len(report.manifests_removed)} stale manifest(s) "
          f"({report.bytes_freed} bytes)")
    if report.skipped_young:
        print(f"  {report.skipped_young} candidate(s) younger than "
              f"{args.min_age:g}s left alone")
    print(f"  {report.live_entries} live cache entries untouched")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.config import Table
    from repro.sweep import (
        ConsoleProgress,
        NullProgress,
        ResultStore,
        SweepEngine,
        SweepSpec,
    )

    if args.action == "gc":
        return _cmd_sweep_gc(args)

    # Swept axes: every comma-listed flag becomes a grid dimension (in
    # this fixed order); single values stay in the base config.
    axes = [
        ("num_runs", _split_list(args.runs, int)),
        ("num_disks", _split_list(args.disks, int)),
        ("strategy", _split_list(args.strategy, str)),
        ("prefetch_depth", _split_list(args.depth, int)),
        ("cpu_ms_per_block", _split_list(args.cpu_ms, float)),
    ]
    if args.cache is not None:
        axes.append(("cache_capacity", _split_list(args.cache, int)))
    base: dict = {
        "blocks_per_run": args.blocks,
        "synchronized": args.sync,
    }
    if args.kernel is not None:
        base["kernel"] = args.kernel
    grid: dict = {}
    for name, values in axes:
        if len(values) > 1:
            grid[name] = values
        elif values:
            base[name] = values[0]
    if args.faults is not None and args.fault_rate is not None:
        print("error: --faults and --fault-rate are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.faults is not None:
        plan = _load_fault_plan(args.faults)
        if plan is None:
            return 2
        base["fault_plan"] = plan.to_dict()
    elif args.fault_rate is not None:
        from repro.faults.plan import transient_plan

        rates = _split_list(args.fault_rate, float)
        plans = [
            None if rate == 0.0 else transient_plan(rate).to_dict()
            for rate in rates
        ]
        if len(plans) > 1:
            grid["fault_plan"] = plans
        else:
            base["fault_plan"] = plans[0]
    spec = SweepSpec(
        name=args.name,
        base=base,
        grid=grid,
        trials=args.trials,
        base_seed=args.seed if args.seed is not None else 1992,
    )

    session = _trace_session(args, "sweep")
    if session is not None and args.workers != 1:
        print("error: --trace requires --workers 1 (subprocess workers "
              "cannot stream trace events back)", file=sys.stderr)
        return 2
    if session is not None and not args.no_cache:
        print("note: cached sweep cells replay stored metrics and emit "
              "no trace events; use --no-cache for a complete trace",
              file=sys.stderr)

    store = None if args.no_cache else ResultStore(args.cache_dir)
    try:
        engine = SweepEngine(
            store=store,
            workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries,
            progress=NullProgress() if args.quiet else ConsoleProgress(),
            allow_partial=True,
        )
        if session is not None:
            from repro.api import configure

            with configure(trace=session):
                result = engine.run_spec(spec)
        else:
            result = engine.run_spec(spec)
    except ValueError as exc:
        # Bad grid values (unknown strategy, cache below minimum, ...)
        # or a campaign-name conflict: report cleanly, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    table = Table(
        title=f"sweep '{spec.name}': {len(result.cells)} configurations, "
        f"{spec.trials} trial(s) each",
        headers=["configuration", "time_s", "±95%", "success", "disks_busy"],
        rows=[],
    )
    for cell in result.cells:
        if not cell.trials:
            table.rows.append([cell.config_description, "FAILED", "", "", ""])
            continue
        time_s = cell.total_time_s
        low, high = time_s.confidence_interval()
        table.rows.append([
            cell.config_description,
            time_s.mean,
            (high - low) / 2.0,
            cell.success_ratio.mean,
            cell.average_concurrency.mean,
        ])
    print(table.render())
    print()
    print(result.stats.summary())
    if result.failures:
        print(f"{len(result.failures)} job(s) failed permanently:")
        for failure in result.failures:
            print(f"  {failure.description}: {failure.error}")
    if args.export:
        import json

        with open(args.export, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"sweep results written to {args.export}")
    if args.progress_json:
        result.stats.export_json(args.progress_json)
        print(f"progress counters written to {args.progress_json}")
    _export_trace(session, args)
    return 1 if result.failures else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    fault_plan = None
    if args.faults is not None:
        fault_plan = _load_fault_plan(args.faults)
        if fault_plan is None:
            return 2
    config = SimulationConfig(
        num_runs=args.runs,
        num_disks=args.disks,
        strategy=PrefetchStrategy(args.strategy),
        prefetch_depth=args.depth,
        blocks_per_run=args.blocks,
        cache_capacity=args.cache,
        synchronized=args.sync,
        cpu_ms_per_block=args.cpu_ms,
        cache_policy=CachePolicy(args.policy),
        victim_selector=VictimSelector(args.selector),
        trials=args.trials,
        base_seed=args.seed if args.seed is not None else 1992,
        record_timelines=args.timeline,
        fault_plan=fault_plan,
        kernel=args.kernel if args.kernel is not None else "reference",
    )
    session = _trace_session(args, "simulate")
    if session is not None:
        from repro.api import configure

        with configure(trace=session):
            result = MergeSimulation(config).run()
    else:
        result = MergeSimulation(config).run()
    print(f"configuration : {config.describe()}")
    low, high = result.total_time_s.confidence_interval()
    print(f"total time    : {result.total_time_s.mean:.2f} s "
          f"(95% CI [{low:.2f}, {high:.2f}], {config.trials} trials)")
    print(f"success ratio : {result.success_ratio.mean:.3f}")
    print(f"avg disk conc.: {result.average_concurrency.mean:.2f} "
          f"of {config.num_disks}")
    print(f"cpu stall     : {result.cpu_stall_s.mean:.2f} s")
    if fault_plan is not None and not fault_plan.is_empty():
        trials = result.trials
        n = len(trials)
        fault_stall_s = sum(m.fault_stall_ms for m in trials) / n / 1000.0
        faults = sum(sum(s.faults for s in m.drive_stats) for m in trials) / n
        retries = sum(
            sum(s.retries for s in m.drive_stats) for m in trials
        ) / n
        print(f"fault stall   : {fault_stall_s:.2f} s "
              f"(faults {faults:.1f}, retries {retries:.1f}, "
              f"timeouts {sum(m.demand_timeouts for m in trials) / n:.1f}, "
              f"degraded skips {sum(m.degraded_skips for m in trials) / n:.1f}"
              " per trial)")
    if args.timeline:
        from repro.core.timeline import utilization_report

        print()
        print(
            utilization_report(
                result.trials[0],
                num_disks=config.num_disks,
                cache_capacity=config.resolved_cache_capacity,
            )
        )
    _export_trace(session, args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import (
        BenchReport,
        bench_filename,
        compare_reports,
        get_scenario,
        regressions,
        render_comparison,
        run_scenario,
        scenario_names,
    )

    if args.bench_command == "list":
        for name in scenario_names():
            scenario = get_scenario(name)
            kernels = ", ".join(scenario.kernels)
            print(f"{name:18s} [{kernels}] {scenario.description}")
        return 0
    if args.bench_command == "run":
        import dataclasses

        names = args.scenario or scenario_names()
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        try:
            scenarios = [get_scenario(name) for name in names]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.seed is not None:
            print("note: --seed is ignored by 'bench run' (scenario seeds "
                  "are pinned for comparability)", file=sys.stderr)
        if args.kernel is not None:
            # Restrict each scenario to the requested kernel variant
            # rather than setting an ambient override, which would run
            # every variant on one kernel but label them differently.
            scenarios = [
                dataclasses.replace(scenario, kernels=(args.kernel,))
                for scenario in scenarios
                if args.kernel in scenario.kernels
            ]
            if not scenarios:
                print(f"error: none of the selected scenarios has a "
                      f"{args.kernel!r} variant", file=sys.stderr)
                return 2
        plan = None
        if args.faults is not None:
            plan = _load_fault_plan(args.faults)
            if plan is None:
                return 2
        session = _trace_session(args, "bench")
        if plan is not None or session is not None:
            print("note: fault injection and tracing perturb timings; do "
                  "not compare this report against committed baselines",
                  file=sys.stderr)
        from repro.api import UNSET, RunContext

        context = RunContext(
            fault_plan=plan if plan is not None else UNSET,
            trace=session if session is not None else UNSET,
        )
        with context:
            for scenario in scenarios:
                report = run_scenario(
                    scenario, repeats=args.repeats, warmup=args.warmup
                )
                path = report.write(out_dir / bench_filename(scenario.name))
                print(report.render())
                print(f"  report written to {path}\n")
        _export_trace(session, args)
        return 0
    if args.bench_command == "compare":
        try:
            baseline = BenchReport.load(args.baseline)
            current = BenchReport.load(args.current)
            rows = compare_reports(baseline, current, threshold=args.threshold)
        except FileNotFoundError as exc:
            missing = exc.filename or str(exc)
            print(f"error: no baseline report at {missing}; run "
                  f"`repro bench run` first to create it", file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_comparison(rows))
        from repro.bench import missing_baseline_variants

        unbaselined = missing_baseline_variants(baseline, current)
        if unbaselined:
            print(f"note: no baseline for variant(s) "
                  f"{', '.join(unbaselined)}; refresh the committed "
                  f"baseline with `repro bench run` to start tracking "
                  f"them", file=sys.stderr)
        regressed = regressions(rows)
        if regressed:
            print(f"\n{len(regressed)} variant(s) regressed beyond "
                  f"{args.threshold:.0%}")
            return 1
        print("\nno regressions")
        return 0
    raise AssertionError(f"unhandled bench command {args.bench_command}")


def _realio_dataset(args) -> "object":
    """Load the dataset under ``--dir``, generating it if absent."""
    from pathlib import Path

    from repro.realio import dataset_exists, generate_dataset, load_dataset

    root = Path(args.dir)
    if dataset_exists(root):
        return load_dataset(root)
    print(f"generating dataset at {root} "
          f"(k={args.runs} D={args.disks} {args.blocks} blocks/run)")
    return generate_dataset(
        root,
        num_runs=args.runs,
        num_disks=args.disks,
        blocks_per_run=args.blocks,
        seed=args.seed,
    )


def _realio_busy_check(session, trials, first_trial: int) -> bool:
    """The obs-smoke invariant on real traces: spans == DriveStats.busy_ms."""
    worst = 0.0
    for index, metrics in enumerate(trials):
        trial = session.trials[first_trial + index]
        for disk, stats in enumerate(metrics.drive_stats):
            worst = max(
                worst, abs(trial.service_busy_ms(disk) - stats.busy_ms)
            )
    if worst > 1e-6:
        print(f"error: trace busy spans drift from DriveStats.busy_ms "
              f"by {worst:.3e} ms", file=sys.stderr)
        return False
    print("trace check   : per-drive busy spans match "
          "DriveStats.busy_ms (<= 1e-6 ms)")
    return True


def _cmd_realio(args: argparse.Namespace) -> int:
    if args.realio_command == "gen":
        dataset = _realio_dataset(args)
        print(f"dataset ready : {dataset.describe()}")
        return 0

    if args.realio_command == "run":
        from repro.core.parameters import PrefetchStrategy
        from repro.realio import RealIOConfig, run_real_merge

        dataset = _realio_dataset(args)
        config = RealIOConfig(
            strategy=PrefetchStrategy(args.strategy),
            prefetch_depth=args.depth,
            cache_capacity=args.cache,
            throttle_ms_per_block=args.throttle,
        )
        session = _trace_session(args, "realio")
        try:
            outcome = run_real_merge(
                dataset,
                config,
                trials=args.trials,
                base_seed=args.seed,
                session=session,
                output_path=args.out,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        mean = outcome.aggregate
        print(f"configuration : {config.describe(dataset)}")
        print(f"records merged: {outcome.records_merged} "
              f"(sorted: {'yes' if outcome.sorted_ok else 'NO'})")
        print(f"total time    : {mean.total_time_s.mean * 1000:.2f} ms "
              f"over {args.trials} trial(s)")
        print(f"demand stalls : {mean.cpu_stall_s.mean * 1000:.2f} ms")
        if args.out:
            print(f"output written: {args.out}")
        ok = outcome.sorted_ok
        if session is not None:
            ok = _realio_busy_check(session, outcome.trials, 0) and ok
        _export_trace(session, args)
        return 0 if ok else 1

    if args.realio_command == "calibrate":
        import json as json_module

        from repro.realio import calibrate

        dataset = _realio_dataset(args)
        report = calibrate(
            dataset,
            rounds=args.rounds,
            seed=args.seed,
            throttle_ms_per_block=args.throttle,
        )
        print(report.render())
        if args.json:
            from pathlib import Path

            path = Path(args.json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json_module.dumps(report.to_dict(), indent=2) + "\n"
            )
            print(f"report written to {path}")
        return 0

    if args.realio_command == "validate":
        from repro.realio import run_validation

        dataset = _realio_dataset(args)
        session = _trace_session(args, "realio-validate")
        report = run_validation(
            dataset,
            prefetch_depth=args.depth,
            trials=args.trials,
            base_seed=args.seed,
            throttle_ms_per_block=args.throttle,
            session=session,
        )
        print(report.render())
        ok = report.agrees
        if args.strict and not report.total_ordering_agrees:
            ok = False
        if session is not None:
            # run_validation already cross-checked every real-backend
            # trial's service spans against DriveStats.busy_ms (it
            # raises on drift); the simulator side runs untraced.
            print("trace check   : per-drive busy spans match "
                  "DriveStats.busy_ms (<= 1e-6 ms)")
            _export_trace(session, args)
        if args.report:
            from pathlib import Path

            path = Path(args.report)
            path.parent.mkdir(parents=True, exist_ok=True)
            report.save(path)
            print(f"report written to {path}")
        return 0 if ok else 1

    raise AssertionError(f"unhandled realio command {args.realio_command}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, SimulationServer

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            rate=args.rate,
            burst=args.burst,
            queue_limit=args.queue_limit,
            deadline_s=args.deadline,
            job_timeout_s=args.job_timeout,
            cache_dir=args.cache_dir,
            drain_grace_s=args.drain_grace,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = SimulationServer(config)

    def announce() -> None:
        mode = (f"{config.workers} worker process(es)" if config.workers
                else "in-process thread")
        rate = (f"{config.rate:g} req/s per client" if config.rate > 0
                else "disabled")
        print(f"repro serve listening on http://{config.host}:{server.port}")
        print(f"  compute   : {mode}, queue limit "
              f"{config.queue_limit or 'unbounded'}")
        print(f"  rate limit: {rate}")
        print(f"  cache     : {config.cache_dir}")
        print("  stop      : SIGTERM/SIGINT drains gracefully")

    try:
        asyncio.run(server.run(on_ready=announce))
    except KeyboardInterrupt:
        # Signal handler installation can fail on exotic loops; a raw
        # Ctrl-C then still exits cleanly, just without the drain.
        print("interrupted before drain completed", file=sys.stderr)
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    if args.dist_command == "coordinate":
        import asyncio
        import json

        from repro.dist import Coordinator, CoordinatorConfig
        from repro.sweep import SweepSpec

        try:
            with open(args.spec) as handle:
                spec = SweepSpec.from_dict(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"error: cannot load spec {args.spec}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            config = CoordinatorConfig(
                host=args.host,
                port=args.port,
                shard_size=args.shard_size,
                lease_ttl_s=args.lease_ttl,
                job_timeout_s=args.job_timeout,
                retries=args.retries,
                cache_dir=args.cache_dir,
                exit_when_done=args.exit_when_done,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        session = None
        if args.trace_out is not None:
            from repro.obs import TraceSession

            session = TraceSession(name=f"dist-{spec.name}")
        coordinator = Coordinator(spec, config, trace=session)

        def announce() -> None:
            counts = coordinator.leases.counts()
            print(f"repro dist coordinating campaign {spec.name!r} on "
                  f"http://{config.host}:{coordinator.port}")
            print(f"  jobs    : {coordinator.aggregator.total} total, "
                  f"{coordinator.aggregator.cached} already cached")
            print(f"  shards  : {counts['pending']} pending x "
                  f"{config.shard_size} job(s), lease TTL "
                  f"{config.lease_ttl_s:g}s")
            print(f"  cache   : {config.cache_dir}")
            print("  workers : python -m repro dist work "
                  f"--host {config.host} --port {coordinator.port}")

        try:
            asyncio.run(coordinator.run(on_ready=announce))
        except KeyboardInterrupt:
            print("interrupted before drain completed", file=sys.stderr)
        if coordinator.aggregator.is_complete():
            failed = coordinator.aggregator.failed
            print(f"campaign {spec.name!r} complete: "
                  f"{coordinator.aggregator.completed} job(s) ok, "
                  f"{failed} failed")
        if session is not None:
            from repro.obs import write_trace

            fmt = write_trace(session, args.trace_out)
            print(f"coordinator trace written to {args.trace_out} ({fmt})")
        return 1 if coordinator.aggregator.failed else 0
    if args.dist_command == "work":
        from repro.dist import DistWorker
        from repro.serve import ServeError

        worker = DistWorker(
            args.host, args.port, worker_id=args.id, poll_s=args.poll
        )
        try:
            stats = worker.run()
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            stats = worker.stats
            print("interrupted; in-flight lease will expire and be "
                  "re-issued", file=sys.stderr)
        print(f"worker {args.id!r}: {stats.leases} lease(s), "
              f"{stats.jobs_ok} job(s) ok, {stats.jobs_failed} failed, "
              f"{stats.shards_lost} shard(s) lost to expiry")
        return 0
    if args.dist_command == "status":
        import json

        from repro.dist import CoordinatorClient
        from repro.serve import ServeError

        client = CoordinatorClient(args.host, args.port)
        try:
            snapshot = client.campaign(args.campaign)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    raise AssertionError(f"unhandled dist command {args.dist_command}")


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "validate":
        from repro.obs import validate_chrome_trace_file

        try:
            errors = validate_chrome_trace_file(args.path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
            return 2
        if errors:
            print(f"{args.path}: {len(errors)} schema violation(s)")
            for error in errors:
                print(f"  {error}")
            return 1
        print(f"{args.path}: valid Chrome trace")
        return 0
    raise AssertionError(f"unhandled trace command {args.trace_command}")


def main(argv: list[str] | None = None) -> int:
    # Honor REPRO_SANITIZE=1 before any subsystem is imported so the
    # concurrency sanitizer instruments every code path of this
    # invocation (including dist workers spawned with the same env).
    from repro.lint.sanitizer import enable_from_env

    enable_from_env()
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "paper-check":
        return _cmd_paper_check()
    if args.command == "selfcheck":
        return _cmd_selfcheck()
    if args.command == "validate":
        from repro.experiments.validation import render_verdicts, validate

        verdicts = validate(blocks_per_run=args.blocks)
        print(render_verdicts(verdicts))
        return 0 if all(v.ok for v in verdicts) else 1
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "gen":
        return _cmd_gen(args)
    if args.command == "sort":
        return _cmd_sort(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "dist":
        return _cmd_dist(args)
    if args.command == "realio":
        return _cmd_realio(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
