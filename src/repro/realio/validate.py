"""Sim-vs-real validation: does the simulator predict this storage?

The closing of the loop the ROADMAP's north star asks for: run the
paper's strategies on *real* files through the real-I/O backend,
calibrate effective (S, R, T) from the measured reads, re-run the
*simulator* under the fitted constants at the matching configuration,
and check that the predictions agree with the measurements where the
paper's claims live:

* **strategy ordering by demand-stall time** — the primary check.
  Stall time is what prefetching exists to remove, and it is robust on
  fast storage, where total elapsed time is dominated by CPU-side
  merge work the simulator deliberately prices at zero.
* **strategy ordering by demand situations** — a structural check that
  is exact: both executors run the identical planner logic, so the
  count of demand situations must order the same way.
* **strategy ordering by total time** — recorded, and reliable on
  storage slow enough for I/O to dominate (e.g. with the throttle
  emulation), but noisy on tmpfs; reported separately so a tmpfs CI
  run does not flap.

The report carries measured and predicted values side by side with
their ratios, so systematic model error (e.g. unmodelled page-cache
effects) is visible even when every ordering agrees.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Sequence

from repro.core.parameters import (
    CachePolicy,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.core.simulator import MergeSimulation
from repro.realio.backend import RealIOConfig, run_real_merge
from repro.realio.calibrate import CalibrationReport, calibrate
from repro.realio.clock import (
    ClockMs,
    SleepMs,
    blocking_sleep_ms,
    wall_clock_ms,
)
from repro.realio.dataset import RealDataset

#: The strategy pair whose ordering the paper's claims rank.
DEFAULT_STRATEGIES = (
    PrefetchStrategy.INTRA_RUN,
    PrefetchStrategy.INTER_RUN,
)


@dataclasses.dataclass(frozen=True)
class StrategyOutcome:
    """Measured and predicted results for one strategy."""

    strategy: PrefetchStrategy
    measured_total_ms: float
    measured_stall_ms: float
    measured_demand_situations: float
    predicted_total_ms: float
    predicted_stall_ms: float
    predicted_demand_situations: float

    @property
    def total_ratio(self) -> float:
        """measured / predicted total time (inf when prediction is 0)."""
        return _ratio(self.measured_total_ms, self.predicted_total_ms)

    @property
    def stall_ratio(self) -> float:
        return _ratio(self.measured_stall_ms, self.predicted_stall_ms)

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy.value,
            "measured_total_ms": self.measured_total_ms,
            "measured_stall_ms": self.measured_stall_ms,
            "measured_demand_situations": self.measured_demand_situations,
            "predicted_total_ms": self.predicted_total_ms,
            "predicted_stall_ms": self.predicted_stall_ms,
            "predicted_demand_situations": self.predicted_demand_situations,
            "total_ratio": self.total_ratio,
            "stall_ratio": self.stall_ratio,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StrategyOutcome":
        """Inverse of :meth:`to_dict`.

        The ratio keys are derived, so instead of restoring them they
        are cross-checked: a report whose stored ratios do not match
        its stored values was edited or truncated.
        """
        outcome = cls(
            strategy=PrefetchStrategy(data["strategy"]),
            measured_total_ms=data["measured_total_ms"],
            measured_stall_ms=data["measured_stall_ms"],
            measured_demand_situations=data["measured_demand_situations"],
            predicted_total_ms=data["predicted_total_ms"],
            predicted_stall_ms=data["predicted_stall_ms"],
            predicted_demand_situations=data["predicted_demand_situations"],
        )
        for key in ("total_ratio", "stall_ratio"):
            if key in data and data[key] != getattr(outcome, key):
                raise ValueError(
                    f"inconsistent outcome: stored {key} does not match "
                    f"the stored measurements"
                )
        return outcome


def _ratio(measured: float, predicted: float) -> float:
    if predicted == 0:
        return float("inf") if measured > 0 else 1.0
    return measured / predicted


def _ordering(outcomes: Sequence[StrategyOutcome], attribute: str) -> list[str]:
    """Strategy names sorted by one metric, cheapest first."""
    ranked = sorted(outcomes, key=lambda o: getattr(o, attribute))
    return [outcome.strategy.value for outcome in ranked]


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """The verdict of one sim-vs-real validation run."""

    dataset_description: str
    prefetch_depth: int
    trials: int
    throttle_ms_per_block: float
    calibration: CalibrationReport
    outcomes: tuple[StrategyOutcome, ...]

    @property
    def stall_ordering_agrees(self) -> bool:
        """Primary verdict: measured and predicted stall orderings match."""
        return (
            _ordering(self.outcomes, "measured_stall_ms")
            == _ordering(self.outcomes, "predicted_stall_ms")
        )

    @property
    def demand_ordering_agrees(self) -> bool:
        return (
            _ordering(self.outcomes, "measured_demand_situations")
            == _ordering(self.outcomes, "predicted_demand_situations")
        )

    @property
    def total_ordering_agrees(self) -> bool:
        return (
            _ordering(self.outcomes, "measured_total_ms")
            == _ordering(self.outcomes, "predicted_total_ms")
        )

    @property
    def agrees(self) -> bool:
        """The headline verdict (stall + demand-count orderings)."""
        return self.stall_ordering_agrees and self.demand_ordering_agrees

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset_description,
            "prefetch_depth": self.prefetch_depth,
            "trials": self.trials,
            "throttle_ms_per_block": self.throttle_ms_per_block,
            "calibration": self.calibration.to_dict(),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "stall_ordering_agrees": self.stall_ordering_agrees,
            "demand_ordering_agrees": self.demand_ordering_agrees,
            "total_ordering_agrees": self.total_ordering_agrees,
            "agrees": self.agrees,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValidationReport":
        """Inverse of :meth:`to_dict`.

        The verdict keys are derived properties; they are cross-checked
        against the stored outcomes rather than restored, so an edited
        or truncated report fails loudly instead of lying quietly.
        """
        report = cls(
            dataset_description=data["dataset"],
            prefetch_depth=data["prefetch_depth"],
            trials=data["trials"],
            throttle_ms_per_block=data["throttle_ms_per_block"],
            calibration=CalibrationReport.from_dict(data["calibration"]),
            outcomes=tuple(
                StrategyOutcome.from_dict(entry)
                for entry in data["outcomes"]
            ),
        )
        for key in (
            "stall_ordering_agrees", "demand_ordering_agrees",
            "total_ordering_agrees", "agrees",
        ):
            if key in data and data[key] != getattr(report, key):
                raise ValueError(
                    f"inconsistent report: stored {key} does not match "
                    f"the stored outcomes"
                )
        return report

    def save(self, path: Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def render(self) -> str:
        lines = [
            "Sim-vs-real validation",
            f"  dataset: {self.dataset_description}",
            f"  N={self.prefetch_depth} trials={self.trials} "
            f"throttle={self.throttle_ms_per_block:g} ms/block",
            "",
            self.calibration.render(),
            "",
            f"  {'strategy':>10s} {'stall meas':>12s} {'stall pred':>12s} "
            f"{'total meas':>12s} {'total pred':>12s} {'demand m/p':>12s}",
        ]
        for outcome in self.outcomes:
            lines.append(
                f"  {outcome.strategy.value:>10s} "
                f"{outcome.measured_stall_ms:>10.2f}ms "
                f"{outcome.predicted_stall_ms:>10.2f}ms "
                f"{outcome.measured_total_ms:>10.2f}ms "
                f"{outcome.predicted_total_ms:>10.2f}ms "
                f"{outcome.measured_demand_situations:>5.0f}/"
                f"{outcome.predicted_demand_situations:<5.0f}"
            )
        lines += [
            "",
            f"  stall ordering agrees:  {self.stall_ordering_agrees}",
            f"  demand ordering agrees: {self.demand_ordering_agrees}",
            f"  total ordering agrees:  {self.total_ordering_agrees}",
            f"  verdict: {'AGREE' if self.agrees else 'DISAGREE'}",
        ]
        return "\n".join(lines)


def run_validation(
    dataset: RealDataset,
    strategies: Sequence[PrefetchStrategy] = DEFAULT_STRATEGIES,
    prefetch_depth: int = 4,
    trials: int = 3,
    base_seed: int = 1992,
    throttle_ms_per_block: float = 0.0,
    cache_policy: CachePolicy = CachePolicy.CONSERVATIVE,
    victim_selector: VictimSelector = VictimSelector.RANDOM,
    session=None,
    clock: ClockMs = wall_clock_ms,
    sleep: SleepMs = blocking_sleep_ms,
) -> ValidationReport:
    """Measure, calibrate, predict, and compare.

    1. Run every strategy on the real backend (``trials`` seeded runs
       each), optionally tracing into ``session``.
    2. Calibrate effective (S, R, T) from the pooled read samples of
       all measured runs (real merge traffic, not a synthetic probe).
    3. Re-run the simulator under the fitted constants at the matching
       configuration (same k, D, N, run length, cache sizing rule,
       seeds) and compare orderings.
    """
    if len(strategies) < 2:
        raise ValueError("validation needs at least two strategies to rank")
    measured = {}
    samples = []
    for strategy in strategies:
        config = RealIOConfig(
            strategy=strategy,
            prefetch_depth=prefetch_depth,
            cache_policy=cache_policy,
            victim_selector=victim_selector,
            throttle_ms_per_block=throttle_ms_per_block,
        )
        first_trial = len(session.trials) if session is not None else 0
        outcome = run_real_merge(
            dataset,
            config,
            trials=trials,
            base_seed=base_seed,
            session=session,
            clock=clock,
            sleep=sleep,
        )
        if not outcome.sorted_ok:
            raise RuntimeError(
                f"real merge under {strategy.value} produced unsorted output"
            )
        if session is not None:
            _check_busy_accounting(session, outcome.trials, first_trial)
        measured[strategy] = outcome
        samples.extend(outcome.samples)

    from repro.realio.calibrate import observations_from_samples

    report = calibrate(
        dataset,
        observations=observations_from_samples(samples),
        throttle_ms_per_block=throttle_ms_per_block,
    )

    outcomes = []
    for strategy in strategies:
        sim_config = SimulationConfig(
            num_runs=dataset.num_runs,
            num_disks=dataset.num_disks,
            strategy=strategy,
            prefetch_depth=prefetch_depth,
            blocks_per_run=dataset.blocks_per_run,
            cache_policy=cache_policy,
            victim_selector=victim_selector,
            disk=report.disk_parameters,
            trials=trials,
            base_seed=base_seed,
            kernel="fast",
        )
        predicted = MergeSimulation(sim_config).run()
        real = measured[strategy].aggregate
        outcomes.append(StrategyOutcome(
            strategy=strategy,
            measured_total_ms=_mean(
                [m.total_time_ms for m in real.trials]
            ),
            measured_stall_ms=_mean(
                [m.cpu_stall_ms for m in real.trials]
            ),
            measured_demand_situations=_mean(
                [m.demand_situations for m in real.trials]
            ),
            predicted_total_ms=_mean(
                [m.total_time_ms for m in predicted.trials]
            ),
            predicted_stall_ms=_mean(
                [m.cpu_stall_ms for m in predicted.trials]
            ),
            predicted_demand_situations=_mean(
                [m.demand_situations for m in predicted.trials]
            ),
        ))
    return ValidationReport(
        dataset_description=dataset.describe(),
        prefetch_depth=prefetch_depth,
        trials=trials,
        throttle_ms_per_block=throttle_ms_per_block,
        calibration=report,
        outcomes=tuple(outcomes),
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _check_busy_accounting(session, trials, first_trial: int) -> None:
    """Real traces obey the simulator's invariant: per-drive service
    spans sum to ``DriveStats.busy_ms`` (within 1e-6 ms)."""
    for index, metrics in enumerate(trials):
        trace = session.trials[first_trial + index]
        for disk, stats in enumerate(metrics.drive_stats):
            drift = abs(trace.service_busy_ms(disk) - stats.busy_ms)
            if drift > 1e-6:
                raise RuntimeError(
                    f"trace busy spans drift from DriveStats.busy_ms by "
                    f"{drift:.3e} ms on disk {disk}"
                )
