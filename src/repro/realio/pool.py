"""The shared buffer pool of the real-I/O backend.

A thread-safe twin of :class:`repro.core.cache.BlockCache` holding real
block payloads: the merge thread reserves space the moment a fetch is
queued at a disk (*reserve-at-issue*) and frees it the moment a block's
records have been merged (*release-at-deplete*), while reader threads
deliver payloads with :meth:`block_arrived`.  Because each disk is one
FIFO reader thread and every block of a run lives on one disk, a run's
blocks arrive strictly in index order — the same property that lets the
simulator's cache reduce to per-run counters, so this pool reuses
:class:`~repro.core.cache.RunCacheState` (and its invariants) verbatim.

Prefetch planners (:mod:`repro.core.strategies`) observe the pool
through the same duck-typed surface they see on the simulator's cache:
``runs``, ``free``, ``can_reserve``.  :meth:`check` raises
:class:`~repro.core.cache.CacheAccountingError` on any space leak,
double free, or out-of-order arrival, exactly like the simulated cache.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional, Sequence

from repro.core.cache import CacheAccountingError, RunCacheState


class BufferPool:
    """Fixed-capacity pool of real block payloads shared by all runs."""

    def __init__(self, capacity: int, run_blocks: Sequence[int]) -> None:
        if capacity < 1:
            raise CacheAccountingError("pool capacity must be >= 1")
        self.capacity = capacity
        self._free = capacity
        self.runs = [
            RunCacheState(run, total) for run, total in enumerate(run_blocks)
        ]
        self._payloads: list[deque] = [deque() for _ in run_blocks]
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        # Statistics (same names as BlockCache, for shared reporting).
        self.min_free = capacity
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    # Space accounting (merge thread only)
    # ------------------------------------------------------------------
    @property
    def free(self) -> int:
        return self._free

    @property
    def occupied_or_reserved(self) -> int:
        return self.capacity - self._free

    def can_reserve(self, blocks: int) -> bool:
        return blocks <= self._free

    def reserve(self, run: int, blocks: int) -> None:
        """Claim space for ``blocks`` in-flight blocks of ``run``."""
        with self._lock:
            if blocks < 1:
                raise CacheAccountingError("must reserve at least one block")
            if blocks > self._free:
                raise CacheAccountingError(
                    f"reserve({blocks}) exceeds free space {self._free}"
                )
            state = self.runs[run]
            if state.next_fetch + blocks > state.total_blocks:
                raise CacheAccountingError(
                    f"run {run} has only {state.on_disk} blocks left on "
                    f"disk, cannot fetch {blocks}"
                )
            self._free -= blocks
            state.in_flight += blocks
            state.next_fetch += blocks
            self.min_free = min(self.min_free, self._free)
            self.peak_occupancy = max(
                self.peak_occupancy, self.capacity - self._free
            )

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    def block_arrived(self, run: int, block_index: int, payload: bytes) -> None:
        """A reader thread delivered one fetched block."""
        with self._arrived:
            state = self.runs[run]
            expected = state.next_deplete + state.cached
            if block_index != expected:
                raise CacheAccountingError(
                    f"run {run}: block {block_index} arrived out of order "
                    f"(expected {expected})"
                )
            if state.in_flight <= 0:
                raise CacheAccountingError(
                    f"run {run}: arrival with nothing in flight"
                )
            state.in_flight -= 1
            state.cached += 1
            self._payloads[run].append(payload)
            self._arrived.notify_all()

    def peek(self, run: int) -> bytes:
        """The payload of ``run``'s leading resident block (kept resident)."""
        with self._lock:
            if self.runs[run].cached < 1:
                raise CacheAccountingError(
                    f"run {run} has no resident block to read"
                )
            return self._payloads[run][0]

    def deplete(self, run: int) -> int:
        """Release the leading resident block of ``run``; frees one slot.

        Returns the index of the depleted block.
        """
        with self._lock:
            state = self.runs[run]
            if state.cached < 1:
                raise CacheAccountingError(
                    f"run {run} has no resident block to deplete"
                )
            index = state.next_deplete
            state.cached -= 1
            state.next_deplete += 1
            self._payloads[run].popleft()
            self._free += 1
            return index

    def wait_for_arrival(
        self, run: int, block_index: int, timeout_ms: Optional[float] = None
    ) -> None:
        """Block until ``block_index`` of ``run`` is resident.

        The block must already be in flight (reserve-at-issue means a
        demand wait always follows an issued fetch).  Raises
        :class:`TimeoutError` if the readers go silent for
        ``timeout_ms`` — a deadlock guard, not an expected path.
        """
        with self._arrived:
            state = self.runs[run]
            if block_index >= state.next_fetch:
                raise CacheAccountingError(
                    f"run {run}: block {block_index} was never issued "
                    f"(next_fetch {state.next_fetch})"
                )

            def resident() -> bool:
                return state.next_deplete + state.cached > block_index

            timeout_s = None if timeout_ms is None else timeout_ms / 1000.0
            if not self._arrived.wait_for(resident, timeout=timeout_s):
                raise TimeoutError(
                    f"run {run}: block {block_index} did not arrive within "
                    f"{timeout_ms:g} ms"
                )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Validate every invariant; raises on violation."""
        with self._lock:
            total_held = 0
            for state, payloads in zip(self.runs, self._payloads):
                state.check()
                if len(payloads) != state.cached:
                    raise CacheAccountingError(
                        f"run {state.run}: {len(payloads)} payload(s) held "
                        f"but {state.cached} block(s) accounted resident"
                    )
                total_held += state.cached + state.in_flight
            if total_held + self._free != self.capacity:
                raise CacheAccountingError(
                    f"space leak: held {total_held} + free {self._free} != "
                    f"capacity {self.capacity}"
                )
            if self._free < 0:
                raise CacheAccountingError("negative free space")
