"""The real-I/O layer's only wall-clock access point.

``repro/realio`` executes merges against real files, so its timings are
genuinely wall-clock — but the package still sits inside the lint
determinism scope (RPR001) like :mod:`repro.serve`: no module there may
read a wall clock directly.  Every time-dependent realio component
takes a ``clock`` (and, where it throttles, a ``sleep``) callable
defaulting to the functions here, and tests drive the same components
with a fake clock for deterministic assertions.

This module is the package's single exemption (``determinism-exempt``
in ``pyproject.toml``), mirroring :mod:`repro.serve.clock` — the serve
layer's blessed seam — and :mod:`repro.sim.random_streams` on the
randomness side.  Times are **milliseconds** (the unit of every
simulator metric and trace event) rather than the serve seam's
seconds, so measured spans drop straight into the same obs tooling.
"""

from __future__ import annotations

import time as _time
from typing import Callable

#: Signature of an injected clock: milliseconds from an arbitrary epoch.
ClockMs = Callable[[], float]

#: Signature of an injected blocking sleep (milliseconds).
SleepMs = Callable[[float], None]


def wall_clock_ms() -> float:
    """Milliseconds on the high-resolution monotonic performance clock."""
    return _time.perf_counter() * 1000.0


def blocking_sleep_ms(duration_ms: float) -> None:
    """Default :data:`SleepMs` (used by the throttle emulation knob)."""
    if duration_ms > 0:
        _time.sleep(duration_ms / 1000.0)
