"""repro.realio — the real-I/O strategy backend and sim-vs-real loop.

Everything else in this repository *simulates* the paper's multi-disk
merge; this package *executes* it.  The same planners
(:mod:`repro.core.strategies`), the same allocation discipline
(reserve-at-issue / release-at-deplete, via :class:`BufferPool`), and
the same observability events — but against real files, with one
reader thread standing in for each of the ``D`` disks.  On top sits
the calibration loop: measure per-read latencies, fit effective
(S, R, T), re-run the simulator under the fitted constants, and check
that predicted strategy orderings hold on the storage at hand.

Entry points: ``repro realio gen | run | calibrate | validate``.
"""

from repro.realio.backend import (
    RealIOConfig,
    RealMerge,
    RealMergeOutcome,
    RealMergeResult,
    ReadSample,
    run_real_merge,
)
from repro.realio.calibrate import (
    CalibrationReport,
    calibrate,
    observations_from_samples,
    probe_reads,
)
from repro.realio.clock import (
    ClockMs,
    SleepMs,
    blocking_sleep_ms,
    wall_clock_ms,
)
from repro.realio.dataset import (
    RealDataset,
    dataset_exists,
    generate_dataset,
    load_dataset,
    load_dataset_from_paths,
)
from repro.realio.pool import BufferPool
from repro.realio.validate import (
    StrategyOutcome,
    ValidationReport,
    run_validation,
)

__all__ = [
    "BufferPool",
    "CalibrationReport",
    "ClockMs",
    "RealDataset",
    "RealIOConfig",
    "RealMerge",
    "RealMergeOutcome",
    "RealMergeResult",
    "ReadSample",
    "SleepMs",
    "StrategyOutcome",
    "ValidationReport",
    "blocking_sleep_ms",
    "calibrate",
    "dataset_exists",
    "generate_dataset",
    "load_dataset",
    "load_dataset_from_paths",
    "observations_from_samples",
    "probe_reads",
    "run_real_merge",
    "run_validation",
    "wall_clock_ms",
]
