"""Calibrating the simulator's disk model from measured reads.

The paper's service model prices a read that moves the head ``c``
cylinders and transfers ``b`` blocks at ``S*c + R + T*b`` milliseconds.
:func:`calibrate` runs a controlled probe against a real dataset —
reads of varying size from varying positions, timed at the same
:data:`~repro.realio.clock.ClockMs` seam the backend uses — and hands
the samples to :func:`repro.analysis.calibration.fit_service_model`,
the measurement-direction twin of the anchor solve that recovered the
paper's own constants.  The result is an *effective*
:class:`~repro.core.parameters.DiskParameters` for whatever is actually
underneath (tmpfs, page cache, spinning rust, or the backend's throttle
emulation), ready to drop into a :class:`SimulationConfig` so the
simulator predicts *this* storage instead of a 1992 DEC drive.

Samples may also come straight from a real merge
(:func:`observations_from_samples` converts the backend's per-request
:class:`~repro.realio.backend.ReadSample` records), which calibrates
from production traffic instead of a synthetic probe.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable, Optional, Sequence

from repro.analysis.calibration import (
    Calibration,
    ReadObservation,
    fit_service_model,
)
from repro.core.parameters import DiskParameters
from repro.disks.layout import RunLayout
from repro.io.blockio import BLOCK_BYTES
from repro.realio.backend import ReadSample
from repro.realio.clock import (
    ClockMs,
    SleepMs,
    blocking_sleep_ms,
    wall_clock_ms,
)
from repro.realio.dataset import RealDataset

#: Read sizes (blocks) the probe mixes so the transfer coefficient is
#: identifiable separately from the per-request overhead.
PROBE_COUNTS = (1, 2, 4, 8)

#: Probe rounds per (run, count) pair by default.
PROBE_ROUNDS = 4


def observations_from_samples(
    samples: Iterable[ReadSample],
) -> list[ReadObservation]:
    """Backend read samples as fit observations (zero services dropped).

    A read the clock could not resolve (service time measured as 0 on
    very fast storage) carries no timing information and would poison
    the relative-residual statistics, so such samples are skipped.
    """
    return [
        ReadObservation(
            seek_cylinders=sample.seek_cylinders,
            blocks=sample.blocks,
            service_ms=sample.service_ms,
        )
        for sample in samples
        if sample.service_ms > 0
    ]


def probe_reads(
    dataset: RealDataset,
    counts: Sequence[int] = PROBE_COUNTS,
    rounds: int = PROBE_ROUNDS,
    seed: int = 1992,
    throttle_ms_per_block: float = 0.0,
    clock: ClockMs = wall_clock_ms,
    sleep: SleepMs = blocking_sleep_ms,
) -> list[ReadObservation]:
    """Timed reads of mixed sizes from seeded-random positions.

    Every run file is visited each round; within a round the read size
    cycles through ``counts`` and the start block is drawn uniformly
    (seeded), so both the seek and the transfer columns of the design
    matrix vary.  ``throttle_ms_per_block`` applies the same emulation
    sleep as :class:`~repro.realio.backend.RealIOConfig`, letting probe
    and merge measure the identical effective device.
    """
    if rounds < 1:
        raise ValueError("need at least one probe round")
    if not counts or any(count < 1 for count in counts):
        raise ValueError("read sizes must be positive")
    layout = RunLayout(
        num_runs=dataset.num_runs,
        num_disks=dataset.num_disks,
        blocks_per_run=dataset.blocks_per_run,
    )
    rng = random.Random(seed)
    head = [0] * dataset.num_disks
    observations: list[ReadObservation] = []
    cycle = 0
    for _ in range(rounds):
        for run in range(dataset.num_runs):
            count = min(counts[cycle % len(counts)], dataset.run_blocks[run])
            cycle += 1
            start = rng.randrange(dataset.run_blocks[run] - count + 1)
            disk = dataset.disk_of_run(run)
            target = layout.cylinder_of(run, start)
            distance = abs(target - head[disk])
            began = clock()
            with open(dataset.run_paths[run], "rb") as handle:
                handle.seek((1 + start) * BLOCK_BYTES)
                for _block in range(count):
                    handle.read(BLOCK_BYTES)
                    if throttle_ms_per_block > 0:
                        sleep(throttle_ms_per_block)
            service_ms = clock() - began
            head[disk] = layout.cylinder_of(run, start + count - 1)
            if service_ms > 0:
                observations.append(ReadObservation(
                    seek_cylinders=distance,
                    blocks=count,
                    service_ms=service_ms,
                ))
    return observations


@dataclasses.dataclass(frozen=True)
class CalibrationReport:
    """Fitted effective disk constants plus fit provenance."""

    dataset_description: str
    num_observations: int
    throttle_ms_per_block: float
    calibration: Calibration

    @property
    def disk_parameters(self) -> DiskParameters:
        """The fitted constants as a simulator-ready parameter set."""
        return DiskParameters(
            seek_ms_per_cylinder=self.calibration.seek_ms_per_cylinder,
            avg_rotational_latency_ms=(
                self.calibration.avg_rotational_latency_ms
            ),
            transfer_ms_per_block=self.calibration.transfer_ms_per_block,
        )

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset_description,
            "num_observations": self.num_observations,
            "throttle_ms_per_block": self.throttle_ms_per_block,
            "seek_ms_per_cylinder": self.calibration.seek_ms_per_cylinder,
            "avg_rotational_latency_ms": (
                self.calibration.avg_rotational_latency_ms
            ),
            "transfer_ms_per_block": self.calibration.transfer_ms_per_block,
            "max_relative_residual": self.calibration.max_relative_residual,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationReport":
        """Inverse of :meth:`to_dict` (per-observation residuals are not
        serialized; only their maximum survives the round trip)."""
        return cls(
            dataset_description=data["dataset"],
            num_observations=data["num_observations"],
            throttle_ms_per_block=data["throttle_ms_per_block"],
            calibration=Calibration(
                seek_ms_per_cylinder=data["seek_ms_per_cylinder"],
                avg_rotational_latency_ms=data["avg_rotational_latency_ms"],
                transfer_ms_per_block=data["transfer_ms_per_block"],
                max_relative_residual=data["max_relative_residual"],
                residuals=(),
            ),
        )

    def render(self) -> str:
        lines = [
            "Calibration (effective disk constants)",
            f"  dataset:       {self.dataset_description}",
            f"  observations:  {self.num_observations}",
            f"  throttle:      {self.throttle_ms_per_block:g} ms/block",
            f"  S (seek):      "
            f"{self.calibration.seek_ms_per_cylinder:.6f} ms/cylinder",
            f"  R (rotation):  "
            f"{self.calibration.avg_rotational_latency_ms:.6f} ms",
            f"  T (transfer):  "
            f"{self.calibration.transfer_ms_per_block:.6f} ms/block",
            f"  max residual:  "
            f"{self.calibration.max_relative_residual * 100:.1f}%",
        ]
        return "\n".join(lines)


def calibrate(
    dataset: RealDataset,
    observations: Optional[Sequence[ReadObservation]] = None,
    counts: Sequence[int] = PROBE_COUNTS,
    rounds: int = PROBE_ROUNDS,
    seed: int = 1992,
    throttle_ms_per_block: float = 0.0,
    clock: ClockMs = wall_clock_ms,
    sleep: SleepMs = blocking_sleep_ms,
) -> CalibrationReport:
    """Fit effective (S, R, T) for the storage under ``dataset``.

    Pass ``observations`` to calibrate from existing measurements (e.g.
    a merge's :class:`ReadSample` stream via
    :func:`observations_from_samples`); otherwise a fresh probe runs.
    """
    if observations is None:
        observations = probe_reads(
            dataset,
            counts=counts,
            rounds=rounds,
            seed=seed,
            throttle_ms_per_block=throttle_ms_per_block,
            clock=clock,
            sleep=sleep,
        )
    fitted = fit_service_model(observations)
    return CalibrationReport(
        dataset_description=dataset.describe(),
        num_observations=len(observations),
        throttle_ms_per_block=throttle_ms_per_block,
        calibration=fitted,
    )
