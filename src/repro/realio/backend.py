"""The real-I/O merge backend.

Runs the *same* prefetch strategies as the simulator — the planners of
:mod:`repro.core.strategies`, unmodified — against real run files, with
one reader thread per "disk" directory standing in for each of the
``D`` independent drives and a :class:`~repro.realio.pool.BufferPool`
enforcing the paper's allocation discipline (reserve-at-issue,
release-at-deplete).

Structure of one trial, mirroring
:meth:`repro.core.merge_sim.MergeTrial._merge_loop`:

1. **Preload**: the initial ``N`` blocks of every run are fetched and
   awaited before the merge clock starts (the simulator installs them
   at zero cost).
2. **Merge**: a :class:`~repro.mergesort.tournament.LoserTree` streams
   records; when a run crosses a block boundary its block is depleted
   (freeing a pool slot) and, if the next block is neither resident nor
   in flight, a *demand situation* invokes the planner — reserve the
   plan's groups, enqueue one read request per group at its disk, and
   stall until the demand block arrives.
3. Reader threads drain their per-disk FIFO queues, delivering payloads
   through :meth:`BufferPool.block_arrived` and timing each request
   through the injected :data:`~repro.realio.clock.ClockMs`.

Every request emits the same obs events as a simulated drive —
``DEMAND_FETCH``/``PREFETCH`` service spans on ``disk-i`` tracks,
``DEMAND_STALL`` spans on ``cpu``, queue-depth/service/stall histograms
— so real traces load into the identical Chrome-trace/JSONL tooling and
satisfy the same busy-accounting closure (service spans sum to
``DriveStats.busy_ms``).  Per-request :class:`ReadSample` timings feed
the calibration layer (:mod:`repro.realio.calibrate`).
"""

from __future__ import annotations

import dataclasses
import queue
import random
import threading
from pathlib import Path
from typing import Optional, Sequence

from repro.core.cache import RunCacheState  # noqa: F401  (re-export for views)
from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import CachePolicy, PrefetchStrategy, VictimSelector
from repro.core.strategies import FetchPlan, build_planner
from repro.disks.drive import DriveStats
from repro.disks.layout import RunLayout
from repro.io.blockio import BLOCK_BYTES
from repro.io.codec import RecordCodec
from repro.mergesort.tournament import LoserTree
from repro.obs.collector import TrialTrace
from repro.obs.events import EventKind
from repro.realio.clock import (
    ClockMs,
    SleepMs,
    blocking_sleep_ms,
    wall_clock_ms,
)
from repro.realio.dataset import RealDataset
from repro.realio.pool import BufferPool

#: The strategy variant names the realio bench scenario exposes.
STRATEGY_NAMES = tuple(s.value for s in PrefetchStrategy)


@dataclasses.dataclass(frozen=True)
class RealIOConfig:
    """One real-I/O merge configuration (the dataset supplies k and D).

    ``throttle_ms_per_block`` optionally sleeps the reader after every
    block read — a documented device-emulation knob that makes page-
    cache-fast storage behave like a slower drive so strategy gaps are
    measurable; 0 (the default) reads at native speed.
    """

    strategy: PrefetchStrategy = PrefetchStrategy.INTRA_RUN
    prefetch_depth: int = 4
    cache_capacity: Optional[int] = None
    cache_policy: CachePolicy = CachePolicy.CONSERVATIVE
    victim_selector: VictimSelector = VictimSelector.RANDOM
    throttle_ms_per_block: float = 0.0
    #: Deadlock guard on demand waits; generous, never an expected path.
    demand_timeout_ms: float = 60_000.0

    def __post_init__(self) -> None:
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth (N) must be >= 1")
        if self.throttle_ms_per_block < 0:
            raise ValueError("throttle must be non-negative")

    @property
    def effective_depth(self) -> int:
        if self.strategy is PrefetchStrategy.NONE:
            return 1
        return self.prefetch_depth

    def initial_blocks(self, dataset: RealDataset) -> list[int]:
        """Blocks of each run fetched before the merge clock starts."""
        return [
            min(self.effective_depth, blocks)
            for blocks in dataset.run_blocks
        ]

    def resolved_cache_capacity(self, dataset: RealDataset) -> int:
        """Pool size in blocks, by the simulator's sizing rules."""
        if self.cache_capacity is not None:
            return self.cache_capacity
        if self.strategy is PrefetchStrategy.INTER_RUN:
            generous = (
                dataset.num_runs
                * self.effective_depth
                * (1 + dataset.num_disks / 2)
            )
            return int(generous)
        return sum(self.initial_blocks(dataset))

    def describe(self, dataset: RealDataset) -> str:
        base = (
            f"realio k={dataset.num_runs} D={dataset.num_disks} "
            f"{self.strategy.value} N={self.effective_depth} "
            f"C={self.resolved_cache_capacity(dataset)}"
        )
        if self.throttle_ms_per_block > 0:
            base += f" throttle={self.throttle_ms_per_block:g}ms"
        return base


@dataclasses.dataclass(frozen=True)
class ReadSample:
    """One serviced read request, as measured at the reader thread."""

    disk: int
    seek_cylinders: int
    blocks: int
    service_ms: float
    queue_wait_ms: float
    demand: bool


@dataclasses.dataclass(frozen=True)
class _ReadRequest:
    run: int
    start: int
    count: int
    demand: bool
    enqueued_ms: float


@dataclasses.dataclass
class RealMergeResult:
    """Everything one real merge trial produced."""

    metrics: MergeMetrics
    samples: list[ReadSample]
    records_merged: int
    sorted_ok: bool


class RealMerge:
    """One trial of a real-file k-way merge under a prefetch strategy."""

    def __init__(
        self,
        dataset: RealDataset,
        config: RealIOConfig,
        seed: int = 1992,
        trace: Optional[TrialTrace] = None,
        output_path: Optional[Path] = None,
        clock: ClockMs = wall_clock_ms,
        sleep: SleepMs = blocking_sleep_ms,
        codec: Optional[RecordCodec] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.seed = seed
        self.trace = trace
        self.output_path = Path(output_path) if output_path else None
        self.clock = clock
        self.sleep = sleep
        self.codec = codec or RecordCodec()
        self.records_per_block = BLOCK_BYTES // self.codec.record_bytes

        # The planner's read-only SystemView: this object (layout,
        # cache, head_cylinder) — the same duck typing the simulator's
        # MergeTrial provides.
        self.layout = RunLayout(
            num_runs=dataset.num_runs,
            num_disks=dataset.num_disks,
            blocks_per_run=dataset.blocks_per_run,
        )
        capacity = config.resolved_cache_capacity(dataset)
        floor = sum(config.initial_blocks(dataset))
        if capacity < floor:
            raise ValueError(
                f"cache of {capacity} blocks cannot hold the preload of "
                f"{floor} blocks (k runs x N initial blocks)"
            )
        self.cache = BufferPool(capacity, dataset.run_blocks)
        rng = random.Random(seed)
        self.planner = build_planner(
            config.strategy,
            config.effective_depth,
            dataset.num_disks,
            config.cache_policy,
            config.victim_selector,
            rng,
        )

        self._queues: list[queue.Queue] = [
            queue.Queue() for _ in range(dataset.num_disks)
        ]
        self._threads: list[threading.Thread] = []
        # Guards the cross-thread result collections below: every
        # reader thread appends to them concurrently.
        self._results_lock = threading.Lock()
        self._reader_errors: list[BaseException] = []
        # One slot per disk, written only by that disk's reader thread;
        # the merge thread reads it between requests for seek planning.
        self._head_cylinder = [0] * dataset.num_disks  # repro-lint: shared-state=single-writer: slot [d] is owned by disk d's reader thread
        self._stats = [DriveStats() for _ in range(dataset.num_disks)]
        self._intervals: list[list[tuple[float, float]]] = [  # repro-lint: shared-state=single-writer: list [d] is owned by disk d's reader thread, read after join
            [] for _ in range(dataset.num_disks)
        ]
        self.samples: list[ReadSample] = []
        self._epoch_ms = 0.0

        self._blocks_depleted = 0
        self._blocks_fetched = 0
        self._fetch_requests = 0
        self._demand_situations = 0
        self._demand_hits_in_flight = 0
        self._fetch_decisions = 0
        self._full_prefetch_decisions = 0
        self._cpu_stall_ms = 0.0

    # -- SystemView ----------------------------------------------------------
    def head_cylinder(self, disk: int) -> int:
        return self._head_cylinder[disk]

    # -- the trial -----------------------------------------------------------
    def run(self) -> RealMergeResult:
        """Execute the merge; returns metrics, samples, and a sort check."""
        self._epoch_ms = self.clock()
        self._start_readers()
        try:
            self._preload()
            merge_start = self.clock()
            records, ordered, blocks_written = self._merge()
            total_ms = self.clock() - merge_start
        finally:
            self._stop_readers()
        if self._reader_errors:
            raise self._reader_errors[0]
        self.cache.check()
        metrics = self._collect_metrics(total_ms, blocks_written)
        if self.trace is not None:
            self.trace.finalize(metrics)
        return RealMergeResult(
            metrics=metrics,
            samples=self.samples,
            records_merged=records,
            sorted_ok=ordered,
        )

    # -- reader threads ------------------------------------------------------
    def _start_readers(self) -> None:
        for disk in range(self.dataset.num_disks):
            thread = threading.Thread(
                target=self._reader_loop,
                args=(disk,),
                name=f"realio-disk-{disk}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _stop_readers(self) -> None:
        for q in self._queues:
            q.put(None)
        for thread in self._threads:
            thread.join(timeout=30.0)

    def _reader_loop(self, disk: int) -> None:
        stats = self._stats[disk]
        handles: dict[int, object] = {}
        throttle = self.config.throttle_ms_per_block
        try:
            while True:
                request = self._queues[disk].get()
                if request is None:
                    break
                service_start = self.clock()
                handle = handles.get(request.run)
                if handle is None:
                    handle = open(self.dataset.run_paths[request.run], "rb")
                    handles[request.run] = handle
                target = self.layout.cylinder_of(request.run, request.start)
                distance = abs(target - self._head_cylinder[disk])
                handle.seek((1 + request.start) * BLOCK_BYTES)
                for i in range(request.count):
                    payload = handle.read(BLOCK_BYTES)
                    if throttle > 0:
                        self.sleep(throttle)
                    self.cache.block_arrived(
                        request.run, request.start + i, payload
                    )
                service_end = self.clock()
                self._head_cylinder[disk] = self.layout.cylinder_of(
                    request.run, request.start + request.count - 1
                )
                service_ms = service_end - service_start
                queue_wait_ms = max(0.0, service_start - request.enqueued_ms)
                stats.requests += 1
                stats.blocks += request.count
                if request.demand:
                    stats.demand_requests += 1
                else:
                    stats.prefetch_requests += 1
                stats.busy_ms += service_ms
                stats.queue_wait_ms += queue_wait_ms
                stats.seek_cylinders += distance
                if distance == 0:
                    stats.sequential_requests += 1
                self._intervals[disk].append(
                    (service_start - self._epoch_ms,
                     service_end - self._epoch_ms)
                )
                with self._results_lock:
                    self.samples.append(ReadSample(
                        disk=disk,
                        seek_cylinders=distance,
                        blocks=request.count,
                        service_ms=service_ms,
                        queue_wait_ms=queue_wait_ms,
                        demand=request.demand,
                    ))
                trace = self.trace
                if trace is not None:
                    kind = (EventKind.DEMAND_FETCH if request.demand
                            else EventKind.PREFETCH)
                    track = f"disk-{disk}"
                    trace.span(
                        kind,
                        track,
                        service_start - self._epoch_ms,
                        service_end - self._epoch_ms,
                        {"run": request.run, "start": request.start,
                         "blocks": request.count},
                    )
                    trace.observe_service(
                        track, kind.value, service_ms, queue_wait_ms
                    )
        except BaseException as exc:  # noqa: BLE001 - relayed to the merge
            # Thread isolation boundary: the merge thread times out on
            # its demand wait and re-raises this as the trial's error.
            with self._results_lock:
                self._reader_errors.append(exc)

    # -- issuing fetches -----------------------------------------------------
    def _submit(self, run: int, count: int, demand: bool) -> None:
        """Reserve pool space and enqueue one read at the run's disk."""
        state = self.cache.runs[run]
        start = state.next_fetch
        self.cache.reserve(run, count)
        disk = self.layout.disk_of_run(run)
        depth = self._queues[disk].qsize()
        stats = self._stats[disk]
        stats.max_queue_length = max(stats.max_queue_length, depth + 1)
        if self.trace is not None:
            self.trace.observe_queue_depth(f"disk-{disk}", depth)
        self._queues[disk].put(_ReadRequest(
            run=run, start=start, count=count, demand=demand,
            enqueued_ms=self.clock(),
        ))
        self._fetch_requests += 1
        self._blocks_fetched += count

    def _issue(self, plan: FetchPlan) -> None:
        for group in plan.groups:
            count = min(group.count, self.cache.runs[group.run].on_disk)
            if count < 1:
                continue
            self._submit(group.run, count, group.demand)

    def _record_decision(self, plan: FetchPlan) -> None:
        if plan.counts_as_decision:
            self._fetch_decisions += 1
            if plan.full_prefetch:
                self._full_prefetch_decisions += 1

    # -- preload -------------------------------------------------------------
    def _preload(self) -> None:
        initial = self.config.initial_blocks(self.dataset)
        for run, count in enumerate(initial):
            self._submit(run, count, demand=False)
        for run, count in enumerate(initial):
            self.cache.wait_for_arrival(
                run, count - 1, self._wait_timeout_ms()
            )

    def _wait_timeout_ms(self) -> float:
        # Scale the deadlock guard with deliberate throttling so slow
        # emulated devices don't trip it.
        per_block = self.config.throttle_ms_per_block
        budget = per_block * self.cache.capacity * 4
        return max(self.config.demand_timeout_ms, budget)

    # -- the merge loop ------------------------------------------------------
    def _merge(self) -> tuple[int, bool, int]:
        """K-way merge every run stream; returns (records, sorted, blocks)."""
        streams = [
            self._run_stream(run) for run in range(self.dataset.num_runs)
        ]
        tree = LoserTree(streams)
        records = 0
        ordered = True
        previous = None
        writer = None
        if self.output_path is not None:
            from repro.io.blockio import BlockWriter

            writer = BlockWriter(self.output_path, self.codec)
        try:
            for record in tree:
                if previous is not None and record < previous:
                    ordered = False
                previous = record
                records += 1
                if writer is not None:
                    writer.write(record)
        finally:
            if writer is not None:
                writer.close()
        blocks_written = writer.blocks_written if writer is not None else 0
        return records, ordered, blocks_written

    def _run_stream(self, run: int):
        """Generator yielding the records of ``run``, block by block."""
        remaining = self.dataset.run_records[run]
        record_bytes = self.codec.record_bytes
        while remaining > 0:
            payload = self._acquire_block(run)
            in_block = min(self.records_per_block, remaining)
            for record in self.codec.decode_many(
                payload[: in_block * record_bytes]
            ):
                yield record
            remaining -= in_block
            self.cache.deplete(run)
            self._blocks_depleted += 1

    def _acquire_block(self, run: int) -> bytes:
        """The leading resident block of ``run``, demand-fetching if needed."""
        state = self.cache.runs[run]
        if state.cached == 0:
            self._demand(run)
        return self.cache.peek(run)

    def _demand(self, run: int) -> None:
        """One demand situation: plan, issue, and stall for the block."""
        self._demand_situations += 1
        state = self.cache.runs[run]
        stall_start = self.clock()
        if state.in_flight > 0:
            self._demand_hits_in_flight += 1
        else:
            plan = self.planner.plan(self, run)
            self._record_decision(plan)
            self._issue(plan)
        try:
            self.cache.wait_for_arrival(
                run, state.next_deplete, self._wait_timeout_ms()
            )
        except TimeoutError:
            if self._reader_errors:
                raise self._reader_errors[0] from None
            raise
        stalled = self.clock() - stall_start
        self._cpu_stall_ms += stalled
        trace = self.trace
        if trace is not None:
            trace.span(
                EventKind.DEMAND_STALL,
                "cpu",
                stall_start - self._epoch_ms,
                stall_start - self._epoch_ms + stalled,
                {"run": run},
            )
            trace.observe_stall(stalled)

    # -- metrics -------------------------------------------------------------
    def _collect_metrics(
        self, total_ms: float, blocks_written: int
    ) -> MergeMetrics:
        concurrency = _concurrency_of(self._intervals, total_ms)
        return MergeMetrics(
            config_description=self.config.describe(self.dataset),
            seed=self.seed,
            total_time_ms=total_ms,
            blocks_depleted=self._blocks_depleted,
            blocks_fetched=self._blocks_fetched,
            fetch_requests=self._fetch_requests,
            demand_situations=self._demand_situations,
            demand_hits_in_flight=self._demand_hits_in_flight,
            fetch_decisions=self._fetch_decisions,
            full_prefetch_decisions=self._full_prefetch_decisions,
            cpu_stall_ms=self._cpu_stall_ms,
            cpu_busy_ms=max(0.0, total_ms - self._cpu_stall_ms),
            drive_stats=self._stats,
            average_concurrency=concurrency.average,
            peak_concurrency=concurrency.peak,
            disk_busy_fraction=concurrency.busy_fraction,
            cache_min_free=self.cache.min_free,
            cache_mean_occupancy=float(self.cache.peak_occupancy),
            cache_peak_occupancy=self.cache.peak_occupancy,
            blocks_written=blocks_written,
        )


@dataclasses.dataclass(frozen=True)
class _Concurrency:
    average: float
    peak: int
    busy_fraction: float


def _concurrency_of(
    intervals: Sequence[Sequence[tuple[float, float]]], total_ms: float
) -> _Concurrency:
    """Time-weighted busy-disk statistics from per-disk service spans."""
    edges: list[tuple[float, int]] = []
    for disk_intervals in intervals:
        for start, end in disk_intervals:
            edges.append((start, 1))
            edges.append((end, -1))
    if not edges:
        return _Concurrency(average=0.0, peak=0, busy_fraction=0.0)
    edges.sort()
    busy = 0
    peak = 0
    weighted = 0.0
    active = 0.0
    last = edges[0][0]
    for at, delta in edges:
        span = at - last
        if span > 0 and busy > 0:
            weighted += busy * span
            active += span
        busy += delta
        peak = max(peak, busy)
        last = at
    average = weighted / active if active > 0 else 0.0
    fraction = active / total_ms if total_ms > 0 else 0.0
    return _Concurrency(
        average=average, peak=peak, busy_fraction=min(1.0, fraction)
    )


@dataclasses.dataclass
class RealMergeOutcome:
    """Aggregated trials of one configuration on one dataset."""

    aggregate: AggregateMetrics
    samples: list[ReadSample]
    records_merged: int
    sorted_ok: bool

    @property
    def trials(self) -> list[MergeMetrics]:
        return self.aggregate.trials


def run_real_merge(
    dataset: RealDataset,
    config: RealIOConfig,
    trials: int = 1,
    base_seed: int = 1992,
    session=None,
    output_path: Optional[Path] = None,
    clock: ClockMs = wall_clock_ms,
    sleep: SleepMs = blocking_sleep_ms,
) -> RealMergeOutcome:
    """Run ``trials`` seeded real merges; trial ``t`` uses ``base_seed+t``.

    ``session`` is an optional :class:`~repro.obs.collector.TraceSession`;
    each trial registers one TrialTrace exactly like a simulated trial.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    metrics: list[MergeMetrics] = []
    samples: list[ReadSample] = []
    records = 0
    ordered = True
    description = config.describe(dataset)
    for index in range(trials):
        seed = base_seed + index
        trace = (
            session.trial(seed, description) if session is not None else None
        )
        merge = RealMerge(
            dataset,
            config,
            seed=seed,
            trace=trace,
            output_path=output_path,
            clock=clock,
            sleep=sleep,
        )
        result = merge.run()
        metrics.append(result.metrics)
        samples.extend(result.samples)
        records = result.records_merged
        ordered = ordered and result.sorted_ok
    return RealMergeOutcome(
        aggregate=AggregateMetrics(
            config_description=description, trials=metrics
        ),
        samples=samples,
        records_merged=records,
        sorted_ok=ordered,
    )
