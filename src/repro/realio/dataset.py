"""On-disk datasets for the real-I/O backend.

A dataset is ``k`` sorted run files laid out round-robin across ``D``
directories (``disk-0`` .. ``disk-D-1``), one directory standing in for
each physical disk — the same placement :class:`repro.disks.layout.RunLayout`
models for the simulator (run ``r`` on disk ``r mod D``).  Run files use
the :mod:`repro.io.blockio` format, so anything ``repro.mergesort`` /
``repro.io`` produces (e.g. the spill runs of a :class:`FileSorter`)
can be wrapped into a dataset with :func:`load_dataset`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.io.blockio import BLOCK_BYTES, BlockReader, BlockWriter
from repro.io.codec import RecordCodec
from repro.mergesort.records import Record


@dataclass(frozen=True)
class RealDataset:
    """``k`` sorted run files distributed over ``D`` disk directories.

    ``run_paths[r]`` lives under ``disk-(r mod num_disks)``;
    ``run_blocks[r]`` / ``run_records[r]`` are its data-block and record
    counts (from the file headers, header block excluded).
    """

    root: Path
    num_disks: int
    run_paths: tuple[Path, ...]
    run_blocks: tuple[int, ...]
    run_records: tuple[int, ...]

    @property
    def num_runs(self) -> int:
        return len(self.run_paths)

    @property
    def blocks_per_run(self) -> int:
        """The longest run, in blocks (the layout's slot size)."""
        return max(self.run_blocks)

    @property
    def total_blocks(self) -> int:
        return sum(self.run_blocks)

    @property
    def total_records(self) -> int:
        return sum(self.run_records)

    def disk_of_run(self, run: int) -> int:
        return run % self.num_disks

    def describe(self) -> str:
        return (
            f"k={self.num_runs} D={self.num_disks} "
            f"{self.blocks_per_run} blocks/run "
            f"({self.total_records} records) at {self.root}"
        )


#: Manifest filename written next to the disk directories.
MANIFEST = "dataset.json"


def generate_dataset(
    root: Path,
    num_runs: int,
    num_disks: int,
    blocks_per_run: int,
    seed: int = 1992,
    codec: Optional[RecordCodec] = None,
) -> RealDataset:
    """Write ``num_runs`` sorted run files round-robin over ``num_disks``.

    Keys are uniform random from a seeded stream (run ``r`` uses
    ``seed + r``), sorted in memory per run — the state an external
    sort's run-formation phase leaves on disk.  Deterministic: the same
    arguments always produce byte-identical files.
    """
    if num_runs < 1:
        raise ValueError("need at least one run")
    if num_disks < 1:
        raise ValueError("need at least one disk")
    if blocks_per_run < 1:
        raise ValueError("runs must contain at least one block")
    root = Path(root)
    codec = codec or RecordCodec()
    records_per_block = BLOCK_BYTES // codec.record_bytes
    run_paths: list[Path] = []
    tag = 0
    for run in range(num_runs):
        directory = root / f"disk-{run % num_disks}"
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"run-{run:05d}.blk"
        rng = random.Random(seed + run)
        load = []
        for _ in range(blocks_per_run * records_per_block):
            load.append(Record(key=rng.randrange(1 << 40), tag=tag))
            tag += 1
        load.sort()
        with BlockWriter(path, codec) as writer:
            writer.write_many(load)
        run_paths.append(path)
    dataset = load_dataset_from_paths(root, num_disks, run_paths, codec)
    manifest = {
        "num_runs": num_runs,
        "num_disks": num_disks,
        "blocks_per_run": blocks_per_run,
        "seed": seed,
        "runs": [str(path.relative_to(root)) for path in run_paths],
    }
    (root / MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    return dataset


def load_dataset_from_paths(
    root: Path,
    num_disks: int,
    run_paths: list[Path],
    codec: Optional[RecordCodec] = None,
) -> RealDataset:
    """Wrap existing run files (in run order) into a dataset."""
    if not run_paths:
        raise ValueError(f"no run files under {root}")
    codec = codec or RecordCodec()
    blocks, records = [], []
    for path in run_paths:
        reader = BlockReader(path, codec)
        blocks.append(reader.num_blocks)
        records.append(reader.record_count)
    return RealDataset(
        root=Path(root),
        num_disks=num_disks,
        run_paths=tuple(Path(p) for p in run_paths),
        run_blocks=tuple(blocks),
        run_records=tuple(records),
    )


def load_dataset(root: Path, codec: Optional[RecordCodec] = None) -> RealDataset:
    """Load a dataset previously written by :func:`generate_dataset`."""
    root = Path(root)
    manifest_path = root / MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{root} holds no {MANIFEST}; generate one with "
            "generate_dataset() or 'repro realio gen'"
        )
    manifest = json.loads(manifest_path.read_text())
    run_paths = [root / rel for rel in manifest["runs"]]
    return load_dataset_from_paths(
        root, int(manifest["num_disks"]), run_paths, codec
    )


def dataset_exists(root: Path) -> bool:
    return (Path(root) / MANIFEST).exists()
