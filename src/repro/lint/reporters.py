"""Rendering: text, JSON, SARIF, and DOT views of a lint run.

The finding reporters receive the same already-partitioned material —
new findings, grandfathered findings, stale baseline entries, and scan
stats — and return a string; writing it anywhere is the caller's job
(the CLI owns stdout, per RPR008).  :func:`render_dot` is the odd one
out: it renders the pass-1 import graph, collapsed to the configured
layer prefixes, as Graphviz source (``repro lint --graph dot``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.baseline import BaselineEntry
from repro.lint.engine import LintReport
from repro.lint.findings import Finding, Severity

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


@dataclass
class RunOutcome:
    """Everything one CLI lint run decided, ready for rendering."""

    report: LintReport
    new: list[Finding]
    grandfathered: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    baseline_path: str | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def render_text(outcome: RunOutcome, stats: bool = False) -> str:
    """Human-readable report: one finding per line plus a verdict."""
    lines: list[str] = []
    for finding in outcome.new:
        lines.append(finding.render())
    if outcome.grandfathered:
        lines.append(
            f"({len(outcome.grandfathered)} grandfathered finding(s) "
            f"suppressed by baseline {outcome.baseline_path})"
        )
    for entry in outcome.stale_entries:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"({entry.message!r} no longer occurs) — remove it"
        )
    if stats:
        lines.append(render_stats(outcome.report))
    if outcome.new:
        lines.append(
            f"{len(outcome.new)} new finding(s); fix them, suppress a "
            "deliberate counter-example inline (# repro-lint: "
            "disable=RPRxxx), or baseline with a justification"
        )
    else:
        lines.append("lint: ok")
    return "\n".join(lines)


def render_stats(report: LintReport) -> str:
    """The ``--stats`` summary block."""
    by_rule = ", ".join(
        f"{rule}:{count}" for rule, count in report.counts_by_rule().items()
    ) or "none"
    return (
        f"lint stats: {report.files_scanned} file(s) scanned, "
        f"{report.rules_run} rule(s), {len(report.findings)} finding(s) "
        f"[{by_rule}], {report.suppressed} inline-suppressed, "
        f"{report.elapsed_s:.2f}s elapsed"
    )


def render_json(outcome: RunOutcome) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "exit_code": outcome.exit_code,
        "baseline": outcome.baseline_path,
        "new_findings": [finding.to_dict() for finding in outcome.new],
        "grandfathered": [
            finding.to_dict() for finding in outcome.grandfathered
        ],
        "stale_baseline_entries": [
            entry.to_dict() for entry in outcome.stale_entries
        ],
        "stats": outcome.report.stats_dict(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(finding: Finding, *, suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": (
            "error" if finding.severity is Severity.ERROR else "warning"
        ),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {"startLine": max(finding.line, 1)},
            },
        }],
    }
    if suppressed:
        # Grandfathered findings ride along so code scanning shows the
        # debt, marked suppressed so they do not gate merges.
        result["suppressions"] = [{
            "kind": "external",
            "justification": "grandfathered in lint-baseline.json",
        }]
    return result


def render_sarif(outcome: RunOutcome) -> str:
    """SARIF 2.1.0 report for GitHub code scanning upload."""
    from repro.lint.registry import all_rules

    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": (
                    "error"
                    if rule.severity is Severity.ERROR
                    else "warning"
                ),
            },
        }
        for rule in all_rules()
    ]
    results = [
        _sarif_result(finding, suppressed=False) for finding in outcome.new
    ] + [
        _sarif_result(finding, suppressed=True)
        for finding in outcome.grandfathered
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/LINT.md",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_dot(model, config) -> str:
    """The layer diagram: import graph collapsed to layer prefixes.

    Each configured ``[tool.repro-lint.layers]`` prefix becomes one
    node, clustered by layer in ``layer_order``; an edge means *some*
    module under the source prefix imports *some* module under the
    target prefix at top level.  Output is deterministic, so the
    DESIGN.md embedding can be diffed against ``repro lint --graph
    dot``.
    """
    from repro.lint.checkers.layering import layer_of
    from repro.lint.registry import path_matches

    def group_of(package_path: str) -> str | None:
        # Longest matching prefix wins, same as layer_of's membership.
        best = None
        for prefixes in config.layers.values():
            for prefix in prefixes:
                if path_matches(package_path, [prefix]):
                    if best is None or len(prefix) > len(best):
                        best = prefix
        return best

    def node_name(prefix: str) -> str:
        trimmed = prefix[:-3] if prefix.endswith(".py") else prefix
        if trimmed.endswith("/__init__"):
            trimmed = trimmed[: -len("/__init__")]
        return trimmed.replace("/", ".")

    members: dict[str, set[str]] = {layer: set() for layer in config.layers}
    groups: dict[str, str] = {}
    for name, module in model.modules.items():
        prefix = group_of(module.info.package_path)
        layer = layer_of(module.info.package_path, config)
        if prefix is None or layer is None:
            continue
        groups[name] = node_name(prefix)
        members[layer].add(node_name(prefix))

    edges: set[tuple[str, str]] = set()
    for importer, imports in model.import_graph().items():
        for imported in imports:
            source, target = groups.get(importer), groups.get(imported)
            if source and target and source != target:
                edges.add((source, target))

    lines = [
        "digraph repro_layers {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for index, layer in enumerate(config.layer_order):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{layer}";')
        for node in sorted(members.get(layer, ())):
            lines.append(f'    "{node}";')
        lines.append("  }")
    for source, target in sorted(edges):
        lines.append(f'  "{source}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines)
