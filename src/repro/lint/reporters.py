"""Rendering: text and JSON views of a lint run.

Both reporters receive the same already-partitioned material — new
findings, grandfathered findings, stale baseline entries, and scan
stats — and return a string; writing it anywhere is the caller's job
(the CLI owns stdout, per RPR008).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.baseline import BaselineEntry
from repro.lint.engine import LintReport
from repro.lint.findings import Finding

JSON_SCHEMA_VERSION = 1


@dataclass
class RunOutcome:
    """Everything one CLI lint run decided, ready for rendering."""

    report: LintReport
    new: list[Finding]
    grandfathered: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    baseline_path: str | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def render_text(outcome: RunOutcome, stats: bool = False) -> str:
    """Human-readable report: one finding per line plus a verdict."""
    lines: list[str] = []
    for finding in outcome.new:
        lines.append(finding.render())
    if outcome.grandfathered:
        lines.append(
            f"({len(outcome.grandfathered)} grandfathered finding(s) "
            f"suppressed by baseline {outcome.baseline_path})"
        )
    for entry in outcome.stale_entries:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"({entry.message!r} no longer occurs) — remove it"
        )
    if stats:
        lines.append(render_stats(outcome.report))
    if outcome.new:
        lines.append(
            f"{len(outcome.new)} new finding(s); fix them, suppress a "
            "deliberate counter-example inline (# repro-lint: "
            "disable=RPRxxx), or baseline with a justification"
        )
    else:
        lines.append("lint: ok")
    return "\n".join(lines)


def render_stats(report: LintReport) -> str:
    """The ``--stats`` summary block."""
    by_rule = ", ".join(
        f"{rule}:{count}" for rule, count in report.counts_by_rule().items()
    ) or "none"
    return (
        f"lint stats: {report.files_scanned} file(s) scanned, "
        f"{report.rules_run} rule(s), {len(report.findings)} finding(s) "
        f"[{by_rule}], {report.suppressed} inline-suppressed, "
        f"{report.elapsed_s:.2f}s elapsed"
    )


def render_json(outcome: RunOutcome) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "exit_code": outcome.exit_code,
        "baseline": outcome.baseline_path,
        "new_findings": [finding.to_dict() for finding in outcome.new],
        "grandfathered": [
            finding.to_dict() for finding in outcome.grandfathered
        ],
        "stale_baseline_entries": [
            entry.to_dict() for entry in outcome.stale_entries
        ],
        "stats": outcome.report.stats_dict(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
