"""RPR005–RPR008: ordering, exception, default-argument, stdout hygiene.

Four smaller rules guarding the same north star — deterministic replay
and observable failure — at the Python-idiom level:

* **RPR005** set iteration in event-ordering modules: ``set`` order is
  salted per process, so ``for x in {...}`` replays differently across
  runs and workers.  ``sorted(...)`` over a set is fine.
* **RPR006** exception discipline: bare ``except:`` anywhere, handlers
  whose body is only ``pass``/``...`` (swallowed failures), and broad
  ``except Exception/BaseException`` inside the configured worker/retry
  modules, where a catch-all is a deliberate design decision that
  belongs in the baseline with a written reason.
* **RPR007** mutable default arguments: the classic shared-state bug;
  in simulation code it also aliases state *across trials*, breaking
  trial independence.
* **RPR008** ``print()`` without an explicit ``file=`` outside the CLI:
  library code writing to ambient stdout corrupts reports and JSON
  exports; reporters must write to an injected stream.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    ModuleInfo,
    get_rule,
    make_finding,
    path_matches,
    register,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig


# -- RPR005: set-iteration ordering hazards ---------------------------------

def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register(
    "RPR005",
    name="set-iteration-order",
    severity=Severity.ERROR,
    rationale=(
        "Set iteration order is hash-salted per process; iterating a set "
        "in event-ordering code makes replays and parallel sweep workers "
        "diverge."
    ),
)
def check_set_iteration(
    module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    if not path_matches(module.package_path, config.ordering_modules):
        return
    rule = get_rule("RPR005")
    for node in ast.walk(module.tree):
        iterators: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterators.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterators.extend(
                generator.iter for generator in node.generators
            )
        for iterator in iterators:
            if _is_set_expression(iterator):
                yield make_finding(
                    rule, module.relpath, iterator,
                    "iteration over a set has no deterministic order in "
                    "event-ordering code; sort it (sorted(...)) or use a "
                    "list/dict",
                )


# -- RPR006: exception discipline -------------------------------------------

def _is_swallowed(handler: ast.ExceptHandler) -> bool:
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
        ):
            continue  # docstring or `...`
        return False
    return True


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Cleanup-and-reraise handlers propagate the failure: not broad."""
    return any(
        isinstance(node, ast.Raise)
        for statement in handler.body
        for node in ast.walk(statement)
    )


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for element in nodes:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return names


@register(
    "RPR006",
    name="exception-discipline",
    severity=Severity.WARNING,
    rationale=(
        "Workers and retry loops that swallow or over-catch exceptions "
        "turn real faults into silently wrong sweep results; every "
        "catch-all must be a documented decision."
    ),
)
def check_exceptions(
    module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    rule = get_rule("RPR006")
    in_retry_code = path_matches(
        module.package_path, config.broad_except_modules
    )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield make_finding(
                rule, module.relpath, node,
                "bare except: hides every failure including "
                "KeyboardInterrupt/SystemExit; catch specific exceptions",
            )
            continue
        if _is_swallowed(node):
            caught = ", ".join(_caught_names(node)) or "exception"
            yield make_finding(
                rule, module.relpath, node,
                f"except {caught}: with a pass-only body swallows the "
                "failure; handle it, log it, or let it propagate",
            )
            continue
        if in_retry_code and not _reraises(node):
            broad = [
                name for name in _caught_names(node)
                if name in ("Exception", "BaseException")
            ]
            if broad:
                yield make_finding(
                    rule, module.relpath, node,
                    f"broad except {broad[0]} in worker/retry code; narrow "
                    "it to the failures the retry is designed for, or "
                    "baseline this site with a justification",
                )


# -- RPR007: mutable default arguments --------------------------------------

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in _MUTABLE_CALLS
    return False


@register(
    "RPR007",
    name="mutable-default-argument",
    severity=Severity.ERROR,
    rationale=(
        "A mutable default is created once and shared by every call — in "
        "simulation code it aliases state across trials, breaking trial "
        "independence and replayability."
    ),
)
def check_mutable_defaults(
    module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    del config
    rule = get_rule("RPR007")
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        arguments = node.args
        positional = arguments.posonlyargs + arguments.args
        pairs = list(
            zip(positional[len(positional) - len(arguments.defaults):],
                arguments.defaults)
        )
        pairs.extend(
            (argument, default)
            for argument, default in zip(arguments.kwonlyargs,
                                         arguments.kw_defaults)
            if default is not None
        )
        for argument, default in pairs:
            if _is_mutable_default(default):
                rendered = ast.unparse(default)
                yield make_finding(
                    rule, module.relpath, default,
                    f"mutable default {rendered} for argument "
                    f"{argument.arg!r} is shared across calls; default to "
                    "None and create inside (or field(default_factory=...))",
                )


# -- RPR008: stdout discipline ----------------------------------------------

@register(
    "RPR008",
    name="print-discipline",
    severity=Severity.WARNING,
    rationale=(
        "Library code printing to ambient stdout corrupts machine-read "
        "reports and JSON exports; only the CLI owns stdout, everything "
        "else writes to an injected stream."
    ),
)
def check_print(module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
    if path_matches(module.package_path, config.print_allowed):
        return
    rule = get_rule("RPR008")
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Name) and node.func.id == "print"):
            continue
        if any(keyword.arg == "file" for keyword in node.keywords):
            continue
        yield make_finding(
            rule, module.relpath, node,
            "print() without an explicit file= outside the CLI; return "
            "strings or write to an injected stream",
        )
