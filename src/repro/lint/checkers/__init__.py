"""Checker modules; importing this package registers every rule.

Shipped rule ids (see ``docs/LINT.md`` for rationale and examples):

========  ==============================================================
RPR001    determinism: no wall clock / OS entropy / global RNG in
          simulation modules — randomness flows through named
          ``repro.sim.random_streams`` streams only
RPR002    hot-path classes must declare ``__slots__``
RPR003    every ``SimulationConfig`` field must be inventoried in
          ``repro/sweep/keys.py`` (key-relevant or explicitly excluded)
RPR004    serialization symmetry: ``to_dict`` without a matching
          ``from_dict`` (referencing every serialized key) is a
          round-trip hazard
RPR005    iterating a set in event-ordering code is replay-hazardous
RPR006    bare / swallowed / unjustified-broad exception handlers
RPR007    mutable default arguments
RPR008    ``print()`` without an explicit stream outside the CLI
RPR009    deprecated override shims (``kernel_override`` & co.)
          used outside their shim module — use
          ``repro.api.RunContext``/``configure`` in-repo
========  ==============================================================
"""

from repro.lint.checkers import (  # noqa: F401  (register rules on import)
    deprecated,
    determinism,
    hygiene,
    schema,
    serialization,
    slots,
)
