"""Checker modules; importing this package registers every rule.

Shipped rule ids (see ``docs/LINT.md`` for rationale and examples):

========  ==============================================================
RPR001    determinism: no wall clock / OS entropy / global RNG in
          simulation modules — randomness flows through named
          ``repro.sim.random_streams`` streams only
RPR002    hot-path classes must declare ``__slots__``
RPR003    every ``SimulationConfig`` field must be inventoried in
          ``repro/sweep/keys.py`` (key-relevant or explicitly excluded)
RPR004    serialization symmetry: ``to_dict`` without a matching
          ``from_dict`` (referencing every serialized key) is a
          round-trip hazard
RPR005    iterating a set in event-ordering code is replay-hazardous
RPR006    bare / swallowed / unjustified-broad exception handlers
RPR007    mutable default arguments
RPR008    ``print()`` without an explicit stream outside the CLI
RPR009    deprecated override shims (``kernel_override`` & co.)
          used outside their shim module — use
          ``repro.api.RunContext``/``configure`` in-repo
RPR010    layering: the declared layer DAG (pyproject
          ``[tool.repro-lint.layers]``) forbids upward and cyclic
          imports — cross-file, runs on the project model
RPR011    blocking-in-async: coroutine bodies in the async packages
          must not reach sync I/O, transitively through the call index
RPR012    lock discipline: attributes mutated by thread-entry code
          need the owning lock or a ``shared-state=<why>`` annotation
RPR013    unawaited coroutine / fire-and-forget ``create_task``
========  ==============================================================
"""

from repro.lint.checkers import (  # noqa: F401  (register rules on import)
    concurrency,
    deprecated,
    determinism,
    hygiene,
    layering,
    schema,
    serialization,
    slots,
)
