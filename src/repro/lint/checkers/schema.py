"""RPR003: every ``SimulationConfig`` field must be inventoried for caching.

The sweep cache addresses results by a hash over the configuration; a
field that changes simulation behaviour but is missing from the key
silently serves stale results, and a field hashed when it should be
excluded (like ``kernel``) splits one logical cell into several cache
entries.  ``repro/sweep/keys.py`` therefore carries an *explicit*
inventory — ``KNOWN_CONFIG_FIELDS`` (folded into the key) and
``KEY_EXCLUDED_FIELDS`` (deliberately not) — and this rule parses both
modules to prove the inventory and the dataclass agree:

* a config field in neither tuple → new field added without a caching
  decision;
* a name in either tuple that is no longer a field → stale inventory;
* a name in both tuples → contradictory decision.

This is a *project*-scope rule: it reads the two modules named by
``config-module`` / ``keys-module`` in ``[tool.repro-lint]`` directly,
so it runs (and fails loudly if they are missing) regardless of which
paths were linted.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleInfo, get_rule, make_finding, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig

RULE_ID = "RPR003"

KNOWN_NAME = "KNOWN_CONFIG_FIELDS"
EXCLUDED_NAME = "KEY_EXCLUDED_FIELDS"


def _parse(path: Path) -> ast.Module | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None


def config_class_fields(
    tree: ast.Module, class_name: str
) -> dict[str, int] | None:
    """``{field_name: line}`` of the dataclass body, or None if absent.

    Only annotated assignments count (dataclass fields); private names
    and ``ClassVar`` annotations are not fields.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: dict[str, int] = {}
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                target = statement.target
                if not isinstance(target, ast.Name):
                    continue
                if target.id.startswith("_"):
                    continue
                annotation = ast.unparse(statement.annotation)
                if "ClassVar" in annotation:
                    continue
                fields[target.id] = statement.lineno
            return fields
    return None


def string_tuple(tree: ast.Module, name: str) -> tuple[list[str], int] | None:
    """The string elements (and line) of ``name = (...)``, or None."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if not isinstance(value, (ast.Tuple, ast.List)):
                    return ([], node.lineno)
                names = [
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                return (names, node.lineno)
    return None


@register(
    RULE_ID,
    name="cache-key-schema",
    severity=Severity.ERROR,
    rationale=(
        "A SimulationConfig field absent from the sweep cache-key "
        "inventory can silently serve stale cached results for "
        "behaviourally different configurations."
    ),
    scope="project",
)
def check_cache_key_schema(
    modules: list[ModuleInfo], config: "LintConfig", root: Path
) -> Iterator[Finding]:
    del modules  # reads the two named modules directly from disk
    rule = get_rule(RULE_ID)
    config_path = root / config.config_module
    keys_path = root / config.keys_module

    config_tree = _parse(config_path)
    if config_tree is None:
        yield make_finding(rule, config.config_module, 1,
                           f"cannot parse config module {config.config_module}"
                           " for the cache-key schema cross-check")
        return
    fields = config_class_fields(config_tree, config.config_class)
    if fields is None:
        yield make_finding(rule, config.config_module, 1,
                           f"class {config.config_class} not found in "
                           f"{config.config_module}")
        return

    keys_tree = _parse(keys_path)
    if keys_tree is None:
        yield make_finding(rule, config.keys_module, 1,
                           f"cannot parse keys module {config.keys_module} "
                           "for the cache-key schema cross-check")
        return
    known = string_tuple(keys_tree, KNOWN_NAME)
    excluded = string_tuple(keys_tree, EXCLUDED_NAME)
    if known is None or excluded is None:
        missing = KNOWN_NAME if known is None else EXCLUDED_NAME
        yield make_finding(rule, config.keys_module, 1,
                           f"{config.keys_module} does not declare {missing}; "
                           "the cache-key field inventory is unenforceable")
        return
    known_names, known_line = known
    excluded_names, excluded_line = excluded

    for name, line in sorted(fields.items()):
        if name not in known_names and name not in excluded_names:
            yield make_finding(
                rule, config.config_module, line,
                f"{config.config_class} field {name!r} is not accounted for "
                f"in sweep cache keys: add it to {KNOWN_NAME} (and bump "
                f"CACHE_SCHEMA_VERSION) or to {EXCLUDED_NAME} in "
                f"{config.keys_module}",
            )
    for name in known_names:
        if name not in fields:
            yield make_finding(
                rule, config.keys_module, known_line,
                f"{KNOWN_NAME} lists {name!r}, which is not a "
                f"{config.config_class} field; remove the stale entry",
            )
    for name in excluded_names:
        if name not in fields:
            yield make_finding(
                rule, config.keys_module, excluded_line,
                f"{EXCLUDED_NAME} lists {name!r}, which is not a "
                f"{config.config_class} field; remove the stale entry",
            )
    for name in sorted(set(known_names) & set(excluded_names)):
        yield make_finding(
            rule, config.keys_module, excluded_line,
            f"{name!r} appears in both {KNOWN_NAME} and {EXCLUDED_NAME}; "
            "a field is either key-relevant or excluded, not both",
        )
