"""RPR002: hot-kernel classes must stay slotted.

The fast kernel's whole speedup rests on allocation-lean objects; a
``__dict__`` silently reappearing on one event class costs double-digit
percent throughput without failing any functional test (both kernels
still agree bit-for-bit).  Classes defined in the configured hot-path
modules must therefore declare ``__slots__`` — including subclasses,
where an inherited ``__slots__`` does *not* prevent the subclass from
growing a ``__dict__``; an empty ``__slots__ = ()`` is the correct
spelling for "no new attributes".
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    ModuleInfo,
    get_rule,
    make_finding,
    path_matches,
    register,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig

RULE_ID = "RPR002"


def _declares_slots(class_def: ast.ClassDef) -> bool:
    for statement in class_def.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_exempt(class_def: ast.ClassDef) -> bool:
    """Enums and dataclass-decorated classes manage layout themselves."""
    for base in class_def.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name in ("Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"):
            return True
    for decorator in class_def.decorator_list:
        node = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


@register(
    RULE_ID,
    name="hot-path-slots",
    severity=Severity.ERROR,
    rationale=(
        "The fast kernel's performance contract depends on slotted, "
        "__dict__-free event/process objects; losing __slots__ regresses "
        "throughput without failing any correctness test."
    ),
)
def check_slots(module: ModuleInfo, config: "LintConfig") -> Iterator[Finding]:
    if not path_matches(module.package_path, config.slots_modules):
        return
    rule = get_rule(RULE_ID)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _is_exempt(node) or _declares_slots(node):
            continue
        yield make_finding(
            rule,
            module.relpath,
            node,
            f"class {node.name} in a hot-path module must declare "
            "__slots__ (use __slots__ = () when it adds no attributes)",
        )
