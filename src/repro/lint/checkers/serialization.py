"""RPR004: ``to_dict`` without a faithful ``from_dict`` is a round-trip hazard.

Sweep caching, campaign resumption, bench baselines, and fault-plan
files all rest on serialize/deserialize symmetry: a type that can write
itself but not read itself back (or that reads back only some of what
it wrote) strands cached results the moment someone relies on the
missing direction.  The rule requires:

* every class defining ``to_dict`` also defines ``from_dict``;
* an *explicit* ``from_dict`` (one that names keys) references every
  literal key ``to_dict`` writes — a key written but never read back is
  either dead weight or, worse, silently dropped state.

Generic inverses — ``cls(**data)``, comprehension-based filters over
``data.items()`` — are accepted as referencing everything; the per-key
check applies only when ``from_dict`` spells keys out.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleInfo, get_rule, make_finding, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig

RULE_ID = "RPR004"


def _function(class_def: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for statement in class_def.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def literal_keys(function: ast.FunctionDef) -> set[str]:
    """String keys the function writes: dict-literal keys and
    ``data["key"] = ...`` subscript stores."""
    keys: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                keys.add(index.value)
    return keys


def _is_generic(function: ast.FunctionDef) -> bool:
    """Does the inverse consume its payload wholesale?

    True for ``cls(**kwargs)`` spellings, comprehensions over
    ``data.items()``-style views, and delegation to a shared helper
    that receives ``cls`` (e.g. ``_from_known_keys(cls, data)``).
    """
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            if any(keyword.arg is None for keyword in node.keywords):
                return True  # cls(**kwargs)-style
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("items", "keys", "values", "update")
            ):
                return True
            if any(
                isinstance(argument, ast.Name) and argument.id == "cls"
                for argument in node.args
            ):
                return True  # _from_known_keys(cls, data)-style delegation
    return False


def _referenced_strings(function: ast.FunctionDef) -> set[str]:
    return {
        node.value
        for node in ast.walk(function)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@register(
    RULE_ID,
    name="serialization-symmetry",
    severity=Severity.ERROR,
    rationale=(
        "Cached sweep results, campaign manifests, and bench baselines "
        "must round-trip: a to_dict with no faithful from_dict strands "
        "persisted state."
    ),
)
def check_serialization(
    module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    del config
    rule = get_rule(RULE_ID)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        to_dict = _function(node, "to_dict")
        if to_dict is None:
            continue
        from_dict = _function(node, "from_dict")
        if from_dict is None:
            yield make_finding(
                rule, module.relpath, node,
                f"class {node.name} defines to_dict but no from_dict; "
                "serialized state cannot round-trip",
            )
            continue
        if _is_generic(from_dict):
            continue
        written = literal_keys(to_dict)
        read = _referenced_strings(from_dict)
        for key in sorted(written - read):
            yield make_finding(
                rule, module.relpath, from_dict,
                f"{node.name}.from_dict never references to_dict key "
                f"{key!r}; the round-trip silently drops it",
            )
