"""RPR009: the pre-RunContext override setters are retired, not API.

``repro.core.simulator`` once kept six deprecated names alive as
delegating shims — ``set_simulation_backend``/``simulation_backend``,
``set_fault_plan_override``/``fault_plan_override``, and
``set_kernel_override``/``kernel_override``.  The shims have since been
deleted: :class:`repro.api.RunContext` / :func:`repro.api.configure`
are the only ambient-override surface.  This rule keeps the names dead
*everywhere* — there is no shim module left to carve out, so a
reference anywhere in the repo (including ``repro/core/simulator.py``
itself) would be a regression reintroducing split ambient state.

Flagged in every linted module:

* ``from repro.core.simulator import <retired name>`` (any alias);
* attribute calls spelling a retired name, e.g.
  ``simulator.kernel_override(...)``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleInfo, get_rule, make_finding, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig

RULE_ID = "RPR009"

#: The six retired names and the RunContext spelling replacing each.
DEPRECATED_OVERRIDES: dict[str, str] = {
    "set_simulation_backend": "configure(backend=...)",
    "simulation_backend": "configure(backend=...)",
    "set_fault_plan_override": "configure(fault_plan=...)",
    "fault_plan_override": "configure(fault_plan=...)",
    "set_kernel_override": "configure(kernel=...)",
    "kernel_override": "configure(kernel=...)",
}


def _message(name: str) -> str:
    return (
        f"retired override shim {name}() no longer exists; use "
        f"repro.api.{DEPRECATED_OVERRIDES[name]} instead"
    )


@register(
    RULE_ID,
    name="deprecated-overrides",
    severity=Severity.ERROR,
    rationale=(
        "The legacy per-option override setters were removed in favour "
        "of repro.api.RunContext; reintroducing any of them (or calling "
        "one) would split ambient state across two surfaces again."
    ),
)
def check_deprecated_overrides(
    module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    del config  # project-wide: the retired names are banned everywhere
    rule = get_rule(RULE_ID)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module != "repro.core.simulator":
                continue
            for alias in node.names:
                if alias.name in DEPRECATED_OVERRIDES:
                    yield make_finding(
                        rule, module.relpath, node, _message(alias.name)
                    )
        elif isinstance(node, ast.Attribute):
            if node.attr in DEPRECATED_OVERRIDES:
                yield make_finding(
                    rule, module.relpath, node, _message(node.attr)
                )
