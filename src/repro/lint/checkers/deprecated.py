"""RPR009: the pre-RunContext override setters are shims, not API.

``repro.core.simulator`` keeps six deprecated names alive for external
callers — ``set_simulation_backend``/``simulation_backend``,
``set_fault_plan_override``/``fault_plan_override``, and
``set_kernel_override``/``kernel_override`` — each a thin delegating
wrapper that warns and forwards to :mod:`repro.api`.  In-repo code must
use :class:`repro.api.RunContext` / :func:`repro.api.configure`
directly: a shim call inside the repo hides the deprecation warning
behind our own stack frames and keeps dead API load-bearing forever.

Flagged outside the configured shim module(s):

* ``from repro.core.simulator import <deprecated name>`` (any alias);
* attribute calls spelling a deprecated name, e.g.
  ``simulator.kernel_override(...)``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    ModuleInfo,
    get_rule,
    make_finding,
    path_matches,
    register,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig

RULE_ID = "RPR009"

#: The six shim names and the RunContext spelling that replaces each.
DEPRECATED_OVERRIDES: dict[str, str] = {
    "set_simulation_backend": "configure(backend=...)",
    "simulation_backend": "configure(backend=...)",
    "set_fault_plan_override": "configure(fault_plan=...)",
    "fault_plan_override": "configure(fault_plan=...)",
    "set_kernel_override": "configure(kernel=...)",
    "kernel_override": "configure(kernel=...)",
}


def _message(name: str) -> str:
    return (
        f"deprecated override shim {name}() must not be used inside the "
        f"repo; use repro.api.{DEPRECATED_OVERRIDES[name]} instead"
    )


@register(
    RULE_ID,
    name="deprecated-overrides",
    severity=Severity.ERROR,
    rationale=(
        "The legacy per-option override setters survive only as "
        "deprecated shims for external callers; in-repo use would keep "
        "them load-bearing and silence their DeprecationWarning behind "
        "our own frames."
    ),
)
def check_deprecated_overrides(
    module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    if path_matches(module.package_path, config.override_shim_allowed):
        return
    rule = get_rule(RULE_ID)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module != "repro.core.simulator":
                continue
            for alias in node.names:
                if alias.name in DEPRECATED_OVERRIDES:
                    yield make_finding(
                        rule, module.relpath, node, _message(alias.name)
                    )
        elif isinstance(node, ast.Attribute):
            if node.attr in DEPRECATED_OVERRIDES:
                yield make_finding(
                    rule, module.relpath, node, _message(node.attr)
                )
