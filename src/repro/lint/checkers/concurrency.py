"""RPR011/RPR012/RPR013: async- and thread-safety across file boundaries.

The serve, dist, and realio subsystems turned the repo into a
concurrent system: an asyncio front door, an event-loop coordinator
with threaded pull workers, and one reader thread per simulated disk.
These rules run against the pass-1 :class:`ProjectModel` so a hazard
hidden behind a helper call two modules away is still caught.

**RPR011 blocking-in-async** — inside the configured async packages,
an ``async def`` body must not reach blocking I/O on the event loop:
``time.sleep``, ``open()``/``os.fdopen``/``tempfile``, ``socket.*``,
``subprocess.*``, ``Path.read_text``-style helpers, or the
``executor.submit(...).result()`` join.  The call index is followed
transitively through *sync* callees (an ``await`` of another coroutine
is not blocking, so resolution stops at async boundaries); the finding
lands on the call line inside the coroutine with the full chain to the
sink in the message.

**RPR012 lock discipline** — in the configured threaded packages, an
attribute mutated by thread-entry code (a ``threading.Thread`` target,
an executor submission, a done-callback — or anything they reach
through the call index) is shared state.  Every mutation of a shared
attribute must sit under a ``with self._lock:``-style context (any
attribute holding a ``threading.Lock``/``RLock``/``Condition``, or
whose name contains ``lock``) or carry an explicit
``# repro-lint: shared-state=<why>`` annotation on the mutation line
or on the attribute's ``__init__`` assignment.

**RPR013 unawaited coroutine** — a bare-statement call to a known
``async def`` creates a coroutine that never runs; a bare
``create_task(...)`` whose handle is dropped cannot be joined,
cancelled, or error-checked.  Results must be awaited or bound.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.project import dotted_name
from repro.lint.registry import get_rule, make_finding, path_matches, register

if TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

    from repro.lint.config import LintConfig
    from repro.lint.project import (
        ClassInfo,
        FunctionInfo,
        ModuleModel,
        ProjectModel,
    )

BLOCKING_RULE = "RPR011"
LOCK_RULE = "RPR012"
UNAWAITED_RULE = "RPR013"

#: Canonical dotted calls that block the calling thread.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "open",
    "os.fdopen",
    "os.replace",
    "tempfile.mkstemp",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory",
    "socket.create_connection",
    "socket.socket",
})

#: Any call into these modules blocks (process and socket I/O).
_BLOCKING_MODULES = frozenset({"subprocess", "socket"})

#: Method names that are sync file I/O on pathlib-style objects.
_BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popleft", "appendleft",
    "add", "discard", "clear", "update", "setdefault",
})

_SHARED_STATE_MARK = "# repro-lint: shared-state="


def _canonical(callee: str, module: "ModuleModel") -> str:
    """Rewrite a call target through the module's import table.

    ``sleep`` (after ``from time import sleep``) becomes ``time.sleep``;
    ``t.sleep`` (after ``import time as t``) becomes ``time.sleep``.
    """
    head, dot, rest = callee.partition(".")
    target = module.name_table.get(head)
    if target is None:
        return callee
    return target + dot + rest if rest else target


def _own_statements(node: ast.AST):
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _direct_sinks(
    fn: "FunctionInfo", module: "ModuleModel"
) -> list[tuple[str, int]]:
    """Blocking calls made directly inside ``fn``: (description, line)."""
    sinks: list[tuple[str, int]] = []
    for call in fn.calls:
        canonical = _canonical(call.callee, module)
        parts = canonical.split(".")
        if canonical in _BLOCKING_CALLS:
            sinks.append((f"{canonical}()", call.line))
        elif parts[0] in _BLOCKING_MODULES and len(parts) > 1:
            sinks.append((f"{canonical}()", call.line))
        elif len(parts) > 1 and parts[-1] in _BLOCKING_METHODS:
            sinks.append((f".{parts[-1]}()", call.line))
    # ``executor.submit(...).result()`` — a synchronous join on a
    # future, invisible to the dotted-call index (the receiver is a
    # call, not a name chain).
    for node in _own_statements(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "result"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Attribute)
            and node.func.value.func.attr == "submit"
        ):
            sinks.append((".submit(...).result()", node.lineno))
    sinks.sort(key=lambda item: item[1])
    return sinks


def _resolve_callable(
    model: "ProjectModel", context: "FunctionInfo", dotted: str
) -> Optional["FunctionInfo"]:
    """Like ``resolve_function`` but aware of nested definitions."""
    if "." not in dotted:
        module = model.modules.get(context.module)
        if module is not None:
            nested = module.functions.get(f"{context.qualname}.{dotted}")
            if nested is not None:
                return nested
    return model.resolve_function(context, dotted)


# -- RPR011 --------------------------------------------------------------------


@register(
    BLOCKING_RULE,
    name="blocking-in-async",
    severity=Severity.ERROR,
    rationale=(
        "One blocking call on the event loop stalls every in-flight "
        "request: admission control, heartbeats, and coalescing all "
        "assume the loop never waits on a syscall."
    ),
    scope="model",
)
def check_blocking_in_async(
    model: "ProjectModel", config: "LintConfig", root: "Path"
) -> Iterator[Finding]:
    rule = get_rule(BLOCKING_RULE)
    for fn in sorted(
        model.functions(), key=lambda f: (f.module, f.qualname)
    ):
        if not fn.is_async:
            continue
        module = model.modules[fn.module]
        if not path_matches(
            module.info.package_path, config.async_blocking_modules
        ):
            continue

        # Direct sinks in the coroutine body itself.
        reported: set[tuple[str, str]] = set()
        for sink, line in _direct_sinks(fn, module):
            key = (fn.qualname, sink)
            if key in reported:
                continue
            reported.add(key)
            yield make_finding(
                rule, module.info.relpath, line,
                f"blocking call {sink} inside async def {fn.qualname}; "
                "move it off the event loop (await "
                "loop.run_in_executor(...))",
            )

        # Transitive sinks through sync callees (BFS = shortest chain).
        visited: set[tuple[str, str]] = {(fn.module, fn.qualname)}
        frontier: list[tuple["FunctionInfo", list[str], int]] = []
        for call in fn.calls:
            callee = _resolve_callable(model, fn, call.callee)
            if callee is None or callee.is_async:
                continue
            key = (callee.module, callee.qualname)
            if key in visited:
                continue
            visited.add(key)
            frontier.append((callee, [fn.qualname, callee.qualname],
                             call.line))
        while frontier:
            next_frontier: list[tuple["FunctionInfo", list[str], int]] = []
            for callee, chain, entry_line in frontier:
                callee_module = model.modules[callee.module]
                sinks = _direct_sinks(callee, callee_module)
                if sinks:
                    # One finding per (coroutine, sink function): the
                    # fix is moving the whole chain off the loop, not
                    # patching individual syscalls.
                    sink, sink_line = sinks[0]
                    key = (f"{callee.module}.{callee.qualname}", "*")
                    if key not in reported:
                        reported.add(key)
                        yield make_finding(
                            rule, module.info.relpath, entry_line,
                            f"async def {fn.qualname} reaches blocking "
                            f"{sink} via {' -> '.join(chain)} "
                            f"({callee.module}:{sink_line}); move the "
                            "sync chain off the event loop "
                            "(await loop.run_in_executor(...))",
                        )
                if len(chain) >= 8:  # bound pathological call depths
                    continue
                for call in callee.calls:
                    nxt = _resolve_callable(model, callee, call.callee)
                    if nxt is None or nxt.is_async:
                        continue
                    key = (nxt.module, nxt.qualname)
                    if key in visited:
                        continue
                    visited.add(key)
                    next_frontier.append(
                        (nxt, chain + [nxt.qualname], entry_line)
                    )
            frontier = next_frontier


# -- RPR012 --------------------------------------------------------------------


def _callable_args(call: ast.Call, canonical: str) -> list[ast.expr]:
    """Expressions passed as thread-entry callables in ``call``."""
    parts = canonical.split(".")
    tail = parts[-1]
    out: list[ast.expr] = []
    if tail == "Thread" and parts[0] == "threading":
        for keyword in call.keywords:
            if keyword.arg == "target":
                out.append(keyword.value)
    elif tail == "submit" and call.args:
        out.append(call.args[0])
    elif tail == "run_in_executor" and len(call.args) >= 2:
        out.append(call.args[1])
    elif tail == "add_done_callback" and call.args:
        out.append(call.args[0])
    return out


def _thread_entries(
    model: "ProjectModel", config: "LintConfig"
) -> dict[tuple[str, str], str]:
    """(module, qualname) -> how it becomes a thread entry."""
    entries: dict[tuple[str, str], str] = {}
    for fn in model.functions():
        module = model.modules[fn.module]
        for call in fn.calls:
            canonical = _canonical(call.callee, module)
            for expr in _callable_args(call.node, canonical):
                dotted = dotted_name(expr)
                if dotted is None:
                    continue
                target = _resolve_callable(model, fn, dotted)
                if target is None:
                    continue
                entries.setdefault(
                    (target.module, target.qualname),
                    f"{canonical.rpartition('.')[2]} in "
                    f"{fn.module}.{fn.qualname}",
                )
    return entries


def _reachable(
    model: "ProjectModel", entries: dict[tuple[str, str], str]
) -> dict[tuple[str, str], str]:
    """Everything the thread entries reach through resolvable calls."""
    reached = dict(entries)
    frontier = list(entries)
    while frontier:
        module_name, qualname = frontier.pop()
        module = model.modules.get(module_name)
        if module is None:
            continue
        fn = module.functions.get(qualname)
        if fn is None:
            continue
        origin = reached[(module_name, qualname)]
        for call in fn.calls:
            callee = _resolve_callable(model, fn, call.callee)
            if callee is None:
                continue
            key = (callee.module, callee.qualname)
            if key not in reached:
                reached[key] = origin
                frontier.append(key)
    return reached


def _self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` for ``self.attr`` or ``self.attr[...]`` targets."""
    if isinstance(node, ast.Subscript):
        return _self_attr(node.value)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_attr(attr: str, cls: "ClassInfo") -> bool:
    return attr in cls.lock_attrs or "lock" in attr.lower()


def _mutations(
    fn: "FunctionInfo", cls: "ClassInfo"
) -> list[tuple[str, int, bool]]:
    """(attr, line, lock_held) for every self-attribute mutation in fn."""
    out: list[tuple[str, int, bool]] = []

    def walk(node: ast.AST, lock_depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            depth = lock_depth
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    attr = _self_attr(expr)
                    if attr is not None and _is_lock_attr(attr, cls):
                        depth += 1
                        break
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        out.append((attr, child.lineno, depth > 0))
            elif isinstance(child, ast.AugAssign):
                attr = _self_attr(child.target)
                if attr is not None:
                    out.append((attr, child.lineno, depth > 0))
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _MUTATOR_METHODS
            ):
                attr = _self_attr(child.func.value)
                if attr is not None:
                    out.append((attr, child.lineno, depth > 0))
            walk(child, depth)

    walk(fn.node, 0)
    return out


def _annotated(source_lines: list[str], line: int) -> bool:
    if 1 <= line <= len(source_lines):
        return _SHARED_STATE_MARK in source_lines[line - 1]
    return False


@register(
    LOCK_RULE,
    name="lock-discipline",
    severity=Severity.ERROR,
    rationale=(
        "The realio reader threads, dist workers, and serve executor "
        "all mutate state owned by another thread; an unlocked write "
        "is a data race the deterministic test suite cannot surface."
    ),
    scope="model",
)
def check_lock_discipline(
    model: "ProjectModel", config: "LintConfig", root: "Path"
) -> Iterator[Finding]:
    rule = get_rule(LOCK_RULE)
    entries = _thread_entries(model, config)
    if not entries:
        return
    reached = _reachable(model, entries)

    # Shared attributes: (module, class) -> attr -> origin description.
    shared: dict[tuple[str, str], dict[str, str]] = {}
    for (module_name, qualname), origin in reached.items():
        module = model.modules[module_name]
        if not path_matches(
            module.info.package_path, config.lock_discipline_modules
        ):
            continue
        fn = module.functions[qualname]
        if fn.class_name is None or fn.name in ("__init__", "__post_init__"):
            continue
        cls = module.classes.get(fn.class_name)
        if cls is None:
            continue
        for attr, _line, _held in _mutations(fn, cls):
            if _is_lock_attr(attr, cls):
                continue
            shared.setdefault((module_name, cls.name), {}).setdefault(
                attr, origin
            )

    # Every mutation of a shared attribute, from any thread, must be
    # locked or annotated.
    seen: set[tuple[str, int, str]] = set()
    for (module_name, class_name), attrs in sorted(shared.items()):
        module = model.modules[module_name]
        cls = module.classes[class_name]
        source_lines = module.info.source.splitlines()
        for fn in sorted(
            module.functions.values(), key=lambda f: f.qualname
        ):
            if fn.class_name != class_name:
                continue
            if fn.name in ("__init__", "__post_init__"):
                continue
            for attr, line, held in _mutations(fn, cls):
                if attr not in attrs or held:
                    continue
                if _annotated(source_lines, line):
                    continue
                init_line = cls.attr_lines.get(attr)
                if init_line is not None and _annotated(
                    source_lines, init_line
                ):
                    continue
                key = (module_name, line, attr)
                if key in seen:
                    continue
                seen.add(key)
                yield make_finding(
                    rule, module.info.relpath, line,
                    f"unlocked write to shared attribute self.{attr} in "
                    f"{class_name}.{fn.name} (thread-entry via "
                    f"{attrs[attr]}); guard it with the owning lock or "
                    f"annotate '{_SHARED_STATE_MARK}<why>'",
                )


# -- RPR013 --------------------------------------------------------------------


@register(
    UNAWAITED_RULE,
    name="unawaited-coroutine",
    severity=Severity.ERROR,
    rationale=(
        "A dropped coroutine silently never runs and a dropped task "
        "handle cannot be joined, cancelled, or error-checked — both "
        "turn request handling into fire-and-forget."
    ),
    scope="model",
)
def check_unawaited(
    model: "ProjectModel", config: "LintConfig", root: "Path"
) -> Iterator[Finding]:
    rule = get_rule(UNAWAITED_RULE)
    for fn in sorted(
        model.functions(), key=lambda f: (f.module, f.qualname)
    ):
        module = model.modules[fn.module]
        if not path_matches(
            module.info.package_path, config.async_blocking_modules
        ):
            continue
        for node in _own_statements(fn.node):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            dotted = dotted_name(call.func)
            if dotted is None:
                continue
            if dotted.rpartition(".")[2] == "create_task":
                yield make_finding(
                    rule, module.info.relpath, node.lineno,
                    f"fire-and-forget task in {fn.qualname}: bind the "
                    "handle from create_task(...) so it can be awaited, "
                    "cancelled, and error-checked",
                )
                continue
            target = _resolve_callable(model, fn, dotted)
            if target is not None and target.is_async:
                yield make_finding(
                    rule, module.info.relpath, node.lineno,
                    f"coroutine {target.qualname}() is neither awaited "
                    f"nor bound in {fn.qualname}; the call never runs",
                )
