"""RPR001: simulation code must be bit-replayable from ``(seed, config)``.

The reproduction's headline guarantee — identical metrics across
kernels, fault plans, sweep workers, and machines — dies the moment any
simulation module reads a wall clock, pulls OS entropy, or draws from
the process-global RNG.  All randomness must flow through a named
:mod:`repro.sim.random_streams` stream (a seeded ``random.Random``
passed in explicitly); time exists only as simulated virtual time.

Flagged inside the configured determinism modules:

* module-level ``random.*`` calls (``random.random()``, ``choice`` ...)
  and ``from random import <function>`` imports;
* unseeded ``random.Random()`` / any ``random.SystemRandom`` use;
* wall clocks: ``time.time/&_ns``, ``perf_counter``, ``monotonic``,
  ``process_time`` and their ``from time import ...`` forms;
* ``datetime.now/utcnow/today`` and ``date.today``;
* OS entropy: ``os.urandom``, ``os.getrandom``, any ``secrets.*``,
  ``uuid.uuid1``/``uuid.uuid4``;
* ``numpy.random`` in any spelling.

Seeded ``random.Random(seed)`` construction and ``random.Random`` type
annotations are allowed — they are exactly how streams are built and
passed around.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    ModuleInfo,
    get_rule,
    make_finding,
    path_matches,
    register,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig

RULE_ID = "RPR001"

#: ``from <module> import <name>`` pairs that leak non-determinism.
_BANNED_IMPORTS: dict[str, frozenset[str]] = {
    "random": frozenset({
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "gammavariate", "lognormvariate", "paretovariate",
        "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
        "randbytes", "seed", "SystemRandom",
    }),
    "time": frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns",
    }),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}

#: Fully dotted calls that read a wall clock.
_WALL_CLOCK_CALLS = frozenset(
    f"time.{name}" for name in _BANNED_IMPORTS["time"]
)

#: Attribute calls like ``datetime.now()`` / ``datetime.datetime.now()``.
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})
_DATETIME_ROOTS = frozenset({"datetime", "date"})


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: list[Finding] = []
        #: local aliases of the numpy package (``import numpy as np``).
        self.numpy_aliases: set[str] = set()
        rule = get_rule(RULE_ID)
        self._flag = lambda node, message: self.findings.append(
            make_finding(rule, module.relpath, node, message)
        )

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self.numpy_aliases.add(alias.asname or alias.name.split(".")[0])
                if alias.name.startswith("numpy.random"):
                    self._flag(node, "import of numpy.random in a simulation "
                               "module; draw from a named "
                               "repro.sim.random_streams stream instead")
            if alias.name == "secrets":
                self._flag(node, "import of secrets (OS entropy) in a "
                           "simulation module; randomness must come from a "
                           "named repro.sim.random_streams stream")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        banned = _BANNED_IMPORTS.get(node.module or "")
        if banned:
            for alias in node.names:
                if alias.name in banned:
                    self._flag(node, f"from {node.module} import {alias.name} "
                               "in a simulation module; use a named "
                               "repro.sim.random_streams stream (randomness) "
                               "or simulated virtual time (clocks)")
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._flag(node, "import of numpy.random in a simulation "
                               "module; draw from a named "
                               "repro.sim.random_streams stream instead")
        if node.module == "secrets":
            self._flag(node, "import from secrets (OS entropy) in a "
                       "simulation module; randomness must come from a "
                       "named repro.sim.random_streams stream")
        self.generic_visit(node)

    # -- calls and attribute access ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if dotted == "random.Random":
            if not node.args and not node.keywords:
                self._flag(node, "unseeded random.Random() in a simulation "
                           "module seeds from OS entropy; derive the seed "
                           "from a repro.sim.random_streams stream")
            return
        if parts[0] == "random" and len(parts) > 1:
            if parts[-1] == "SystemRandom":
                self._flag(node, "random.SystemRandom() draws OS entropy; "
                           "use a seeded repro.sim.random_streams stream")
            else:
                self._flag(node, f"module-level random.{parts[-1]}() call in "
                           "a simulation module mutates global RNG state; "
                           "draw from a named repro.sim.random_streams "
                           "stream")
            return
        if dotted in _WALL_CLOCK_CALLS:
            self._flag(node, f"wall-clock {dotted}() call in a simulation "
                       "module; simulation code must use virtual time only")
            return
        if dotted in ("os.urandom", "os.getrandom"):
            self._flag(node, f"OS entropy {dotted}() call in a simulation "
                       "module; derive randomness from a named "
                       "repro.sim.random_streams stream")
            return
        if parts[0] == "secrets":
            self._flag(node, f"OS entropy {dotted}() call in a simulation "
                       "module; derive randomness from a named "
                       "repro.sim.random_streams stream")
            return
        if dotted in ("uuid.uuid1", "uuid.uuid4"):
            self._flag(node, f"{dotted}() is non-deterministic; derive ids "
                       "from the configuration and seed instead")
            return
        if (
            len(parts) >= 2
            and parts[-1] in _DATETIME_METHODS
            and parts[-2] in _DATETIME_ROOTS
        ):
            self._flag(node, f"wall-clock {dotted}() call in a simulation "
                       "module; simulation code must use virtual time only")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # numpy.random in any alias spelling, used as value or called.
        if (
            node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.numpy_aliases
        ):
            self._flag(node, "use of numpy.random in a simulation module; "
                       "draw from a named repro.sim.random_streams stream "
                       "instead")
        self.generic_visit(node)


@register(
    RULE_ID,
    name="determinism",
    severity=Severity.ERROR,
    rationale=(
        "Bit-identical replay across kernels, fault plans, and sweep "
        "workers requires every random draw to come from a named, seeded "
        "random_streams stream and time to be purely virtual."
    ),
)
def check_determinism(
    module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    if not path_matches(module.package_path, config.determinism_modules):
        return
    # Exemptions: the blessed randomness module plus the declared
    # wall-clock seams (one sanctioned clock boundary per package).
    exempt = list(config.determinism_exempt) + list(config.wall_clock_seams)
    if path_matches(module.package_path, exempt):
        return
    visitor = _DeterminismVisitor(module)
    visitor.visit(module.tree)
    yield from visitor.findings
