"""RPR010: the declared layer DAG is law — no upward or cyclic imports.

The repo is layered so the simulation stays a leaf dependency of
everything operational (the paper's numbers must never depend on how
they are served):

    model (core/sim/disks/workloads/faults/...)  <- imported by
    engine (sweep/analysis)                      <- imported by
    services (serve/dist/realio/bench)           <- imported by
    cli

``[tool.repro-lint.layers]`` in pyproject maps layer names to module
prefixes and ``layer-order`` ranks them lowest-to-highest.  A module
may import its own layer or any lower one.  Two things are findings:

* an **upward import** — a lower-layer module importing a higher-layer
  one, reported at the import line with both endpoints and layers;
* an **import cycle** — any strongly connected component in the
  top-level import graph, reported once with the full cycle chain.

Only runtime imports count: ``if TYPE_CHECKING:`` blocks are erased at
runtime and function-scoped imports are the sanctioned way to break a
genuine cycle, so both are ignored.  Modules matching no declared
layer are skipped (scripts, tests, fixtures).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.registry import get_rule, make_finding, path_matches, register

if TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

    from repro.lint.config import LintConfig
    from repro.lint.project import ProjectModel

RULE_ID = "RPR010"


def layer_of(package_path: str, config: "LintConfig") -> Optional[str]:
    """The declared layer a module belongs to, or ``None``."""
    for layer, prefixes in config.layers.items():
        if path_matches(package_path, prefixes):
            return layer
    return None


def _find_cycle(graph: dict[str, set[str]], component: set[str]) -> list[str]:
    """A concrete cycle path through one strongly connected component."""
    start = min(component)
    path = [start]
    on_path = {start}
    while True:
        current = path[-1]
        successors = sorted(
            node for node in graph.get(current, ()) if node in component
        )
        nxt = successors[0]  # an SCC node always has a successor inside it
        if nxt in on_path:
            return path[path.index(nxt):] + [nxt]
        path.append(nxt)
        on_path.add(nxt)


def _strongly_connected(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC algorithm, iterative, deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[set[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Optional[str], list[str]]] = [
            (root, None, sorted(graph.get(root, ())))
        ]
        while work:
            node, parent, children = work[-1]
            if node not in index:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            while children:
                child = children.pop(0)
                if child not in index:
                    work.append((child, node, sorted(graph.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if parent is not None:
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


@register(
    RULE_ID,
    name="layering",
    severity=Severity.ERROR,
    rationale=(
        "The simulation must stay a leaf dependency of everything "
        "operational: an upward or cyclic import lets serving, "
        "distribution, or CLI concerns leak into the layer that "
        "produces the paper's numbers."
    ),
    scope="model",
)
def check_layering(
    model: "ProjectModel", config: "LintConfig", root: "Path"
) -> Iterator[Finding]:
    rule = get_rule(RULE_ID)
    if not config.layers or not config.layer_order:
        return

    declared = set(config.layers)
    ordered = set(config.layer_order)
    if declared != ordered:
        missing = sorted(declared ^ ordered)
        yield make_finding(
            rule, "pyproject.toml", 1,
            "layer declaration mismatch: [tool.repro-lint.layers] and "
            f"layer-order must name the same layers (differ on: "
            f"{', '.join(missing)})",
        )
        return
    rank = {layer: index for index, layer in enumerate(config.layer_order)}

    # -- upward imports --------------------------------------------------------
    for name in sorted(model.modules):
        module = model.modules[name]
        importer_layer = layer_of(module.info.package_path, config)
        if importer_layer is None:
            continue
        for edge in module.imports:
            if not edge.top_level:
                continue
            imported = model.modules.get(edge.imported)
            if imported is None:
                continue
            imported_layer = layer_of(imported.info.package_path, config)
            if imported_layer is None:
                continue
            if rank[importer_layer] < rank[imported_layer]:
                yield make_finding(
                    rule, module.info.relpath, edge.line,
                    f"upward import: {module.name} (layer "
                    f"{importer_layer!r}) imports {edge.imported} (layer "
                    f"{imported_layer!r}); chain: {module.name} "
                    f"[{importer_layer}] -> {edge.imported} "
                    f"[{imported_layer}], against layer order "
                    f"{' < '.join(config.layer_order)}",
                )

    # -- cycles ----------------------------------------------------------------
    graph = model.import_graph()
    for component in _strongly_connected(graph):
        if len(component) < 2:
            # A single node is a cycle only if it imports itself, which
            # the graph construction already excludes.
            continue
        cycle = _find_cycle(graph, component)
        anchor = model.modules[cycle[0]]
        line = 1
        for edge in anchor.imports:
            if edge.top_level and edge.imported == cycle[1]:
                line = edge.line
                break
        yield make_finding(
            rule, anchor.info.relpath, line,
            "import cycle: " + " -> ".join(cycle),
        )
