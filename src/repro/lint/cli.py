"""The ``repro lint`` subcommand implementation.

Exit codes: ``0`` no new findings (grandfathered ones may remain),
``1`` new findings, ``2`` configuration or usage errors.  The parent
CLI (:mod:`repro.cli`) registers the arguments via
:func:`add_lint_arguments` and dispatches here.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.config import find_project_root, load_config
from repro.lint.engine import LintEngine
from repro.lint.reporters import (
    RunOutcome,
    render_dot,
    render_json,
    render_sarif,
    render_stats,
    render_text,
)


def add_lint_arguments(parser) -> None:
    """Attach the ``repro lint`` arguments to an argparse subparser."""
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths, i.e. src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (json is the CI artifact format, sarif the "
        "code-scanning upload format)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of grandfathered findings (default: "
        "[tool.repro-lint] baseline, i.e. lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather all current findings into the baseline file "
        "(keeps existing reasons; new entries get a TODO reason to "
        "justify in review) and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries that no longer match any finding "
        "(paid-down debt) and rewrite the file; exits 0",
    )
    parser.add_argument(
        "--graph", choices=("dot",), default=None,
        help="instead of linting, print the pass-1 import graph "
        "collapsed to the configured layers (Graphviz source)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="append a summary (findings per rule, files scanned, "
        "elapsed time)",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root (default: nearest ancestor of the current "
        "directory containing pyproject.toml)",
    )


def run_lint(args) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns the exit code."""
    out = sys.stdout
    root = (
        Path(args.root).resolve()
        if args.root is not None
        else find_project_root(Path.cwd())
    )
    try:
        config = load_config(root)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    engine = LintEngine(config, root)
    try:
        if args.graph:
            print(render_dot(engine.build_model(args.paths or None), config),
                  file=out)
            return 0
        report = engine.run(args.paths or None)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = root / (args.baseline or config.baseline)
    if args.write_baseline:
        try:
            previous = Baseline.load(baseline_path)
        except ValueError:
            previous = Baseline()
        baseline = Baseline.from_findings(report.findings, previous)
        baseline.write(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(baseline.entries)} entr(y/ies)); review any "
            "TODO reasons",
            file=out,
        )
        if args.stats:
            print(render_stats(report), file=out)
        return 0

    if args.prune_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _, _, stale = baseline.split(report.findings)
        stale_fingerprints = {entry.fingerprint for entry in stale}
        baseline.entries = [
            entry for entry in baseline.entries
            if entry.fingerprint not in stale_fingerprints
        ]
        baseline.write(baseline_path)
        print(
            f"baseline pruned: {len(stale)} stale entr(y/ies) removed, "
            f"{len(baseline.entries)} kept in {baseline_path}",
            file=out,
        )
        return 0

    if args.no_baseline:
        new, grandfathered, stale = report.findings, [], []
        shown_baseline = None
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        new, grandfathered, stale = baseline.split(report.findings)
        shown_baseline = (
            str(baseline_path.relative_to(root))
            if baseline_path.is_file()
            else None
        )

    outcome = RunOutcome(
        report=report,
        new=new,
        grandfathered=grandfathered,
        stale_entries=stale,
        baseline_path=shown_baseline,
    )
    if args.format == "json":
        print(render_json(outcome), file=out)
    elif args.format == "sarif":
        print(render_sarif(outcome), file=out)
    else:
        print(render_text(outcome, stats=args.stats), file=out)
    return outcome.exit_code
