"""repro.lint — static enforcement of the reproduction's invariants.

A zero-dependency (stdlib :mod:`ast`) analysis suite that mechanically
checks what PRs 1–3 enforced only by convention and tests-after-the-
fact: simulation determinism (RPR001), hot-path slotting (RPR002),
cache-key schema completeness (RPR003), serialization symmetry
(RPR004), supporting hygiene rules (RPR005–RPR008), and deprecated
override shims (RPR009).  See
``docs/LINT.md`` for the full rule catalogue and workflow.

Programmatic use::

    from pathlib import Path
    from repro.lint import LintEngine, load_config

    root = Path(".")
    report = LintEngine(load_config(root), root).run(["src"])
    for finding in report.findings:
        print(finding.render())  # repro-lint: disable=RPR008

CLI: ``repro lint [paths] [--format json] [--baseline FILE]
[--write-baseline] [--no-baseline] [--stats]``.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import LintConfig, find_project_root, load_config
from repro.lint.engine import LintEngine, LintReport
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, get_rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "find_project_root",
    "get_rule",
    "load_config",
]
