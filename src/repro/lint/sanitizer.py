"""The runtime concurrency sanitizer: assertions where the linter stops.

RPR011/RPR012 prove what they can statically; this module checks the
rest at runtime.  When enabled it instruments the three shared-state
hot spots the concurrent subsystems are built on:

* **BufferPool** (``repro.realio``) — the pool's lock is swapped for an
  owner-tracking lock and every :class:`RunCacheState` the pool owns is
  tagged so that *any* mutation of its counters without that lock held
  by the current thread is a violation (``RPR090``).  The simulator's
  own single-threaded ``RunCacheState`` instances are untagged and pay
  nothing.
* **LeaseManager** (``repro.dist``) — "the coordinator's event loop is
  its lock" is the design invariant; the first mutating call binds the
  owner thread and any mutation from another thread is a violation
  (``RPR091``).
* **ResultStore** (``repro.sweep``) — two threads writing the *same*
  cache key concurrently means single-flight/coalescing failed
  upstream; the write is atomic either way, but the stampede is a
  violation (``RPR092``).

Violations are **recorded, not raised**: they flow into the standard
:class:`~repro.lint.findings.Finding` shape so the existing reporters
render them, and :meth:`SanitizerReport.check` (or the atexit hook the
``REPRO_SANITIZE=1`` path installs) turns them into a failure at a
well-defined point instead of corrupting an arbitrary stack.

Activation is opt-in and nestable::

    with configure(sanitize=True):        # repro.api scope
        RealMerge(...).run()

    REPRO_SANITIZE=1 python -m repro ...  # whole-process, atexit report

The instrumentation costs one dict lookup per attribute write on
*tagged* instances only, so it stays out of every benchmarked path
unless explicitly switched on.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from contextlib import contextmanager
from typing import Any, Optional

from repro.lint.findings import Finding, Severity

#: Runtime rule ids.  The 09x block is reserved for sanitizer findings
#: so they can never collide with static rules (RPR001-RPR013).
POOL_RULE = "RPR090"
LEASE_RULE = "RPR091"
STORE_RULE = "RPR092"

#: Where runtime findings "live" when rendered by the reporters.
RUNTIME_PATH = "<runtime>"

#: The attribute used to tag sanitized instances.  Written through
#: ``__dict__`` so the guarded ``__setattr__`` never sees it.
_TAG = "_repro_sanitizer_lock"
_OWNER_TAG = "_repro_sanitizer_owner"

_ENV_VAR = "REPRO_SANITIZE"


class ConcurrencyViolation(RuntimeError):
    """Raised by :meth:`SanitizerReport.check` when violations exist."""


class SanitizerReport:
    """Thread-safe collector feeding the findings/reporters pipeline."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._findings: list[Finding] = []

    def record(self, rule: str, message: str) -> None:
        finding = Finding(
            path=RUNTIME_PATH,
            line=0,
            rule=rule,
            message=message,
            severity=Severity.ERROR,
        )
        with self._lock:
            self._findings.append(finding)

    def findings(self) -> list[Finding]:
        with self._lock:
            return list(self._findings)

    def clear(self) -> None:
        with self._lock:
            self._findings.clear()

    def render(self) -> str:
        return "\n".join(
            finding.render() for finding in self.findings()
        )

    def check(self) -> None:
        """Raise :class:`ConcurrencyViolation` if anything was recorded."""
        findings = self.findings()
        if findings:
            raise ConcurrencyViolation(
                f"{len(findings)} concurrency violation(s):\n"
                + "\n".join(finding.render() for finding in findings)
            )


#: The process-wide report every instrumented call records into.
_report = SanitizerReport()

#: Enable/disable refcount (nested ``configure(sanitize=True)`` scopes).
_enabled = 0
_state_lock = threading.Lock()

#: Original attributes put back by :func:`disable`.
_originals: dict[str, Any] = {}

#: In-flight ResultStore writes: (store id, key) -> thread ident.
_inflight_lock = threading.Lock()
_inflight: dict[tuple[int, str], int] = {}


def report() -> SanitizerReport:
    """The process-wide sanitizer report."""
    return _report


def is_enabled() -> bool:
    return _enabled > 0


class OwnedLock:
    """A mutex that knows which thread holds it.

    Duck-types ``threading.Lock`` closely enough to back a
    ``threading.Condition`` (``_is_owned`` included), which is exactly
    how :class:`BufferPool` composes its lock and arrival condition.
    """

    __slots__ = ("_lock", "_owner")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owner: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
        return acquired

    def release(self) -> None:
        self._owner = None
        self._lock.release()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    def _is_owned(self) -> bool:  # threading.Condition protocol
        return self.held_by_current_thread()

    def __enter__(self) -> "OwnedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


# -- RPR090: BufferPool / RunCacheState ---------------------------------------


def _guarded_setattr(self, name: str, value: Any) -> None:
    lock = self.__dict__.get(_TAG)
    if lock is not None and not lock.held_by_current_thread():
        _report.record(
            POOL_RULE,
            f"RunCacheState.{name} mutated without the pool lock held "
            f"(run {self.__dict__.get('run')}, thread "
            f"{threading.current_thread().name!r}); every pool-owned "
            "counter write must happen inside the BufferPool lock",
        )
    object.__setattr__(self, name, value)


def _patched_pool_init(self, capacity, run_blocks):
    _originals["pool_init"](self, capacity, run_blocks)
    owned = OwnedLock()
    self._lock = owned
    self._arrived = threading.Condition(owned)
    for state in self.runs:
        state.__dict__[_TAG] = owned


# -- RPR091: LeaseManager ------------------------------------------------------

_LEASE_MUTATORS = ("sweep_expired", "acquire", "heartbeat", "complete")

#: Mutators call each other (``acquire`` sweeps first); report only the
#: outermost call per thread, not every nested frame.
_lease_depth = threading.local()


def _lease_wrapper(name: str, original):
    def wrapper(self, *args, **kwargs):
        depth = getattr(_lease_depth, "value", 0)
        _lease_depth.value = depth + 1
        try:
            me = threading.get_ident()
            owner = self.__dict__.get(_OWNER_TAG)
            if owner is None:
                self.__dict__[_OWNER_TAG] = me
            elif owner != me and depth == 0:
                _report.record(
                    LEASE_RULE,
                    f"LeaseManager.{name} called from thread "
                    f"{threading.current_thread().name!r} but the manager "
                    "is owned by another thread; the coordinator's event "
                    "loop is the lease state machine's lock and no other "
                    "thread may mutate it",
                )
            return original(self, *args, **kwargs)
        finally:
            _lease_depth.value = depth

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    wrapper.__wrapped__ = original
    return wrapper


# -- RPR092: ResultStore -------------------------------------------------------


def _store_put_wrapper(original):
    def wrapper(self, key, *args, **kwargs):
        me = threading.get_ident()
        token = (id(self), key)
        with _inflight_lock:
            other = _inflight.get(token)
            if other is not None and other != me:
                _report.record(
                    STORE_RULE,
                    f"concurrent ResultStore.put of cache key {key!r} "
                    "from two threads; single-flight/coalescing should "
                    "have deduplicated this write upstream (the rename "
                    "is atomic, the duplicate work is the bug)",
                )
            _inflight[token] = me
        try:
            return original(self, key, *args, **kwargs)
        finally:
            with _inflight_lock:
                _inflight.pop(token, None)

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    wrapper.__wrapped__ = original
    return wrapper


# -- enable / disable ----------------------------------------------------------


def _patch() -> None:
    from repro.core.cache import RunCacheState
    from repro.dist.leases import LeaseManager
    from repro.realio.pool import BufferPool
    from repro.sweep.store import ResultStore

    _originals["state_setattr"] = RunCacheState.__setattr__
    RunCacheState.__setattr__ = _guarded_setattr
    _originals["pool_init"] = BufferPool.__init__
    BufferPool.__init__ = _patched_pool_init
    for name in _LEASE_MUTATORS:
        _originals[f"lease_{name}"] = getattr(LeaseManager, name)
        setattr(
            LeaseManager, name,
            _lease_wrapper(name, _originals[f"lease_{name}"]),
        )
    _originals["store_put"] = ResultStore.put
    ResultStore.put = _store_put_wrapper(_originals["store_put"])


def _unpatch() -> None:
    from repro.core.cache import RunCacheState
    from repro.dist.leases import LeaseManager
    from repro.realio.pool import BufferPool
    from repro.sweep.store import ResultStore

    RunCacheState.__setattr__ = _originals.pop("state_setattr")
    BufferPool.__init__ = _originals.pop("pool_init")
    for name in _LEASE_MUTATORS:
        setattr(LeaseManager, name, _originals.pop(f"lease_{name}"))
    ResultStore.put = _originals.pop("store_put")


def enable() -> None:
    """Instrument the shared-state hot spots (refcounted, nestable)."""
    global _enabled
    with _state_lock:
        if _enabled == 0:
            _patch()
        _enabled += 1


def disable() -> None:
    """Undo one :func:`enable`; instrumentation stops at refcount zero.

    Already-constructed pools keep their owner-tracking locks (they
    work unguarded), but tagged states stop reporting because the
    guarded ``__setattr__`` is removed from the class.
    """
    global _enabled
    with _state_lock:
        if _enabled == 0:
            return
        _enabled -= 1
        if _enabled == 0:
            _unpatch()


@contextmanager
def sanitized():
    """``with sanitized() as rep: ...`` — enable, yield the report."""
    enable()
    try:
        yield _report
    finally:
        disable()


def _atexit_report() -> None:  # pragma: no cover - exercised by smoke
    findings = _report.findings()
    if findings:
        print(
            f"sanitizer: {len(findings)} concurrency violation(s)",
            file=sys.stderr,
        )
        for finding in findings:
            print(f"sanitizer: {finding.render()}", file=sys.stderr)


def enable_from_env() -> bool:
    """Enable for the whole process when ``REPRO_SANITIZE=1`` is set.

    Called from the CLI entry point so every ``python -m repro``
    invocation (including dist worker and sweep subprocesses) honors
    the variable.  Installs an atexit hook that prints any violations
    to stderr with a stable ``sanitizer:`` prefix — the smoke harness
    greps for it.
    """
    if os.environ.get(_ENV_VAR, "").lower() not in ("1", "true", "yes"):
        return False
    enable()
    atexit.register(_atexit_report)
    return True
