"""Findings: what a lint rule reports and how findings are identified.

A :class:`Finding` pins one invariant violation to a file and line.  Its
*fingerprint* — ``(rule, path, message)``, deliberately excluding the
line number — is the identity used by the committed baseline, so
grandfathered findings survive unrelated edits that shift line numbers
but resurface the moment the offending code is touched enough to change
the message (which names the offending symbol).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a violated invariant is.

    Both severities fail the lint run (this repo treats its invariants
    as hard); the distinction exists for reporting and for downstream
    tooling that may choose to gate only on errors.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-relative POSIX path
    line: int  #: 1-based line number
    rule: str  #: stable rule id, e.g. ``"RPR001"``
    message: str
    severity: Severity = Severity.ERROR

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            path=data["path"],
            line=data["line"],
            rule=data["rule"],
            message=data["message"],
            severity=Severity(data.get("severity", "error")),
        )

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"[{self.severity.value}] {self.message}"
        )
