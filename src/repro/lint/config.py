"""Linter configuration: defaults plus ``[tool.repro-lint]`` overrides.

The defaults below encode this repository's invariants — which modules
are simulation code (no wall clocks, no global RNG), which are hot-path
(``__slots__`` required), where broad exception handlers need explicit
justification, and which files may talk to stdout directly.  A project
can override any of them from ``pyproject.toml``::

    [tool.repro-lint]
    paths = ["src"]
    baseline = "lint-baseline.json"
    disable = ["RPR008"]
    determinism-modules = ["repro/sim", "repro/core"]

Parsing uses :mod:`tomllib` where available (Python 3.11+).  On 3.10 a
minimal fallback parser handles the subset this table needs (string,
bool, integer, flat string-list values, and the one nested
``[tool.repro-lint.layers]`` sub-table) so the linter stays
zero-dependency everywhere the repo supports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Optional


@dataclass
class LintConfig:
    """Everything the engine and rules need to know about the project."""

    #: Directories/files linted when the CLI gets no explicit paths.
    paths: list[str] = field(default_factory=lambda: ["src"])
    #: Baseline file (repo-relative) of grandfathered findings.
    baseline: str = "lint-baseline.json"
    #: Rule ids disabled project-wide.
    disable: list[str] = field(default_factory=list)

    # -- RPR001 determinism --------------------------------------------------
    #: Simulation modules: no wall clocks, OS entropy, or global RNG.
    determinism_modules: list[str] = field(default_factory=lambda: [
        "repro/sim", "repro/core", "repro/disks", "repro/faults",
        "repro/workloads", "repro/obs", "repro/serve", "repro/dist",
        "repro/realio", "repro/netutil.py",
    ])
    #: The blessed randomness module itself (and any other exemptions).
    #: Wall-clock seam modules live in :attr:`wall_clock_seams` instead.
    determinism_exempt: list[str] = field(default_factory=lambda: [
        "repro/sim/random_streams.py",
    ])
    #: The injected wall-clock seams: the only modules allowed to touch
    #: ``time.time``/``monotonic`` inside determinism-checked packages.
    #: One list, consumed by both the determinism rule and the docs —
    #: each entry is a package's single sanctioned clock boundary.
    wall_clock_seams: list[str] = field(default_factory=lambda: [
        "repro/serve/clock.py",
        "repro/realio/clock.py",
    ])

    # -- RPR002 hot-path slotting --------------------------------------------
    #: Modules whose classes must declare ``__slots__``.
    slots_modules: list[str] = field(default_factory=lambda: [
        "repro/sim/fast.py",
        "repro/sim/batch.py",
    ])

    # -- RPR003 cache-key schema ---------------------------------------------
    #: The module defining the simulation configuration dataclass.
    config_module: str = "src/repro/core/parameters.py"
    #: The dataclass whose fields must be inventoried for cache keys.
    config_class: str = "SimulationConfig"
    #: The module declaring KNOWN_CONFIG_FIELDS / KEY_EXCLUDED_FIELDS.
    keys_module: str = "src/repro/sweep/keys.py"

    # -- RPR005 ordering hazards ---------------------------------------------
    #: Event-ordering code paths: iterating a set there is a replay hazard.
    ordering_modules: list[str] = field(default_factory=lambda: [
        "repro/sim", "repro/core", "repro/disks", "repro/faults",
        "repro/workloads", "repro/obs",
    ])

    # -- RPR006 exception discipline -----------------------------------------
    #: Worker/retry code where a broad ``except`` needs a baseline entry.
    broad_except_modules: list[str] = field(default_factory=lambda: [
        "repro/sweep", "repro/experiments/runner.py", "repro/faults",
        "repro/serve", "repro/dist",
    ])

    # -- RPR008 stdout discipline --------------------------------------------
    #: Modules allowed to call ``print()`` without an explicit stream.
    print_allowed: list[str] = field(default_factory=lambda: [
        "repro/cli.py", "repro/lint",
    ])

    # -- RPR010 layering -------------------------------------------------------
    #: Layer name -> list of module prefixes belonging to that layer.
    #: Declared as the nested ``[tool.repro-lint.layers]`` table.
    layers: dict = field(default_factory=lambda: {
        "model": [
            "repro/sim", "repro/core", "repro/disks", "repro/faults",
            "repro/workloads", "repro/mergesort", "repro/io", "repro/obs",
            "repro/api.py", "repro/netutil.py", "repro/__init__.py",
        ],
        "engine": ["repro/sweep", "repro/analysis"],
        "services": [
            "repro/serve", "repro/dist", "repro/realio", "repro/bench",
            "repro/experiments",
        ],
        "cli": ["repro/cli.py", "repro/__main__.py", "repro/lint"],
    })
    #: Layer names from lowest (imported by everyone) to highest.  A
    #: module may import its own layer or any *earlier* layer; importing
    #: a later layer is an upward dependency and a finding.
    layer_order: list[str] = field(default_factory=lambda: [
        "model", "engine", "services", "cli",
    ])

    # -- RPR011/RPR013 async rules ---------------------------------------------
    #: Packages whose ``async def`` bodies must not (transitively) block.
    async_blocking_modules: list[str] = field(default_factory=lambda: [
        "repro/serve", "repro/dist",
    ])

    # -- RPR012 lock discipline ------------------------------------------------
    #: Packages where shared attribute writes need a lock or annotation.
    lock_discipline_modules: list[str] = field(default_factory=lambda: [
        "repro/realio", "repro/dist", "repro/serve",
    ])

    def is_disabled(self, rule_id: str) -> bool:
        return rule_id in self.disable


#: pyproject key (dashes) -> LintConfig attribute (underscores), for
#: keys whose spelling differs beyond the dash/underscore swap.
_LIST_RE = re.compile(r"^\[(.*)\]$", re.S)
_TABLE_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KV_RE = re.compile(r"^\s*(?P<key>[A-Za-z0-9_\-\.]+)\s*=\s*(?P<value>.+?)\s*$")


def _parse_toml_value(text: str):
    """Parse the value subset the fallback parser supports."""
    text = text.strip()
    if text in ("true", "false"):
        return text == "true"
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    match = _LIST_RE.match(text)
    if match:
        inner = match.group(1).strip()
        if not inner:
            return []
        return [_parse_toml_value(part) for part in _split_list(inner)]
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"unsupported TOML value: {text!r}") from None


def _split_list(inner: str) -> list[str]:
    """Split a flat TOML list body on commas outside quotes."""
    parts, depth, in_string, current = [], 0, False, []
    for char in inner:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == "[" and not in_string:
            depth += 1
            current.append(char)
        elif char == "]" and not in_string:
            depth -= 1
            current.append(char)
        elif char == "," and not in_string and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, respecting ``#`` inside quoted strings."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _fallback_parse_table(text: str, table: str) -> dict:
    """Extract one flat table from TOML without :mod:`tomllib` (3.10)."""
    values: dict = {}
    current_table: Optional[str] = None
    pending: Optional[tuple[str, list[str]]] = None
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line)
        if pending is not None:
            key, chunks = pending
            chunks.append(line)
            joined = "\n".join(chunks)
            if joined.count("[") == joined.count("]"):
                values[key] = _parse_toml_value(joined)
                pending = None
            continue
        table_match = _TABLE_RE.match(line)
        if table_match:
            current_table = table_match.group("name").strip()
            continue
        if current_table != table:
            continue
        kv = _KV_RE.match(line)
        if not kv:
            continue
        key, value = kv.group("key"), kv.group("value")
        if value.count("[") != value.count("]"):  # multi-line list
            pending = (key, [value])
            continue
        values[key] = _parse_toml_value(value)
    return values


def _fallback_subtables(text: str, table: str) -> list[str]:
    """Names of ``[<table>.<name>]`` sub-tables present in ``text``."""
    prefix = table + "."
    names = []
    for raw_line in text.splitlines():
        match = _TABLE_RE.match(_strip_comment(raw_line))
        if match:
            name = match.group("name").strip()
            if name.startswith(prefix):
                names.append(name[len(prefix):])
    return names


def load_pyproject_table(pyproject: Path) -> dict:
    """The raw ``[tool.repro-lint]`` table, or ``{}`` when absent.

    Nested sub-tables (``[tool.repro-lint.layers]``) come back as dict
    values under their sub-table name, matching tomllib's shape.
    """
    if not pyproject.is_file():
        return {}
    try:
        import tomllib
    except ImportError:  # Python 3.10: minimal fallback parser
        return _fallback_load(pyproject.read_text(encoding="utf-8"))
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    return data.get("tool", {}).get("repro-lint", {})


def _fallback_load(text: str) -> dict:
    """The whole ``[tool.repro-lint]`` table (with sub-tables), no tomllib."""
    values = _fallback_parse_table(text, "tool.repro-lint")
    for sub in _fallback_subtables(text, "tool.repro-lint"):
        values[sub] = _fallback_parse_table(text, f"tool.repro-lint.{sub}")
    return values


def load_config(root: Path) -> LintConfig:
    """The project's lint configuration (defaults where unspecified).

    Raises:
        ValueError: for unknown keys or wrongly typed values, naming
            the offending key so the config error is actionable.
    """
    table = load_pyproject_table(root / "pyproject.toml")
    config = LintConfig()
    known = {f.name: f for f in fields(LintConfig)}
    for raw_key, value in table.items():
        attr = raw_key.replace("-", "_")
        if attr not in known:
            raise ValueError(
                f"unknown [tool.repro-lint] key {raw_key!r} "
                f"(known: {', '.join(sorted(k.replace('_', '-') for k in known))})"
            )
        default = getattr(config, attr)
        if isinstance(default, list) and not isinstance(value, list):
            raise ValueError(f"[tool.repro-lint] {raw_key!r} must be a list")
        if isinstance(default, str) and not isinstance(value, str):
            raise ValueError(f"[tool.repro-lint] {raw_key!r} must be a string")
        if isinstance(default, dict) and not isinstance(value, dict):
            raise ValueError(f"[tool.repro-lint] {raw_key!r} must be a table")
        setattr(config, attr, value)
    return config


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the nearest directory with a pyproject."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start.resolve()
