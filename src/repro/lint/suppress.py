"""Inline suppressions: ``# repro-lint: disable=RPR001[,RPR002]``.

A suppression comment on a line silences the named rules for findings
*on that line*.  A ``disable-file=`` comment within the first ten lines
of a module silences the named rules for the whole file.  ``disable=all``
silences every rule.  Suppressions are for code where the violation is
the point (test fixtures, deliberate counter-examples); anything
long-lived in ``src/`` belongs in the baseline with a written reason,
where it is visible in review.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9,\s]+)"
)
_FILE_RE = re.compile(
    r"#\s*repro-lint:\s*disable-file=(?P<rules>[A-Za-z0-9,\s]+)"
)
#: How deep into a file a ``disable-file=`` comment is honoured.
_FILE_COMMENT_WINDOW = 10


def _parse_rules(text: str) -> frozenset[str]:
    return frozenset(
        part.strip().upper() for part in text.split(",") if part.strip()
    )


@dataclass
class Suppressions:
    """Per-file suppression state parsed once from the source text."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    whole_file: frozenset[str] = frozenset()

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        by_line: dict[int, frozenset[str]] = {}
        whole_file: frozenset[str] = frozenset()
        for number, line in enumerate(source.splitlines(), start=1):
            if "repro-lint" not in line:
                continue
            file_match = _FILE_RE.search(line)
            if file_match and number <= _FILE_COMMENT_WINDOW:
                whole_file = whole_file | _parse_rules(file_match.group("rules"))
                continue
            line_match = _LINE_RE.search(line)
            if line_match:
                by_line[number] = _parse_rules(line_match.group("rules"))
        return cls(by_line=by_line, whole_file=whole_file)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        if "ALL" in self.whole_file or rule_id in self.whole_file:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return "ALL" in rules or rule_id in rules
