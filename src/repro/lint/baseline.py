"""The committed baseline of grandfathered findings.

The baseline is a JSON file listing findings that are *known and
deliberately kept*, each with a one-line ``reason``.  Lint exits zero
when every current finding matches a baseline entry; a new violation —
or an edit that changes a grandfathered site enough to alter its
message — fails the run.  Entries that no longer match anything are
reported as stale so the baseline shrinks as debt is paid down.

Matching is by :attr:`~repro.lint.findings.Finding.fingerprint`
(``rule``, ``path``, ``message``): line numbers are excluded so
unrelated edits above a grandfathered site do not churn the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_SCHEMA_VERSION = 1

#: Reason recorded by ``--write-baseline`` for entries nobody justified
#: yet; reviews should demand it be replaced with a real explanation.
TODO_REASON = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and why it is allowed to stay."""

    rule: str
    path: str
    message: str
    reason: str = TODO_REASON

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BaselineEntry":
        return cls(
            rule=data["rule"],
            path=data["path"],
            message=data["message"],
            reason=data.get("reason", TODO_REASON),
        )


@dataclass
class Baseline:
    """The parsed baseline file plus matching helpers."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        version = data.get("version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_SCHEMA_VERSION})"
            )
        return cls(entries=[
            BaselineEntry.from_dict(entry) for entry in data.get("entries", [])
        ])

    def write(self, path: Path) -> Path:
        payload = {
            "version": BASELINE_SCHEMA_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.message)
                )
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return path

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition findings against the baseline.

        Returns ``(new, grandfathered, stale_entries)``: findings with
        no matching entry, findings absorbed by the baseline, and
        entries that matched nothing this run.
        """
        known = {entry.fingerprint: entry for entry in self.entries}
        matched: set[tuple[str, str, str]] = set()
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            if finding.fingerprint in known:
                matched.add(finding.fingerprint)
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale = [
            entry for entry in self.entries if entry.fingerprint not in matched
        ]
        return new, grandfathered, stale

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """A baseline covering ``findings``, keeping prior reasons."""
        reasons: dict[tuple[str, str, str], str] = {}
        if previous is not None:
            reasons = {e.fingerprint: e.reason for e in previous.entries}
        seen: set[tuple[str, str, str]] = set()
        entries: list[BaselineEntry] = []
        for finding in findings:
            if finding.fingerprint in seen:
                continue
            seen.add(finding.fingerprint)
            entries.append(BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                message=finding.message,
                reason=reasons.get(finding.fingerprint, TODO_REASON),
            ))
        return cls(entries=entries)
