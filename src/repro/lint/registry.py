"""The rule registry: stable ids, severities, and the rule protocol.

Rules come in three scopes:

* **file** rules get one parsed module at a time (:class:`ModuleInfo`)
  and yield findings for it — most rules work this way;
* **project** rules run once per lint invocation with access to the
  whole file set and the project root — used for cross-module checks
  like the cache-key schema rule, which must compare
  ``core/parameters.py`` against ``sweep/keys.py``;
* **model** rules run once against the pass-1
  :class:`~repro.lint.project.ProjectModel` (import graph plus
  function/call index) — the layering, blocking-in-async,
  lock-discipline, and unawaited-coroutine rules live here.

Every rule registers under a stable ``RPRxxx`` id via
:func:`register`; ids are never reused, so baselines and inline
suppressions stay meaningful across versions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.config import LintConfig


@dataclass
class ModuleInfo:
    """One source file, parsed once and shared by every rule."""

    path: Path  #: absolute path
    relpath: str  #: repo-relative POSIX path (e.g. ``src/repro/sim/fast.py``)
    source: str
    tree: ast.Module

    @property
    def package_path(self) -> str:
        """The path rules match against module prefixes: ``src/`` stripped."""
        if self.relpath.startswith("src/"):
            return self.relpath[len("src/"):]
        return self.relpath


def path_matches(package_path: str, prefixes: Iterable[str]) -> bool:
    """True when ``package_path`` names or lives under any of ``prefixes``.

    A prefix ending in ``.py`` must match the file exactly; otherwise it
    is a package/directory prefix matched at a path-component boundary.
    """
    for prefix in prefixes:
        prefix = prefix.rstrip("/")
        if prefix.endswith(".py"):
            if package_path == prefix:
                return True
        elif package_path == prefix or package_path.startswith(prefix + "/"):
            return True
    return False


@dataclass(frozen=True)
class Rule:
    """Metadata plus the checking callable for one ``RPRxxx`` id."""

    rule_id: str
    name: str
    severity: Severity
    rationale: str  #: which reproduction invariant the rule protects
    scope: str  #: ``"file"``, ``"project"``, or ``"model"``
    #: file scope: ``check(module, config) -> Iterator[Finding]``
    #: project scope: ``check(modules, config, root) -> Iterator[Finding]``
    #: model scope: ``check(model, config, root) -> Iterator[Finding]``
    check: Callable = field(compare=False)


_RULES: dict[str, Rule] = {}


def register(
    rule_id: str,
    name: str,
    severity: Severity,
    rationale: str,
    scope: str = "file",
) -> Callable:
    """Decorator registering a checking function under ``rule_id``."""
    if scope not in ("file", "project", "model"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def decorate(check: Callable) -> Callable:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = Rule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            rationale=rationale,
            scope=scope,
            check=check,
        )
        return check

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    _load_checkers()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _load_checkers()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ValueError(
            f"unknown lint rule {rule_id!r}: "
            f"choose one of {', '.join(sorted(_RULES))}"
        ) from None


def _load_checkers() -> None:
    """Import the checker modules so their ``@register`` calls run."""
    import repro.lint.checkers  # noqa: F401  (import for side effect)


def make_finding(
    rule: Rule, module_path: str, node: ast.AST | int, message: str
) -> Finding:
    """A finding for ``rule`` at an AST node (or explicit line number)."""
    line = node if isinstance(node, int) else getattr(node, "lineno", 1)
    return Finding(
        path=module_path,
        line=line,
        rule=rule.rule_id,
        message=message,
        severity=rule.severity,
    )


def run_rule_on_module(
    rule: Rule, module: ModuleInfo, config: "LintConfig"
) -> Iterator[Finding]:
    """Run one file-scope rule over one module."""
    if rule.scope != "file":
        raise ValueError(f"{rule.rule_id} is not a file-scope rule")
    yield from rule.check(module, config)
