"""The lint engine: walk files, parse once, run every rule, report.

One :meth:`LintEngine.run` call produces a :class:`LintReport` holding
the raw findings (suppressions already applied — an inline disable
means the finding never existed) plus scan statistics.  Baseline
handling is layered on top by the CLI so programmatic callers can see
everything.

A file that fails to parse yields a single ``RPR000`` finding rather
than crashing the run: a syntax error in one module must not unlint
the rest of the tree.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.project import build_project_model
from repro.lint.registry import ModuleInfo, all_rules
from repro.lint.suppress import Suppressions

#: Pseudo-rule id for files the engine cannot parse.
PARSE_ERROR_RULE = "RPR000"

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache",
})

#: Build-artifact directory names: skipped only when they are NOT
#: Python packages, so a source package that happens to be called
#: ``dist`` or ``build`` (e.g. ``repro/dist``) still gets linted.
_ARTIFACT_DIRS = frozenset({"build", "dist"})


def _is_skipped(path: Path) -> bool:
    parts = path.parts
    for index, part in enumerate(parts):
        if part in _SKIPPED_DIRS:
            return True
        if part in _ARTIFACT_DIRS:
            directory = Path(*parts[: index + 1])
            if not (directory / "__init__.py").is_file():
                return True
    return False


@dataclass
class LintReport:
    """Findings plus scan statistics for one engine run."""

    findings: list[Finding]
    files_scanned: int
    rules_run: int
    elapsed_s: float
    suppressed: int = 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def stats_dict(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "findings": len(self.findings),
            "suppressed": self.suppressed,
            "elapsed_s": round(self.elapsed_s, 3),
            "by_rule": self.counts_by_rule(),
        }


class LintEngine:
    """Runs the registered rules over a file set."""

    def __init__(self, config: LintConfig, root: Path) -> None:
        self.config = config
        self.root = root.resolve()

    # -- file collection -----------------------------------------------------

    def collect_files(self, paths: list[str] | None = None) -> list[Path]:
        """Every ``.py`` file under ``paths`` (default: config paths)."""
        chosen = paths if paths else self.config.paths
        files: list[Path] = []
        seen: set[Path] = set()
        for entry in chosen:
            path = Path(entry)
            if not path.is_absolute():
                path = self.root / path
            if path.is_file():
                candidates = [path]
            elif path.is_dir():
                candidates = sorted(
                    candidate
                    for candidate in path.rglob("*.py")
                    if not _is_skipped(candidate)
                )
            else:
                raise FileNotFoundError(f"lint path does not exist: {entry}")
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    files.append(resolved)
        return files

    def _relpath(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def build_model(self, paths: list[str] | None = None):
        """Pass 1 alone: the :class:`ProjectModel` for ``paths``.

        Unparseable files are skipped (``run`` is where they become
        RPR000 findings); this exists for consumers that want the model
        without a lint verdict, like ``repro lint --graph dot``.
        """
        modules: list[ModuleInfo] = []
        for path in self.collect_files(paths):
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            modules.append(ModuleInfo(
                path=path, relpath=self._relpath(path), source=source,
                tree=tree,
            ))
        return build_project_model(modules)

    # -- the run -------------------------------------------------------------

    def run(self, paths: list[str] | None = None) -> LintReport:
        start = time.perf_counter()
        files = self.collect_files(paths)
        rules = [
            rule for rule in all_rules()
            if not self.config.is_disabled(rule.rule_id)
        ]
        file_rules = [rule for rule in rules if rule.scope == "file"]
        project_rules = [rule for rule in rules if rule.scope == "project"]
        model_rules = [rule for rule in rules if rule.scope == "model"]

        findings: list[Finding] = []
        suppressed = 0
        modules: list[ModuleInfo] = []
        suppressions: dict[str, Suppressions] = {}

        for path in files:
            relpath = self._relpath(path)
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                findings.append(Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"file does not parse: {exc.msg}",
                    severity=Severity.ERROR,
                ))
                continue
            module = ModuleInfo(
                path=path, relpath=relpath, source=source, tree=tree
            )
            modules.append(module)
            suppressions[relpath] = Suppressions.parse(source)
            for rule in file_rules:
                for finding in rule.check(module, self.config):
                    if suppressions[relpath].is_suppressed(
                        finding.rule, finding.line
                    ):
                        suppressed += 1
                    else:
                        findings.append(finding)

        def admit(finding: Finding) -> None:
            nonlocal suppressed
            module_suppressions = suppressions.get(finding.path)
            if module_suppressions is None:
                target = self.root / finding.path
                if target.is_file():
                    module_suppressions = Suppressions.parse(
                        target.read_text(encoding="utf-8")
                    )
                    suppressions[finding.path] = module_suppressions
            if module_suppressions is not None and (
                module_suppressions.is_suppressed(finding.rule, finding.line)
            ):
                suppressed += 1
            else:
                findings.append(finding)

        for rule in project_rules:
            for finding in rule.check(modules, self.config, self.root):
                admit(finding)

        if model_rules:
            # Pass 2: one whole-repo model, shared by every model rule.
            model = build_project_model(modules)
            for rule in model_rules:
                for finding in rule.check(model, self.config, self.root):
                    admit(finding)

        findings.sort()
        return LintReport(
            findings=findings,
            files_scanned=len(files),
            rules_run=len(rules),
            elapsed_s=time.perf_counter() - start,
            suppressed=suppressed,
        )
