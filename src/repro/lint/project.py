"""Pass 1 of the project-wide analyzer: the whole-repo model.

The per-file rules (RPR001-RPR009) see one module at a time.  The
cross-file rules added for the concurrent subsystems (layering,
blocking-in-async, lock discipline, unawaited coroutines) need to know
how modules relate: who imports whom, which functions call which, what
type ``self.cache`` is inside a coroutine.  :func:`build_project_model`
walks every parsed module once and produces a :class:`ProjectModel`
answering exactly those questions:

* a **module import graph** — top-level imports only, with
  ``if TYPE_CHECKING:`` blocks excluded (they are erased at runtime and
  are the sanctioned way to break a type-only cycle) and
  function-scoped imports excluded (a deliberate runtime cycle break);
* a **function/method index** — every ``def`` and ``async def``
  (including nested ones) with the dotted calls made in its body;
* **per-class attribute typing** — inferred from ``__init__``
  assignments like ``self.store = ResultStore(...)``, from annotated
  parameters assigned to attributes, and from attribute annotations —
  enough to resolve ``self.cache.lookup_trials`` three modules away;
* **lock inventory** — which attributes hold ``threading.Lock`` /
  ``RLock`` / ``Condition`` objects, for the lock-discipline rule.

The model is intentionally a *static under-approximation*: resolution
helpers return ``None`` rather than guess, so cross-file rules err on
the side of silence, never on the side of a wrong chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.registry import ModuleInfo

#: Attribute names that create lock-like objects when constructed.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_name_for(package_path: str) -> str:
    """Dotted module name for a package path (``repro/serve/server.py``)."""
    path = package_path
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


@dataclass
class ImportEdge:
    """One imported binding: ``importer`` depends on ``imported``.

    For ``from a import b`` the edge initially points at ``a`` with
    ``symbol="b"``; once every module is registered,
    :func:`build_project_model` retargets the edge to ``a.b`` when
    ``b`` turns out to be a module — the binding is the submodule, and
    modelling it as a dependency on the package ``__init__`` would make
    every re-exporting package cyclic by construction.
    """

    importer: str  #: dotted module name of the importing module
    imported: str  #: dotted module name of the imported module
    line: int
    top_level: bool  #: at module scope, outside ``if TYPE_CHECKING:``
    symbol: Optional[str] = None  #: the name bound by ``from x import name``


@dataclass
class CallSite:
    """One dotted call made inside a function body."""

    callee: str  #: the call target as written (``self.cache.lookup_trials``)
    line: int
    node: ast.Call


@dataclass
class FunctionInfo:
    """One ``def`` / ``async def``, including nested definitions."""

    module: str  #: dotted module name
    qualname: str  #: ``Class.method`` / ``fn`` / ``Class.method.inner``
    name: str
    class_name: Optional[str]  #: enclosing class (also for nested defs)
    is_async: bool
    node: ast.AST
    calls: list[CallSite] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class: its methods, inferred attribute types, and locks."""

    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  #: base names as written
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute -> type name as written at the assignment site.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute -> line of its first ``__init__`` assignment.
    attr_lines: dict[str, int] = field(default_factory=dict)
    #: attributes holding threading.Lock/RLock/Condition/Semaphore.
    lock_attrs: set[str] = field(default_factory=set)


@dataclass
class ModuleModel:
    """Per-module slice of the project model."""

    name: str  #: dotted module name
    info: ModuleInfo
    imports: list[ImportEdge] = field(default_factory=list)
    #: local name -> dotted target.  ``import a.b as c`` gives
    #: ``c -> a.b``; ``from a import b`` gives ``b -> a.b`` (which may
    #: name a module or a symbol — resolution decides later).
    name_table: dict[str, str] = field(default_factory=dict)
    #: module-level ``alias = target`` assignments (name-for-name only).
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


class ProjectModel:
    """The whole-repo model cross-file rules run against."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleModel] = {}
        self.by_relpath: dict[str, ModuleModel] = {}

    # -- lookups ---------------------------------------------------------------

    def module(self, name: str) -> Optional[ModuleModel]:
        return self.modules.get(name)

    def functions(self) -> Iterable[FunctionInfo]:
        for module in self.modules.values():
            yield from module.functions.values()

    def import_graph(self) -> dict[str, set[str]]:
        """Top-level import edges restricted to modules in the model."""
        graph: dict[str, set[str]] = {name: set() for name in self.modules}
        for module in self.modules.values():
            for edge in module.imports:
                if edge.top_level and edge.imported in self.modules:
                    if edge.imported != module.name:
                        graph[module.name].add(edge.imported)
        return graph

    # -- resolution ------------------------------------------------------------

    def resolve_class(
        self, module: ModuleModel, name: str
    ) -> Optional[ClassInfo]:
        """A class named ``name`` (possibly dotted) seen from ``module``."""
        if name in module.classes:
            return module.classes[name]
        head, _, rest = name.partition(".")
        target = module.name_table.get(head)
        if target is None:
            return None
        if not rest:
            # ``from x import Cls`` -> target is ``x.Cls``.
            owner, _, symbol = target.rpartition(".")
            owner_module = self.modules.get(owner)
            if owner_module is not None and symbol in owner_module.classes:
                return owner_module.classes[symbol]
            return None
        # ``import x.y as m`` then ``m.Cls``.
        owner_module = self.modules.get(target)
        if owner_module is not None and rest in owner_module.classes:
            return owner_module.classes[rest]
        return None

    def resolve_function(
        self, context: FunctionInfo, callee: str
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo a dotted call in ``context`` lands on, if known.

        Handles, in order: ``self.method()``, ``self.attr.method()``
        (through inferred attribute types), local module functions,
        ``from x import fn`` names, module-level aliases, and
        ``mod.fn()`` through the import table.  Returns ``None`` for
        anything it cannot prove — rules must treat that as opaque.
        """
        module = self.modules.get(context.module)
        if module is None:
            return None
        parts = callee.split(".")

        if parts[0] == "self" and context.class_name:
            cls = module.classes.get(context.class_name)
            if cls is None:
                return None
            if len(parts) == 2:
                return self._method(cls, parts[1])
            if len(parts) == 3:
                attr_type = cls.attr_types.get(parts[1])
                if attr_type is None:
                    return None
                target_cls = self.resolve_class(module, attr_type)
                if target_cls is None:
                    return None
                return self._method(target_cls, parts[2])
            return None

        if len(parts) == 1:
            name = module.aliases.get(parts[0], parts[0])
            if name in module.functions:
                return module.functions[name]
            target = module.name_table.get(name)
            if target is not None:
                owner, _, symbol = target.rpartition(".")
                owner_module = self.modules.get(owner)
                if owner_module is not None:
                    symbol = owner_module.aliases.get(symbol, symbol)
                    return owner_module.functions.get(symbol)
            return None

        if len(parts) == 2:
            target = module.name_table.get(parts[0])
            if target is not None:
                owner_module = self.modules.get(target)
                if owner_module is not None:
                    name = owner_module.aliases.get(parts[1], parts[1])
                    return owner_module.functions.get(name)
            # ``Cls.method`` on a locally known or imported class.
            cls = self.resolve_class(module, parts[0])
            if cls is not None:
                return self._method(cls, parts[1])
        return None

    def _method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Method lookup on ``cls``, following project-local base classes."""
        seen: set[tuple[str, str]] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            key = (current.module, current.name)
            if key in seen:
                continue
            seen.add(key)
            if name in current.methods:
                return current.methods[name]
            owner = self.modules.get(current.module)
            if owner is None:
                continue
            for base in current.bases:
                base_cls = self.resolve_class(owner, base)
                if base_cls is not None:
                    stack.append(base_cls)
        return None


# -- model construction --------------------------------------------------------


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


class _ModuleVisitor(ast.NodeVisitor):
    """Builds one :class:`ModuleModel` from a parsed module."""

    def __init__(self, model: ModuleModel) -> None:
        self.model = model
        self._class: list[str] = []
        self._function: list[FunctionInfo] = []
        self._qual: list[str] = []
        self._type_checking = False

    # -- imports ---------------------------------------------------------------

    def _add_edge(
        self, imported: str, line: int, symbol: Optional[str] = None
    ) -> None:
        self.model.imports.append(ImportEdge(
            importer=self.model.name,
            imported=imported,
            line=line,
            top_level=(
                not self._function
                and not self._type_checking
            ),
            symbol=symbol,
        ))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add_edge(alias.name, node.lineno)
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.model.name_table.setdefault(local, target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Relative import: resolve against this module's package.
            package_parts = self.model.name.split(".")
            if self.model.info.package_path.endswith("__init__.py"):
                package_parts = package_parts  # package imports from itself
            else:
                package_parts = package_parts[:-1]
            if node.level > 1:
                package_parts = package_parts[: -(node.level - 1)]
            base = ".".join(package_parts + ([base] if base else []))
        if not base:
            return
        for alias in node.names:
            if alias.name == "*":
                self._add_edge(base, node.lineno)
                continue
            self._add_edge(base, node.lineno, symbol=alias.name)
            local = alias.asname or alias.name
            self.model.name_table.setdefault(local, f"{base}.{alias.name}")

    # -- scoping ---------------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test) and not self._function:
            was = self._type_checking
            self._type_checking = True
            for child in node.body:
                self.visit(child)
            self._type_checking = was
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._function:
            return  # classes defined inside functions are out of scope
        cls = ClassInfo(
            module=self.model.name,
            name=node.name,
            node=node,
            bases=[
                name for name in
                (dotted_name(base) for base in node.bases)
                if name is not None
            ],
        )
        self.model.classes[node.name] = cls
        self._class.append(node.name)
        self._qual.append(node.name)
        for child in node.body:
            self.visit(child)
        self._qual.pop()
        self._class.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, is_async: bool
    ) -> None:
        qualname = ".".join(self._qual + [node.name])
        info = FunctionInfo(
            module=self.model.name,
            qualname=qualname,
            name=node.name,
            class_name=self._class[-1] if self._class else None,
            is_async=is_async,
            node=node,
        )
        self.model.functions[qualname] = info
        if self._class and len(self._qual) == 1:
            self.model.classes[self._class[-1]].methods[node.name] = info
        if (
            not self._function and self._class
            and node.name == "__init__"
        ):
            self._collect_init(self.model.classes[self._class[-1]], node)
        self._function.append(info)
        self._qual.append(node.name)
        for child in node.body:
            self.visit(child)
        self._qual.pop()
        self._function.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    # -- calls and aliases -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._function:
            callee = dotted_name(node.func)
            if callee is not None:
                self._function[-1].calls.append(
                    CallSite(callee=callee, line=node.lineno, node=node)
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Module-level ``alias = name`` (e.g. _atomic_write_json).
        if (
            not self._function and not self._class
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Name)
        ):
            self.model.aliases[node.targets[0].id] = node.value.id
        self.generic_visit(node)

    # -- __init__ attribute typing ---------------------------------------------

    def _collect_init(
        self, cls: ClassInfo, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        #: parameter name -> annotation name (``store: ResultStore``).
        param_types: dict[str, str] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                annotation = _annotation_name(arg.annotation)
                if annotation is not None:
                    param_types[arg.arg] = annotation
        for statement in ast.walk(node):
            target, value = None, None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            cls.attr_lines.setdefault(attr, statement.lineno)
            inferred = None
            if isinstance(statement, ast.AnnAssign):
                inferred = _annotation_name(statement.annotation)
            if inferred is None and value is not None:
                inferred = _infer_value_type(value, param_types)
            if inferred is not None:
                cls.attr_types.setdefault(attr, inferred)
                if inferred.rpartition(".")[2] in _LOCK_FACTORIES:
                    cls.lock_attrs.add(attr)


def _annotation_name(node: ast.expr) -> Optional[str]:
    """The class name an annotation denotes, unwrapping Optional[...]"""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        outer = dotted_name(node.value)
        if outer in ("Optional", "typing.Optional"):
            return _annotation_name(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``ResultStore | None`` — take the non-None side.
        for side in (node.left, node.right):
            name = _annotation_name(side)
            if name is not None and name != "None":
                return name
        return None
    name = dotted_name(node)
    if name in ("None", "Any", "typing.Any"):
        return None
    return name


def _infer_value_type(
    value: ast.expr, param_types: dict[str, str]
) -> Optional[str]:
    """Type name of an ``__init__`` assignment's right-hand side."""
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None and name.rpartition(".")[2][:1].isupper():
            return name
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
        # ``store or ResultStore(...)`` — any resolvable operand wins.
        for operand in value.values:
            inferred = _infer_value_type(operand, param_types)
            if inferred is not None:
                return inferred
        return None
    if isinstance(value, ast.IfExp):
        # ``store if store is not None else ResultStore(...)``.
        for operand in (value.body, value.orelse):
            inferred = _infer_value_type(operand, param_types)
            if inferred is not None:
                return inferred
    return None


def build_project_model(modules: Iterable[ModuleInfo]) -> ProjectModel:
    """Pass 1: one walk over every parsed module."""
    project = ProjectModel()
    for info in modules:
        name = module_name_for(info.package_path)
        model = ModuleModel(name=name, info=info)
        project.modules[name] = model
        project.by_relpath[info.relpath] = model
    for model in project.modules.values():
        visitor = _ModuleVisitor(model)
        visitor.visit(model.info.tree)
    # Retarget ``from a import b`` edges at the submodule when ``b``
    # names one (see ImportEdge): the dependency is on ``a.b``, not on
    # the package ``__init__`` that happens to re-export it.
    for model in project.modules.values():
        for edge in model.imports:
            if edge.symbol is not None:
                candidate = f"{edge.imported}.{edge.symbol}"
                if candidate in project.modules:
                    edge.imported = candidate
    return project
