"""The serve layer's only wall-clock access point.

``repro/serve`` sits inside the lint determinism scope (RPR001): no
module there may read a wall clock directly, because anything that
creeps from the serve layer into simulation code must stay replayable.
Operational time — token-bucket refill, latency histograms, deadline
accounting — is real time, though, so it is *injected*: every
time-dependent serve component takes a ``clock`` (and, where it sleeps,
a ``sleep``) callable defaulting to the functions here, and tests drive
the same components with a fake clock for deterministic behaviour.

This module is the single exemption (``determinism-exempt`` in
``pyproject.toml``), mirroring how :mod:`repro.sim.random_streams` is
the single blessed randomness module.
"""

from __future__ import annotations

import time as _time
from typing import Callable

#: Signature of an injected clock: seconds from an arbitrary epoch.
Clock = Callable[[], float]

#: Signature of an injected blocking sleep.
Sleep = Callable[[float], None]


def monotonic_clock() -> float:
    """Seconds on the process monotonic clock (never goes backwards)."""
    return _time.monotonic()


def blocking_sleep(seconds: float) -> None:
    """Default :data:`Sleep` for the synchronous client."""
    _time.sleep(seconds)
