"""Keyed single-flight execution: identical in-flight work runs once.

Two requests for the same content-addressed trial arriving concurrently
must not both burn a worker: the first becomes the flight *leader* and
actually computes; everyone else joining before it lands is a
*follower* awaiting the same task.  Combined with the persistent
result store this closes the stampede window — after the flight
finishes, later requests are plain cache hits.

Flights are :class:`asyncio.Task` objects and waiters await them
through :func:`asyncio.shield`, so a follower whose request deadline
expires is cancelled *without* cancelling the shared computation (the
leader's result still lands in the store for everyone after).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable


class SingleFlight:
    """A keyed map of in-flight computations (single event loop only)."""

    def __init__(self) -> None:
        self._flights: dict[str, asyncio.Task] = {}

    def __len__(self) -> int:
        return len(self._flights)

    def __contains__(self, key: str) -> bool:
        return key in self._flights

    def join(
        self, key: str, factory: Callable[[], Awaitable[Any]]
    ) -> tuple[asyncio.Task, bool]:
        """The flight for ``key``, creating it from ``factory`` if absent.

        Returns ``(task, coalesced)``: ``coalesced`` is True when an
        existing flight was joined (``factory`` was not called).  The
        flight removes itself from the map when it finishes, so a
        failed flight is retried by the next request rather than
        poisoning the key forever.
        """
        task = self._flights.get(key)
        if task is not None:
            return task, True
        task = asyncio.ensure_future(factory())
        self._flights[key] = task
        task.add_done_callback(lambda _done, key=key: self._forget(key))
        return task, False

    async def run(
        self, key: str, factory: Callable[[], Awaitable[Any]]
    ) -> tuple[Any, bool]:
        """Await the (possibly shared) flight for ``key``.

        The await is shielded: cancelling this caller abandons the wait
        but leaves the underlying flight running for its other waiters.
        """
        task, coalesced = self.join(key, factory)
        return await asyncio.shield(task), coalesced

    def _forget(self, key: str) -> None:
        self._flights.pop(key, None)
