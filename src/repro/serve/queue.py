"""Bounded compute admission: load shedding for the worker pool.

The worker pool absorbs at most ``workers`` computations at a time;
everything beyond that waits.  Unbounded waiting is how services fall
over — latency grows without limit while clients retry and multiply
the load — so admission to the compute path is a fixed number of
*slots* (``queue_limit``): interactive requests that cannot get a slot
are shed immediately with ``503`` and a ``Retry-After``, while
background sweep jobs may opt to wait their turn.

This is plain counting, not an :class:`asyncio.Queue` of work items:
the pool executor already queues the callables; what needs bounding is
how much work the *service* admits ahead of it.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import AsyncIterator


class QueueFullError(RuntimeError):
    """No compute slot available: shed the request (HTTP 503)."""


class AdmissionQueue:
    """A fixed pool of compute slots shared by every request.

    ``limit <= 0`` disables bounding (every acquisition succeeds),
    mirroring :class:`repro.serve.limiter.RateLimiter`'s off switch.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._held = 0
        self._waiters: list[asyncio.Future] = []

    @property
    def depth(self) -> int:
        """Slots currently held (the /v1/metricz queue-depth gauge)."""
        return self._held

    @property
    def bounded(self) -> bool:
        return self.limit > 0

    def try_acquire(self) -> None:
        """Take a slot or raise :class:`QueueFullError` (never waits)."""
        if self.bounded and self._held >= self.limit:
            raise QueueFullError(
                f"all {self.limit} compute slots are busy"
            )
        self._held += 1

    async def acquire(self) -> None:
        """Wait for a slot (background work that must not be shed)."""
        while self.bounded and self._held >= self.limit:
            waiter: asyncio.Future = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                with contextlib.suppress(ValueError):
                    self._waiters.remove(waiter)
        self._held += 1

    def release(self) -> None:
        if self._held <= 0:
            raise RuntimeError("release() without a held slot")
        self._held -= 1
        # Wake one waiter; it re-checks the bound under the event loop's
        # single-threaded execution model.
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
                break

    @contextlib.asynccontextmanager
    async def slot(self, *, wait: bool) -> AsyncIterator[None]:
        """Scoped slot: shed (``wait=False``) or queue (``wait=True``)."""
        if wait:
            await self.acquire()
        else:
            self.try_acquire()
        try:
            yield
        finally:
            self.release()
