"""repro.serve — simulation-as-a-service over the sweep result store.

A zero-dependency asyncio HTTP/JSON front door to the simulator: every
request is answered from the content-addressed sweep cache when
possible, coalesced with identical in-flight work when not, and only
then computed on a bounded worker pool behind per-client rate limits
and load shedding.  See ``docs/SERVE.md`` for the API reference and
operational guidance.
"""

from repro.serve.cache import CacheFront
from repro.serve.client import (
    NO_RETRY,
    RetryPolicy,
    ServeClient,
    ServeError,
    ServeHTTPError,
)
from repro.serve.limiter import RateLimiter, TokenBucket
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    MAX_TRIALS_PER_REQUEST,
    PROTOCOL_VERSION,
    ProtocolError,
    SimulateRequest,
    parse_simulate_request,
    parse_sweep_request,
    simulate_response,
)
from repro.serve.queue import AdmissionQueue, QueueFullError
from repro.serve.server import (
    ServeConfig,
    ServerHandle,
    SimulationServer,
    start_in_thread,
)
from repro.serve.singleflight import SingleFlight

__all__ = [
    "AdmissionQueue",
    "CacheFront",
    "MAX_BODY_BYTES",
    "MAX_TRIALS_PER_REQUEST",
    "NO_RETRY",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "RateLimiter",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeHTTPError",
    "ServerHandle",
    "SimulateRequest",
    "SimulationServer",
    "SingleFlight",
    "TokenBucket",
    "parse_simulate_request",
    "parse_sweep_request",
    "simulate_response",
    "start_in_thread",
]
