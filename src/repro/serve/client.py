"""A blocking stdlib client for the simulation service.

:class:`ServeClient` wraps ``http.client`` (one fresh connection per
request — the server answers ``Connection: close``) and adds the retry
discipline a well-behaved client of a load-shedding service needs:
``429``/``503`` answers and transport errors are retried with
capped exponential backoff, and when the server names a price via
``Retry-After`` the client honors it instead of guessing.

Sleeping is injected (:data:`~repro.serve.clock.Sleep`), so retry
schedules are asserted exactly in tests without any real waiting.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
from typing import Any, Optional

from repro.serve.clock import Sleep, blocking_sleep

#: Statuses a client should retry: throttled, shedding, or timed out
#: server-side with the computation still warming the cache.
RETRYABLE_STATUSES = frozenset({429, 503, 504})


class ServeError(RuntimeError):
    """Base class for client-side failures."""


class ServeHTTPError(ServeError):
    """A non-2xx answer that was not retried (or retries ran out)."""

    def __init__(self, status: int, payload: Any) -> None:
        detail = ""
        if isinstance(payload, dict):
            detail = payload.get("detail") or payload.get("error") or ""
        super().__init__(f"HTTP {status}: {detail}" if detail else
                         f"HTTP {status}")
        self.status = status
        self.payload = payload


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for retryable answers.

    ``backoff_for(attempt, retry_after_s)`` returns the sleep before
    retry number ``attempt`` (1-based): the server's ``Retry-After``
    when given, otherwise ``backoff_s * multiplier**(attempt-1)``,
    always capped at ``max_backoff_s``.
    """

    max_attempts: int = 4
    backoff_s: float = 0.25
    multiplier: float = 2.0
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff_for(
        self, attempt: int, retry_after_s: Optional[float] = None
    ) -> float:
        if retry_after_s is not None and retry_after_s > 0:
            return min(retry_after_s, self.max_backoff_s)
        return min(
            self.backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )


#: A policy that never retries (fail on the first retryable answer).
NO_RETRY = RetryPolicy(max_attempts=1)


class ServeClient:
    """Blocking JSON client with Retry-After-aware backoff."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8177,
        *,
        client_id: Optional[str] = None,
        retry: RetryPolicy = RetryPolicy(),
        timeout_s: float = 60.0,
        sleep: Sleep = blocking_sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.retry = retry
        self.timeout_s = timeout_s
        self._sleep = sleep

    # -- endpoints -----------------------------------------------------------

    def simulate(
        self,
        config: dict,
        *,
        trials: Optional[int] = None,
        seed: Optional[int] = None,
        kernel: Optional[str] = None,
        fault_plan: Optional[dict] = None,
        deadline_ms: Optional[float] = None,
    ) -> dict:
        """``POST /v1/simulate``; returns the decoded success body."""
        body: dict[str, Any] = {"config": config}
        if trials is not None:
            body["trials"] = trials
        if seed is not None:
            body["seed"] = seed
        if kernel is not None:
            body["kernel"] = kernel
        if fault_plan is not None:
            body["fault_plan"] = fault_plan
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._request("POST", "/v1/simulate", body)

    def sweep(self, spec: dict) -> dict:
        """``POST /v1/sweep``; returns the 202 job record."""
        return self._request("POST", "/v1/sweep", {"spec": spec})

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>``; the job's current record."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait_for_job(
        self, job_id: str, *, poll_s: float = 0.2, max_polls: int = 600
    ) -> dict:
        """Poll until the job leaves ``queued``/``running``."""
        for _ in range(max_polls):
            record = self.job(job_id)
            if record["status"] not in ("queued", "running"):
                return record
            self._sleep(poll_s)
        raise ServeError(
            f"job {job_id} still {record['status']} after "
            f"{max_polls} polls"
        )

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metricz(self) -> dict:
        return self._request("GET", "/v1/metricz")

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        last_error: Optional[ServeError] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                status, headers, payload = self._once(method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                last_error = ServeError(f"transport failure: {exc}")
                if attempt < self.retry.max_attempts:
                    self._sleep(self.retry.backoff_for(attempt))
                continue
            if 200 <= status < 300:
                return payload
            last_error = ServeHTTPError(status, payload)
            if status in RETRYABLE_STATUSES and attempt < self.retry.max_attempts:
                self._sleep(
                    self.retry.backoff_for(
                        attempt, _retry_after_s(headers, payload)
                    )
                )
                continue
            raise last_error
        raise last_error

    def _once(
        self, method: str, path: str, body: Optional[dict]
    ) -> tuple[int, dict, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"}
            if self.client_id is not None:
                headers["X-Client-Id"] = self.client_id
            encoded = json.dumps(body).encode("utf-8") if body is not None else None
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                payload = {"error": "bad-response",
                           "detail": raw.decode("utf-8", "replace")}
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                payload,
            )
        finally:
            connection.close()


def _retry_after_s(headers: dict, payload: Any) -> Optional[float]:
    """The server's retry price: exact body value over the integer header."""
    if isinstance(payload, dict) and isinstance(
        payload.get("retry_after_s"), (int, float)
    ):
        return float(payload["retry_after_s"])
    value = headers.get("retry-after")
    if value is not None:
        try:
            return float(value)
        except ValueError:
            return None
    return None
