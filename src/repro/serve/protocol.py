"""Wire format of the simulation service.

Requests and responses are plain JSON over HTTP/1.1.  This module owns
both directions of the translation — JSON body to validated
:class:`~repro.core.parameters.SimulationConfig` (plus per-request
options), and metrics objects back to JSON payloads — so the server,
the client, and the tests all speak through one schema.

Errors raise :class:`ProtocolError`, which carries the HTTP status the
server should answer with; every error body has the shape
``{"error": <code>, "detail": <human text>}`` (plus ``retry_after_s``
on throttle/overload answers, mirroring the ``Retry-After`` header).

The full request/response reference lives in ``docs/SERVE.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.faults.plan import FaultPlan
from repro.sweep.keys import CACHE_SCHEMA_VERSION, config_to_dict, coerce_params
from repro.sweep.spec import SweepSpec

#: Bump on any incompatible change to request or response shapes.
PROTOCOL_VERSION = 1

#: Upper bound on accepted request bodies (1 MiB is orders of magnitude
#: above any real config or sweep spec; bigger is a client bug).
MAX_BODY_BYTES = 1 << 20

#: Ceiling on trials per simulate request: a single request is an
#: interactive unit of work; bulk campaigns belong on ``/v1/sweep``.
MAX_TRIALS_PER_REQUEST = 64


class ProtocolError(ValueError):
    """A malformed or unacceptable request, with its HTTP status."""

    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.code = code
        self.detail = detail

    def body(self) -> dict:
        return {"error": self.code, "detail": self.detail}


@dataclasses.dataclass(frozen=True)
class SimulateRequest:
    """One validated ``POST /v1/simulate`` body."""

    config: SimulationConfig
    #: Optional per-request deadline (seconds); None = server default.
    deadline_s: Optional[float] = None

    @property
    def trials(self) -> int:
        return self.config.trials


def _require_object(payload: Any, what: str) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError(
            400, "bad-request",
            f"{what} must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def parse_simulate_request(payload: Any) -> SimulateRequest:
    """Validate a decoded ``/v1/simulate`` body.

    Accepted keys: ``config`` (required: ``SimulationConfig`` fields as
    JSON, enums as their string values), ``trials`` / ``seed`` /
    ``fault_plan`` / ``kernel`` (optional overrides folded into the
    config), and ``deadline_ms``.  Anything else is rejected so typos
    fail loudly instead of silently simulating the wrong thing.
    """
    payload = _require_object(payload, "request body")
    known = {"config", "trials", "seed", "fault_plan", "kernel", "deadline_ms"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(
            400, "bad-request",
            f"unknown request key(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})",
        )
    if "config" not in payload:
        raise ProtocolError(400, "bad-request", "missing required key 'config'")
    params = dict(_require_object(payload["config"], "'config'"))
    if "trials" in payload:
        params["trials"] = payload["trials"]
    if "seed" in payload:
        params["base_seed"] = payload["seed"]
    if "fault_plan" in payload:
        params["fault_plan"] = payload["fault_plan"]
    if "kernel" in payload:
        params["kernel"] = payload["kernel"]
    try:
        config = SimulationConfig(**coerce_params(params))
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(400, "bad-config", str(exc)) from exc
    if config.trials > MAX_TRIALS_PER_REQUEST:
        raise ProtocolError(
            400, "bad-config",
            f"trials={config.trials} exceeds the per-request ceiling "
            f"{MAX_TRIALS_PER_REQUEST}; submit a sweep instead",
        )
    deadline_s = None
    if payload.get("deadline_ms") is not None:
        deadline_ms = payload["deadline_ms"]
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise ProtocolError(
                400, "bad-request", "deadline_ms must be a positive number"
            )
        deadline_s = float(deadline_ms) / 1000.0
    return SimulateRequest(config=config, deadline_s=deadline_s)


def parse_sweep_request(payload: Any) -> SweepSpec:
    """Validate a decoded ``/v1/sweep`` body into a :class:`SweepSpec`."""
    payload = _require_object(payload, "request body")
    if "spec" not in payload:
        raise ProtocolError(400, "bad-request", "missing required key 'spec'")
    spec_dict = _require_object(payload["spec"], "'spec'")
    try:
        spec = SweepSpec.from_dict(spec_dict)
        spec.cells()  # force expansion so bad grids fail at admission
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(400, "bad-spec", str(exc)) from exc
    return spec


def simulate_response(
    config: SimulationConfig,
    trials: list[MergeMetrics],
    *,
    hits: int,
    misses: int,
    coalesced: int,
    elapsed_ms: float,
) -> dict:
    """The ``/v1/simulate`` success body.

    ``trials[t]`` is byte-identical to
    ``MergeSimulation(config).run_trial(trial=t).to_dict()`` whether it
    came from the cache, a fresh computation, or a coalesced flight —
    that equivalence is the service's core contract (enforced by
    ``tests/serve/test_server_e2e.py``).
    """
    aggregate = AggregateMetrics(config.describe(), trials)
    time_s = aggregate.total_time_s
    low, high = time_s.confidence_interval()
    return {
        "protocol": PROTOCOL_VERSION,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "config": config_to_dict(config),
        "cache": {"hits": hits, "misses": misses, "coalesced": coalesced},
        "trials": [metrics.to_dict() for metrics in trials],
        "aggregate": {
            "description": aggregate.config_description,
            "total_time_s": {"mean": time_s.mean, "ci95": [low, high]},
            "success_ratio": {"mean": aggregate.success_ratio.mean},
            "average_concurrency": {
                "mean": aggregate.average_concurrency.mean
            },
        },
        "elapsed_ms": elapsed_ms,
    }


def overload_body(code: str, detail: str, retry_after_s: float) -> dict:
    """A 429/503 body; ``retry_after_s`` mirrors the Retry-After header."""
    return {"error": code, "detail": detail, "retry_after_s": retry_after_s}


def fault_plan_or_none(value: Any) -> Optional[FaultPlan]:
    """Coerce an optional JSON fault plan (shared by server and client)."""
    if value is None or isinstance(value, FaultPlan):
        return value
    return FaultPlan.from_dict(_require_object(value, "'fault_plan'"))
