"""The asyncio HTTP/JSON simulation service.

One :class:`SimulationServer` is the repo's front door: it turns the
content-addressed sweep cache into a shared global answer store and
serves it over five endpoints::

    POST /v1/simulate   one configuration, trial-granular cached
    POST /v1/sweep      submit a SweepSpec as a background job (202)
    GET  /v1/jobs/<id>  poll a submitted sweep job
    GET  /v1/healthz    liveness + drain state
    GET  /v1/metricz    obs MetricsRegistry snapshot (JSON)

Every simulate request flows through the same pipeline:

1. **cache front** — each trial is looked up by its
   :func:`repro.sweep.store.compute_key` content address; hits are
   answered from one JSON read and never touch a worker.
2. **single flight** — concurrent identical misses coalesce onto one
   computation keyed by the same content address.
3. **bounded compute** — flight leaders take an
   :class:`~repro.serve.queue.AdmissionQueue` slot (shed with 503 when
   none is free) and run :func:`repro.sweep.worker.execute_job` on a
   lazily created ``ProcessPoolExecutor`` — the sweep worker path, so
   kernel/fault/seed semantics and ``SIGALRM`` job timeouts are
   inherited and every computed trial lands back in the shared store.
4. **admission control** — per-client token buckets answer 429 with
   ``Retry-After``; per-request deadlines answer 504; ``SIGTERM``
   triggers a graceful drain that finishes in-flight work first.

The HTTP layer is a deliberately minimal HTTP/1.1 server over
``asyncio.start_server`` (request line, headers, ``Content-Length``
body, ``Connection: close`` responses) — enough for JSON APIs, zero
dependencies, and trivially fuzzable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import dataclasses
import json
import math
import signal
import threading
from pathlib import Path
from typing import Callable, Optional

from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.netutil import (
    READ_TIMEOUT_S,
    REQUEST_READ_ERRORS,
    method_not_allowed,
    read_http_request,
    write_json_response,
)
from repro.obs.registry import MetricsRegistry
from repro.serve.cache import CacheFront
from repro.serve.clock import Clock, monotonic_clock
from repro.serve.limiter import RateLimiter
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    SimulateRequest,
    overload_body,
    parse_simulate_request,
    parse_sweep_request,
    simulate_response,
)
from repro.serve.queue import AdmissionQueue, QueueFullError
from repro.serve.singleflight import SingleFlight
from repro.sweep.keys import config_to_dict
from repro.sweep.spec import SweepSpec
from repro.sweep.store import DEFAULT_CACHE_DIR, ResultStore
from repro.sweep.worker import execute_job

#: Latency histogram buckets (ms): sub-millisecond cache hits through
#: multi-second simulations.
_LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Operational knobs of one server instance (docs/SERVE.md)."""

    host: str = "127.0.0.1"
    port: int = 8177
    #: Worker processes for misses; 0 runs jobs on a thread in-process
    #: (tests, tiny deployments — no SIGALRM job timeouts there).
    workers: int = 0
    #: Token-bucket refill per client in requests/second; <= 0 disables.
    rate: float = 0.0
    #: Bucket capacity; None = max(1, rate).
    burst: Optional[float] = None
    #: Concurrent compute slots before misses are shed with 503; <= 0
    #: disables shedding.
    queue_limit: int = 64
    #: Default per-request deadline (seconds); <= 0 disables.
    deadline_s: float = 30.0
    #: Per-job SIGALRM budget inside pool workers (None = unguarded).
    job_timeout_s: Optional[float] = None
    #: Content-addressed result store shared with sweep campaigns.
    cache_dir: str | Path = DEFAULT_CACHE_DIR
    #: How long a drain waits for in-flight work before cancelling it.
    drain_grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")


class SimulationServer:
    """One service instance bound to one event loop.

    Construct, then either ``asyncio.run(server.run())`` (the CLI
    path: installs SIGTERM/SIGINT drain handlers when possible) or
    :func:`start_in_thread` (tests, benchmarks, smoke scripts).
    """

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        *,
        store: Optional[ResultStore] = None,
        clock: Clock = monotonic_clock,
    ) -> None:
        self.config = config
        self.clock = clock
        self.cache = CacheFront(store or ResultStore(config.cache_dir))
        self.limiter = RateLimiter(config.rate, config.burst, clock=clock)
        self.admission = AdmissionQueue(config.queue_limit)
        self.flights = SingleFlight()
        self.metrics = MetricsRegistry()
        self.port: Optional[int] = None  # bound port, set by start()
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._jobs: dict[str, dict] = {}
        self._job_seq = 0
        self._draining = False
        self._started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._active: set[asyncio.Task] = set()
        self._background: set[asyncio.Task] = set()
        self._drain_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; sets :attr:`port`."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._started_at = self.clock()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(
        self,
        *,
        install_signal_handlers: bool = True,
        on_ready: Optional[Callable[[], None]] = None,
    ) -> None:
        """Start, serve until drained, then clean up."""
        await self.start()
        if install_signal_handlers:
            self._install_signal_handlers()
        if on_ready is not None:
            on_ready()
        try:
            await self._stopped.wait()
        finally:
            await self._shutdown()

    def _install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or platform without loop signal
                # support: drain stays available via request_drain().
                break

    def request_drain(self) -> None:
        """Begin a graceful shutdown (idempotent; SIGTERM handler).

        Stops accepting connections, lets in-flight requests and
        background sweep jobs finish (bounded by ``drain_grace_s``),
        then releases :meth:`run`.
        """
        if self._draining:
            return
        self._draining = True
        self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        grace = self.config.drain_grace_s
        pending = self._active | self._background
        if pending:
            done, straggling = await asyncio.wait(pending, timeout=grace)
            for task in straggling:
                task.cancel()
            if straggling:
                await asyncio.wait(straggling, timeout=1.0)
        self._stopped.set()

    async def _shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- HTTP plumbing -------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._active.add(task)
        try:
            await self._serve_one(reader, writer)
        finally:
            self._active.discard(task)
            writer.close()
            with contextlib.suppress(OSError):
                await writer.wait_closed()

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await asyncio.wait_for(
                read_http_request(reader, max_body_bytes=MAX_BODY_BYTES),
                READ_TIMEOUT_S,
            )
        except REQUEST_READ_ERRORS:
            return  # unparseable or abandoned connection: nothing to answer
        if parsed is None:
            return
        method, path, headers, body = parsed
        start = self.clock()
        try:
            status, payload, extra = await self._dispatch(
                method, path, headers, body
            )
        except Exception as exc:
            # Request isolation boundary: one failing handler must
            # answer 500 and leave the server (and its event loop)
            # serving every other connection.
            status, extra = 500, {}
            payload = {"error": "internal", "detail": f"{type(exc).__name__}"}
        self.metrics.counter("serve_responses", code=status).inc()
        endpoint = _endpoint_label(path)
        self.metrics.histogram(
            "serve_latency_ms", bounds=_LATENCY_BUCKETS_MS, endpoint=endpoint
        ).observe((self.clock() - start) * 1000.0)
        await write_json_response(writer, status, payload, extra)

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict, body: Optional[bytes]
    ) -> tuple[int, dict, dict]:
        self.metrics.counter(
            "serve_requests", endpoint=_endpoint_label(path)
        ).inc()
        if body is None:
            return 413, {"error": "payload-too-large",
                         "detail": f"body exceeds {MAX_BODY_BYTES} bytes"}, {}
        if path == "/v1/healthz":
            if method != "GET":
                return method_not_allowed("GET")
            return 200, self._health_body(), {}
        if path == "/v1/metricz":
            if method != "GET":
                return method_not_allowed("GET")
            self._refresh_gauges()
            return 200, self.metrics.to_dict(), {}
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return method_not_allowed("GET")
            return self._job_status(path.removeprefix("/v1/jobs/"))
        if path == "/v1/simulate":
            if method != "POST":
                return method_not_allowed("POST")
            return await self._handle_simulate(headers, body)
        if path == "/v1/sweep":
            if method != "POST":
                return method_not_allowed("POST")
            return self._handle_sweep(headers, body)
        return 404, {"error": "not-found", "detail": f"no route for {path}"}, {}

    def _health_body(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": self.clock() - self._started_at,
            "inflight": len(self._active),
            "queue_depth": self.admission.depth,
            "jobs": len(self._jobs),
        }

    def _refresh_gauges(self) -> None:
        self.metrics.gauge("serve_queue_depth").set(
            float(self.admission.depth)
        )
        self.metrics.gauge("serve_inflight").set(float(len(self._active)))
        self.metrics.gauge("serve_flights").set(float(len(self.flights)))

    # -- admission helpers ---------------------------------------------------

    def _client_id(self, headers: dict) -> str:
        return headers.get("x-client-id", "anonymous")

    def _shed(self, reason: str, code: str, detail: str,
              retry_after_s: float) -> tuple[int, dict, dict]:
        self.metrics.counter("serve_shed", reason=reason).inc()
        status = 429 if reason == "rate" else 503
        header = {"Retry-After": str(max(1, math.ceil(retry_after_s)))}
        return status, overload_body(code, detail, retry_after_s), header

    # -- /v1/simulate --------------------------------------------------------

    async def _handle_simulate(
        self, headers: dict, body: bytes
    ) -> tuple[int, dict, dict]:
        if self._draining:
            return self._shed(
                "draining", "draining",
                "server is draining; retry against another instance",
                self.config.drain_grace_s,
            )
        client = self._client_id(headers)
        if not self.limiter.allow(client):
            retry_after = self.limiter.retry_after_s(client)
            return self._shed(
                "rate", "rate-limited",
                f"client {client!r} exceeded its request rate",
                retry_after,
            )
        try:
            request = parse_simulate_request(json.loads(body or b"null"))
        except json.JSONDecodeError as exc:
            return 400, {"error": "bad-json", "detail": str(exc)}, {}
        except ProtocolError as exc:
            return exc.status, exc.body(), {}
        start = self.clock()
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.deadline_s
        )
        try:
            if deadline_s and deadline_s > 0:
                trials, hits, coalesced = await asyncio.wait_for(
                    self._simulate(request), deadline_s
                )
            else:
                trials, hits, coalesced = await self._simulate(request)
        except QueueFullError as exc:
            return self._shed("queue", "overloaded", str(exc), 1.0)
        except asyncio.TimeoutError:
            self.metrics.counter("serve_deadline_exceeded").inc()
            return 504, {
                "error": "deadline-exceeded",
                "detail": f"request exceeded its {deadline_s:g}s deadline "
                "(the computation continues; retry to pick up the "
                "cached answer)",
            }, {}
        elapsed_ms = (self.clock() - start) * 1000.0
        response = simulate_response(
            request.config,
            trials,
            hits=hits,
            misses=len(trials) - hits,
            coalesced=coalesced,
            elapsed_ms=elapsed_ms,
        )
        return 200, response, {}

    async def _simulate(
        self, request: SimulateRequest
    ) -> tuple[list[MergeMetrics], int, int]:
        """The cache -> coalesce -> compute pipeline for one request.

        Returns ``(trials_in_order, hit_count, coalesced_count)``.
        """
        config = request.config
        # The store hits the filesystem (one open() per trial): keep it
        # off the event loop so a cold cache can't stall other requests.
        hits, misses = await self._loop.run_in_executor(
            None, self.cache.lookup_trials, config
        )
        if hits:
            self.metrics.counter("serve_cache", outcome="hit").inc(len(hits))
        results: dict[int, MergeMetrics] = dict(hits)
        coalesced_count = 0
        if misses:
            computed = await asyncio.gather(
                *(self._compute_trial(config, trial) for trial in misses)
            )
            for trial, metrics, coalesced in computed:
                results[trial] = metrics
                outcome = "coalesced" if coalesced else "miss"
                self.metrics.counter("serve_cache", outcome=outcome).inc()
                coalesced_count += 1 if coalesced else 0
        ordered = [results[trial] for trial in range(config.trials)]
        return ordered, len(hits), coalesced_count

    async def _compute_trial(
        self, config: SimulationConfig, trial: int, *, wait: bool = False
    ) -> tuple[int, MergeMetrics, bool]:
        """One miss through single-flight + admission + the worker pool."""
        key = self.cache.key_for(config, trial)

        async def flight() -> MergeMetrics:
            async with self.admission.slot(wait=wait):
                payload = await self._execute(config, trial)
            self.metrics.counter("serve_computed").inc()
            # store_trial writes through atomic_write_json (mkstemp +
            # rename): blocking file I/O belongs on the executor.
            return await self._loop.run_in_executor(
                None, self.cache.store_trial, config, trial, payload
            )

        metrics, coalesced = await self.flights.run(key, flight)
        return trial, metrics, coalesced

    async def _execute(self, config: SimulationConfig, trial: int) -> dict:
        """Run one trial on the worker pool (the sweep worker path)."""
        pool = self._ensure_pool()
        payload = {
            "config": config_to_dict(config),
            "trial": trial,
            # SIGALRM is main-thread-only: the in-process thread
            # fallback must run unguarded.
            "timeout_s": self.config.job_timeout_s if pool else None,
        }
        return await self._loop.run_in_executor(pool, execute_job, payload)

    def _ensure_pool(self) -> Optional[concurrent.futures.Executor]:
        """The worker pool, created on first miss — hits never pay for it."""
        if self.config.workers <= 0:
            return None
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.config.workers
            )
            self.metrics.gauge("serve_pool_workers").set(
                float(self.config.workers)
            )
        return self._pool

    # -- /v1/sweep + /v1/jobs ------------------------------------------------

    def _handle_sweep(
        self, headers: dict, body: bytes
    ) -> tuple[int, dict, dict]:
        if self._draining:
            return self._shed(
                "draining", "draining",
                "server is draining; retry against another instance",
                self.config.drain_grace_s,
            )
        client = self._client_id(headers)
        if not self.limiter.allow(client):
            return self._shed(
                "rate", "rate-limited",
                f"client {client!r} exceeded its request rate",
                self.limiter.retry_after_s(client),
            )
        try:
            spec = parse_sweep_request(json.loads(body or b"null"))
        except json.JSONDecodeError as exc:
            return 400, {"error": "bad-json", "detail": str(exc)}, {}
        except ProtocolError as exc:
            return exc.status, exc.body(), {}
        self._job_seq += 1
        job_id = f"job-{self._job_seq:06d}"
        jobs = spec.jobs()
        record = {
            "job": job_id,
            "status": "queued",
            "name": spec.name,
            "cells": len(spec.cell_params()),
            "trials_total": len(jobs),
            "trials_done": 0,
            "error": None,
        }
        self._jobs[job_id] = record
        task = self._loop.create_task(self._run_sweep_job(record, spec))
        self._background.add(task)
        task.add_done_callback(self._background.discard)
        self.metrics.counter("serve_sweep_jobs").inc()
        return 202, dict(record), {}

    async def _run_sweep_job(self, record: dict, spec: SweepSpec) -> None:
        """Background execution of one submitted sweep.

        Runs through the identical trial pipeline as ``/v1/simulate``
        (store, single flight, pool) but *waits* for compute slots
        instead of shedding — a background job wants throughput, not a
        latency bound.
        """
        record["status"] = "running"
        try:
            cells = []
            for config in spec.cells():
                hits, misses = await self._loop.run_in_executor(
                    None, self.cache.lookup_trials, config
                )
                if hits:
                    self.metrics.counter(
                        "serve_cache", outcome="hit"
                    ).inc(len(hits))
                record["trials_done"] += len(hits)
                results: dict[int, MergeMetrics] = dict(hits)
                for trial in misses:
                    _, metrics, coalesced = await self._compute_trial(
                        config, trial, wait=True
                    )
                    outcome = "coalesced" if coalesced else "miss"
                    self.metrics.counter("serve_cache", outcome=outcome).inc()
                    results[trial] = metrics
                    record["trials_done"] += 1
                aggregate = AggregateMetrics(
                    config.describe(),
                    [results[t] for t in range(config.trials)],
                )
                cells.append(aggregate.to_dict())
            record["cells_result"] = cells
            record["status"] = "done"
        except asyncio.CancelledError:
            record["status"] = "cancelled"
            record["error"] = "cancelled during drain"
            raise
        except Exception as exc:
            # Job isolation boundary: a failing sweep job must be
            # reported through /v1/jobs, never crash the server.
            record["status"] = "failed"
            record["error"] = f"{type(exc).__name__}: {exc}"

    def _job_status(self, job_id: str) -> tuple[int, dict, dict]:
        record = self._jobs.get(job_id)
        if record is None:
            return 404, {"error": "not-found",
                         "detail": f"unknown job {job_id!r}"}, {}
        return 200, dict(record), {}


def _endpoint_label(path: str) -> str:
    """Bounded-cardinality endpoint label for metrics."""
    if path.startswith("/v1/jobs/"):
        return "jobs"
    known = {"/v1/simulate": "simulate", "/v1/sweep": "sweep",
             "/v1/healthz": "healthz", "/v1/metricz": "metricz"}
    return known.get(path, "other")


# -- threaded harness (tests, benchmarks, smoke scripts) ---------------------


class ServerHandle:
    """A running server on a daemon thread, stoppable from outside."""

    def __init__(self, server: SimulationServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return self.server.config.host, self.server.port

    def stop(self, timeout_s: float = 15.0) -> None:
        """Trigger a graceful drain and join the server thread."""
        loop = self.server._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.server.request_drain)
        self.thread.join(timeout_s)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    server: SimulationServer, *, ready_timeout_s: float = 15.0
) -> ServerHandle:
    """Run ``server`` on a daemon thread; returns once it is accepting."""
    ready = threading.Event()
    failures: list[BaseException] = []

    def runner() -> None:
        try:
            asyncio.run(
                server.run(install_signal_handlers=False, on_ready=ready.set)
            )
        except BaseException as exc:
            failures.append(exc)
            ready.set()
            raise

    thread = threading.Thread(
        target=runner, name="repro-serve", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout_s):
        raise RuntimeError("server did not start within the ready timeout")
    if failures:
        raise RuntimeError("server failed to start") from failures[0]
    return ServerHandle(server, thread)
