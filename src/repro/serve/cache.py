"""The service's read-through cache front over the sweep ResultStore.

Every answer the service has ever computed — and every answer any sweep
campaign has ever computed on this store — is addressable by
:func:`repro.sweep.store.compute_key`, so the front door's first move
is always a store lookup: hits are answered from one JSON read without
touching the worker pool.  Misses that get computed are written back
through the same :meth:`~repro.sweep.store.ResultStore.put` the sweep
engine uses (atomic temp-file + ``os.replace``), so a serve worker pool
and a sweep campaign can share ``results/cache/`` concurrently and feed
each other hits.
"""

from __future__ import annotations

from repro.core.metrics import MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.sweep.keys import config_to_dict
from repro.sweep.store import ResultStore, compute_key


class CacheFront:
    """Trial-granular read/write surface the server pipelines through."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    def key_for(self, config: SimulationConfig, trial: int) -> str:
        return compute_key(config, trial)

    def lookup_trials(
        self, config: SimulationConfig
    ) -> tuple[dict[int, MergeMetrics], list[int]]:
        """Split ``config``'s trials into cache hits and misses.

        Returns ``(hits, misses)``: ``hits`` maps trial number to its
        cached metrics, ``misses`` lists the trial numbers still to
        compute, in trial order.
        """
        hits: dict[int, MergeMetrics] = {}
        misses: list[int] = []
        for trial in range(config.trials):
            cached = self.store.get(self.key_for(config, trial))
            if cached is not None:
                hits[trial] = cached
            else:
                misses.append(trial)
        return hits, misses

    def store_trial(
        self, config: SimulationConfig, trial: int, payload: dict
    ) -> MergeMetrics:
        """Persist one computed trial (worker ``execute_job`` payload).

        Returns the decoded metrics so the caller answers from the same
        object it just cached.
        """
        metrics = MergeMetrics.from_dict(payload["metrics"])
        self.store.put(
            self.key_for(config, trial),
            metrics,
            config=config_to_dict(config),
            seed=config.base_seed + trial,
            elapsed_s=payload.get("elapsed_s"),
        )
        return metrics
