"""Per-client token-bucket admission control.

Each client (``X-Client-Id`` header, falling back to the peer address)
owns one bucket of ``burst`` tokens refilled continuously at ``rate``
tokens per second.  A request costs one token; an empty bucket means
the request is shed with ``429`` and a ``Retry-After`` telling the
client exactly how long until the next token exists — the server never
queues throttled work, it prices it.

Time is injected (:mod:`repro.serve.clock`), so the refill math is
exact and the tests run on a fake clock.  Buckets for idle clients are
pruned once they are full again, bounding memory under adversarial
client-id churn.
"""

from __future__ import annotations

from typing import Optional

from repro.serve.clock import Clock, monotonic_clock

#: Idle-bucket sweep cadence: amortized pruning every N admissions.
_PRUNE_EVERY = 1024


class TokenBucket:
    """One client's bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def take(self, now: float) -> bool:
        """Consume one token; False when the bucket is empty."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after_s(self, now: float) -> float:
        """Seconds until one full token exists again."""
        self._refill(now)
        deficit = 1.0 - self.tokens
        if deficit <= 0.0:
            return 0.0
        return deficit / self.rate

    def is_full(self, now: float) -> bool:
        self._refill(now)
        return self.tokens >= self.burst


class RateLimiter:
    """Keyed token buckets with amortized idle pruning.

    ``rate <= 0`` disables limiting entirely (every request admitted),
    which is the right default for trusted single-tenant deployments
    and for benchmarks.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Clock = monotonic_clock,
    ) -> None:
        if burst is None:
            # One second of headroom, and never a zero-capacity bucket.
            burst = max(1.0, rate)
        if rate > 0 and burst < 1.0:
            raise ValueError("burst must be >= 1 token")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._admissions = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str) -> bool:
        """Admit one request from ``client`` (consuming a token)."""
        if not self.enabled:
            return True
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, now
            )
        self._admissions += 1
        if self._admissions % _PRUNE_EVERY == 0:
            self._prune(now)
        return bucket.take(now)

    def retry_after_s(self, client: str) -> float:
        """Advice for a just-throttled ``client``; 0 when unknown."""
        bucket = self._buckets.get(client)
        if bucket is None or not self.enabled:
            return 0.0
        return bucket.retry_after_s(self._clock())

    def _prune(self, now: float) -> None:
        """Drop buckets that have refilled completely (idle clients)."""
        idle = [
            client for client, bucket in self._buckets.items()
            if bucket.is_full(now)
        ]
        for client in idle:
            del self._buckets[client]

    def __len__(self) -> int:
        return len(self._buckets)
