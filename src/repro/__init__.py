"""repro: reproduction of Pai & Varman, "Prefetching with Multiple

Disks for External Mergesort: Simulation and Analysis" (ICDE 1992).

The package simulates and analyzes the merge phase of external
mergesort with ``k`` sorted runs spread over ``D`` independent disks,
a RAM block cache, and two prefetching strategies (intra-run and
inter-run), reproducing every figure and in-text result of the paper.

Quickstart::

    from repro import simulate_merge, PrefetchStrategy

    result = simulate_merge(
        num_runs=25, num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=10,
        cache_capacity=800, trials=3,
    )
    print(f"merge took {result.total_time_s.mean:.1f}s, "
          f"success ratio {result.success_ratio.mean:.2f}")

Subpackages:

* :mod:`repro.core` -- the merge-phase simulator (strategies, cache,
  metrics, configuration).
* :mod:`repro.sim` -- the discrete-event simulation kernel.
* :mod:`repro.disks` -- drive geometry, run layout, service model.
* :mod:`repro.analysis` -- the paper's closed-form models.
* :mod:`repro.mergesort` -- a real record-level external mergesort used
  to validate the random block-depletion model.
* :mod:`repro.workloads` -- depletion sequences and data generators.
* :mod:`repro.experiments` -- one registered experiment per paper
  figure/table, plus ablations.
* :mod:`repro.sweep` -- parallel parameter sweeps over a worker pool
  with a persistent, content-addressed result cache and resumable
  campaigns.
* :mod:`repro.obs` -- structured tracing and metrics (Chrome-trace,
  JSONL, and text-timeline exporters), enabled through
  :class:`repro.api.RunContext`.
"""

from repro.api import RunContext, configure
from repro.core import (
    Aggregate,
    AggregateMetrics,
    CachePolicy,
    DiskParameters,
    MergeMetrics,
    MergeSimulation,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
    simulate_merge,
)
from repro.disks import DiskGeometry, RunLayout

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "AggregateMetrics",
    "CachePolicy",
    "DiskGeometry",
    "DiskParameters",
    "MergeMetrics",
    "MergeSimulation",
    "PrefetchStrategy",
    "RunContext",
    "RunLayout",
    "SimulationConfig",
    "VictimSelector",
    "__version__",
    "configure",
    "simulate_merge",
]
