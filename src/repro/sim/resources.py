"""Queueing primitives built on events.

:class:`Store` is the workhorse here: each simulated disk drains a FIFO
``Store`` of I/O requests.  :class:`Resource` is a FIFO counting
semaphore provided for completeness (and used by tests as a reference
implementation of mutual exclusion).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from repro.sim.events import Event
from repro.sim.kernel import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Store:
    """A FIFO channel with optional capacity.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately unless the store is full); ``get()`` returns an event
    that fires with the oldest item once one is available.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, object]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        return len(self._putters)

    def put(self, item: object) -> Event:
        """Offer ``item``; the returned event fires when it is stored."""
        event = Event(self.sim)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Request the oldest item; the event fires with that item."""
        event = Event(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self._items) < self.capacity:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed()
                progress = True
            if self._getters and self._items:
                get_event = self._getters.popleft()
                get_event.succeed(self._items.popleft())
                progress = True


class Resource:
    """A counting semaphore with FIFO granting.

    ``request()`` returns an event that fires when a unit is granted;
    the holder must eventually call ``release()``.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def cancel(self, event: Event) -> bool:
        """Withdraw a still-pending request; returns True if removed."""
        try:
            self._waiters.remove(event)
        except ValueError:
            return False
        return True


class PriorityStore(Store):
    """A :class:`Store` that releases the *smallest* item first.

    Items must be mutually orderable.  Used for disk-scheduling
    experiments where the queue is ordered by cylinder address rather
    than arrival time.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        super().__init__(sim, capacity)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self._items) < self.capacity:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed()
                progress = True
            if self._getters and self._items:
                get_event = self._getters.popleft()
                smallest = min(range(len(self._items)), key=self._items.__getitem__)
                item = self._items[smallest]
                del self._items[smallest]
                get_event.succeed(item)
                progress = True
