"""The batched trial-execution tier: a flattened merge-trial interpreter.

The ``batch`` kernel executes a whole batch of independent seeded
trials of one configuration through :func:`run_trial_batch` instead of
spinning up the event kernel once per trial.  The flattened interpreter
replaces the reference kernel's per-event machinery — heap pops,
generator resumes, event objects, callback lists — with a direct walk
of the merge trial's structure: the CPU's merge loop runs as plain
Python, each drive's service chain is computed arithmetically at the
reference kernel's decision points, and block arrivals are folded into
the cache as cursor scans over per-drive arrival lists.  Batch-wide
setup (run layout, addresses, the config description) is computed once
and shared by every trial.

**Bit-identity.**  The interpreter reproduces the reference kernel's
trajectory exactly, not approximately: every random draw happens on
the same :class:`~repro.sim.random_streams.RandomStreams` stream in
the same order, and every floating-point accumulation (service times,
stall attribution, occupancy/concurrency integrals) performs the same
operations in the same order.  Event ordering at equal timestamps
follows the reference heap's sequence-number discipline: a drive's
synchronous continuation (head update, next pick, idle transition)
precedes same-time event deliveries, and a CPU wake folds only the
arrivals that the reference would have delivered before the resume.
``tests/bench/test_kernel_equivalence.py`` enforces the identity
against the reference kernel across the full configuration matrix.

**Fallback.**  Configurations outside the flattened model's envelope
(:func:`unsupported_reason`: fault plans, write disks, timeline or
request recording, degenerate disk timing) never enter the
interpreter; their trials run on the fast kernel.  A trial that
diverges at runtime (:class:`BatchDivergence` — an internal
inconsistency the interpreter detects) is re-run on the fast kernel,
and once the native success rate of a batch drops below the caller's
``efficiency_floor`` the remaining trials skip the interpreter
entirely.
"""

from __future__ import annotations

from typing import Callable, ContextManager, Optional, Sequence

from repro import api
from repro.core.cache import BlockCache, CacheAccountingError
from repro.core.metrics import ConcurrencyTracker, MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.core.strategies import build_planner
from repro.disks.drive import DriveStats, QueueDiscipline
from repro.disks.layout import RunLayout
from repro.sim.random_streams import RandomStreams

__all__ = ["BatchDivergence", "run_trial_batch", "unsupported_reason"]


class BatchDivergence(RuntimeError):
    """The flattened interpreter detected an internal inconsistency.

    Raised (and caught by :func:`run_trial_batch`) when the flat state
    walk violates one of its own invariants — the affected trial falls
    back to the fast event kernel, which is always correct.
    """

    __slots__ = ()


def unsupported_reason(config: SimulationConfig) -> Optional[str]:
    """Why ``config`` cannot run on the flattened interpreter (or None).

    The envelope covers the paper's model: any strategy, victim
    selector, cache policy, queue discipline, synchronization mode and
    CPU cost.  Outside it are features that need the event kernel's
    generality (faults, write subsystem) or per-event hooks (timeline
    and request recording), plus degenerate disk timing where
    continuous rotational draws no longer separate event timestamps.
    """
    if config.fault_plan is not None:
        return "fault injection requires the event kernel"
    if config.write_disks > 0:
        return "the write subsystem requires the event kernel"
    if config.record_timelines or config.record_requests:
        return "timeline/request recording requires per-event hooks"
    if config.disk.avg_rotational_latency_ms <= 0:
        return "degenerate rotational latency (equal-time event ties)"
    if config.stream_across_requests:
        # Zero-positioning sequential chains phase-lock the drives onto
        # one arrival grid; the resulting systematic equal-time ties
        # resolve by heap push order, which the flat model cannot
        # reproduce without the event queue it exists to replace.
        return "streamed sequential requests (systematic equal-time ties)"
    return None


class _Clock:
    """Mutable stand-in for ``Simulator.now`` shared by cache/tracker."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


class _Request:
    """Flat mirror of :class:`~repro.disks.request.BlockFetchRequest`."""

    __slots__ = (
        "run", "first_block", "count", "demand", "issue_time",
        "last_address", "finish", "arrival0",
    )

    def __init__(
        self, run: int, first_block: int, count: int, demand: bool,
        issue_time: float,
    ) -> None:
        self.run = run
        self.first_block = first_block
        self.count = count
        self.demand = demand
        self.issue_time = issue_time
        self.last_address = 0
        self.finish: Optional[float] = None
        self.arrival0 = 0.0


class _Drive:
    """Flat mirror of one :class:`~repro.disks.drive.DiskDrive`.

    ``arrivals`` is the drive's (strictly increasing) block-arrival
    schedule — ``(time, run, block_index)`` tuples appended as requests
    are serviced and consumed through ``cursor`` as the interpreter
    folds them into the cache in global time order.
    """

    __slots__ = (
        "drive_id", "rng", "stats", "head_cylinder",
        "next_sequential_address", "pending", "free_time", "current",
        "arrivals", "cursor",
    )

    def __init__(self, drive_id: int, rng) -> None:
        self.drive_id = drive_id
        self.rng = rng
        self.stats = DriveStats()
        self.head_cylinder = 0
        self.next_sequential_address: Optional[int] = None
        self.pending: list[_Request] = []
        self.free_time: Optional[float] = None
        self.current: Optional[_Request] = None
        self.arrivals: list[tuple[float, int, int]] = []
        self.cursor = 0


class _Shared:
    """Per-config immutables computed once for a whole batch."""

    __slots__ = (
        "config", "layout", "describe", "run_disk", "run_base",
        "blocks_per_cylinder", "seek_per_cylinder", "rotation_period",
        "transfer_ms", "sstf", "stream_across", "initial_blocks",
        "total_blocks", "cpu_ms", "synchronized",
    )

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.layout = RunLayout(
            num_runs=config.num_runs,
            num_disks=config.num_disks,
            blocks_per_run=config.blocks_per_run,
            geometry=config.geometry,
        )
        self.describe = config.describe()
        self.run_disk = [
            self.layout.disk_of_run(run) for run in range(config.num_runs)
        ]
        self.run_base = [
            self.layout.slot_of_run(run) * config.blocks_per_run
            for run in range(config.num_runs)
        ]
        self.blocks_per_cylinder = config.geometry.blocks_per_cylinder
        self.seek_per_cylinder = config.disk.seek_ms_per_cylinder
        self.rotation_period = config.disk.rotation_period_ms
        self.transfer_ms = config.disk.transfer_ms_per_block
        self.sstf = config.queue_discipline is QueueDiscipline.SSTF
        self.stream_across = config.stream_across_requests
        self.initial_blocks = config.initial_blocks_per_run
        self.total_blocks = config.total_blocks
        self.cpu_ms = config.cpu_ms_per_block
        self.synchronized = config.synchronized


class _FlatTrial:
    """One seeded trial walked by the flattened interpreter.

    Duck-types the planner's ``SystemView`` protocol (``layout``,
    ``cache``, ``head_cylinder``; no ``drive_degraded`` — the protocol
    treats its absence as every drive healthy, the fault-free
    behaviour), so the *real* planner and victim-chooser run against
    flat state with identical random draws.
    """

    __slots__ = (
        "shared", "seed", "clock", "cache", "tracker", "planner",
        "drives", "layout", "_depletion_rng",
        "_blocks_depleted", "_blocks_fetched", "_fetch_requests",
        "_demand_situations", "_demand_hits_in_flight",
        "_fetch_decisions", "_full_prefetch_decisions",
        "_cpu_stall_ms", "_cpu_busy_ms", "_healthy_stall_ms",
    )

    def __init__(self, shared: _Shared, seed: int) -> None:
        config = shared.config
        self.shared = shared
        self.seed = seed
        self.clock = _Clock()
        self.layout = shared.layout
        streams = RandomStreams(seed)
        self.cache = BlockCache(
            self.clock,
            capacity=config.resolved_cache_capacity,
            runs=config.num_runs,
            blocks_per_run=config.blocks_per_run,
        )
        self.tracker = ConcurrencyTracker(self.clock, config.num_disks)
        self.planner = build_planner(
            config.strategy,
            depth=config.effective_depth,
            num_disks=config.num_disks,
            policy=config.cache_policy,
            selector=config.victim_selector,
            rng=streams.stream("victim-choice"),
            adaptive=config.adaptive_depth,
        )
        self._depletion_rng = streams.stream("depletion")
        self.drives = [
            _Drive(disk, streams.stream(f"disk-{disk}"))
            for disk in range(config.num_disks)
        ]
        self._blocks_depleted = 0
        self._blocks_fetched = 0
        self._fetch_requests = 0
        self._demand_situations = 0
        self._demand_hits_in_flight = 0
        self._fetch_decisions = 0
        self._full_prefetch_decisions = 0
        self._cpu_stall_ms = 0.0
        self._cpu_busy_ms = 0.0
        self._healthy_stall_ms = 0.0

    # -- planner view protocol -----------------------------------------
    def head_cylinder(self, disk: int) -> int:
        return self.drives[disk].head_cylinder

    # The occupancy-integral updates below are BlockCache._account
    # inlined at every reference account point: the integral is float-
    # partition-sensitive, so each update must happen at the same
    # timestamp in the same global order as the reference kernel's.

    def _apply_arrival(self, drive: _Drive) -> None:
        when, run, index = drive.arrivals[drive.cursor]
        drive.cursor += 1
        cache = self.cache
        state = cache.runs[run]
        if index != state.next_deplete + state.cached or state.in_flight <= 0:
            raise BatchDivergence(
                f"run {run}: flat arrival {index} out of order"
            )
        self.clock.now = when
        cache._occupancy_weighted_ms += (cache.capacity - cache._free) * (
            when - cache._last_change_ms
        )
        cache._last_change_ms = when
        state.in_flight -= 1
        state.cached += 1

    # -- drive service (flat mirror of DiskDrive._service) -------------
    def _start_service(
        self, drive: _Drive, request: _Request, start: float
    ) -> None:
        shared = self.shared
        stats = drive.stats
        stats.queue_wait_ms += start - request.issue_time
        first_address = shared.run_base[request.run] + request.first_block
        last_address = first_address + request.count - 1
        request.last_address = last_address
        sequential = (
            shared.stream_across
            and drive.next_sequential_address is not None
            and first_address == drive.next_sequential_address
        )
        if sequential:
            positioning = 0.0
            stats.sequential_requests += 1
        else:
            distance = abs(
                first_address // shared.blocks_per_cylinder
                - drive.head_cylinder
            )
            seek_ms = distance * shared.seek_per_cylinder
            rotation_ms = drive.rng.uniform(0.0, shared.rotation_period)
            stats.seek_cylinders += distance
            # Reference order: seek_cost + rotation_cost (healthy
            # slowdown factor 1.0 preserves each term bit-exactly).
            positioning = seek_ms + rotation_ms
            stats.seek_ms += seek_ms
            stats.rotation_ms += rotation_ms
        when = start + positioning if positioning > 0 else start
        transfer = shared.transfer_ms
        arrivals = drive.arrivals
        run = request.run
        first_block = request.first_block
        first_index = len(arrivals)
        for offset in range(request.count):
            when = when + transfer
            arrivals.append((when, run, first_block + offset))
        request.arrival0 = arrivals[first_index][0]
        request.finish = when
        stats.transfer_ms += request.count * transfer
        stats.busy_ms += when - start
        stats.requests += 1
        stats.blocks += request.count
        if request.demand:
            stats.demand_requests += 1
        else:
            stats.prefetch_requests += 1
        drive.current = request
        drive.free_time = when

    def _pick_next(self, drive: _Drive) -> _Request:
        pending = drive.pending
        if not self.shared.sstf or len(pending) == 1:
            return pending.pop(0)
        demand_positions = [
            i for i, r in enumerate(pending) if r.demand
        ]
        if demand_positions:
            return pending.pop(demand_positions[0])
        seen_runs: set[int] = set()
        eligible: list[int] = []
        for index, request in enumerate(pending):
            if request.run not in seen_runs:
                seen_runs.add(request.run)
                eligible.append(index)
        shared = self.shared
        head = drive.head_cylinder
        best = min(
            eligible,
            key=lambda i: abs(
                (
                    shared.run_base[pending[i].run]
                    + pending[i].first_block
                )
                // shared.blocks_per_cylinder
                - head
            ),
        )
        return pending.pop(best)

    def _finish_request(self, drive: _Drive) -> None:
        """Process the drive's free point (reference: the synchronous
        continuation after the request's final transfer timeout)."""
        request = drive.current
        when = drive.free_time
        drive.head_cylinder = (
            request.last_address // self.shared.blocks_per_cylinder
        )
        drive.next_sequential_address = request.last_address + 1
        if drive.pending:
            self._start_service(drive, self._pick_next(drive), when)
        else:
            drive.current = None
            drive.free_time = None
            self.clock.now = when
            self.tracker.on_busy_change(drive.drive_id, False)

    # -- global event ordering -----------------------------------------
    def _step_free(self) -> None:
        """Process the globally earliest drive free point."""
        best = None
        best_time = float("inf")
        for drive in self.drives:
            when = drive.free_time
            if when is not None and when < best_time:
                best_time = when
                best = drive
        if best is None:
            raise BatchDivergence("flat merge deadlocked: no drive busy")
        self._finish_request(best)

    def _advance(self, limit: float, arrivals_at_limit: bool) -> None:
        """Process frees ``<= limit`` and fold arrivals up to ``limit``.

        Arrivals strictly before ``limit`` always fold;
        ``arrivals_at_limit`` additionally folds arrivals exactly at it
        (the synchronized-wake rule).  At equal timestamps a drive's
        free point precedes its arrival deliveries, mirroring the
        reference heap's sequence ordering.
        """
        drives = self.drives
        cache = self.cache
        runs = cache.runs
        clock = self.clock
        capacity = cache.capacity
        infinity = float("inf")
        while True:
            # One pass over the drives finds both the earliest free
            # point and the earliest unfolded arrival.
            free_drive = None
            free_time = infinity
            arrival_drive = None
            arrival_time = infinity
            for drive in drives:
                when = drive.free_time
                if when is not None and when < free_time:
                    free_time = when
                    free_drive = drive
                arrivals = drive.arrivals
                cursor = drive.cursor
                if cursor < len(arrivals):
                    when = arrivals[cursor][0]
                    if when < arrival_time:
                        arrival_time = when
                        arrival_drive = drive
            if (
                free_drive is not None
                and free_time <= limit
                and free_time <= arrival_time
            ):
                self._finish_request(free_drive)
                continue
            if arrival_drive is not None and (
                arrival_time < limit
                or (arrivals_at_limit and arrival_time == limit)
            ):
                drive = arrival_drive
                when, run, index = drive.arrivals[drive.cursor]
                drive.cursor += 1
                state = runs[run]
                if (
                    index != state.next_deplete + state.cached
                    or state.in_flight <= 0
                ):
                    raise BatchDivergence(
                        f"run {run}: flat arrival {index} out of order"
                    )
                clock.now = when
                cache._occupancy_weighted_ms += (capacity - cache._free) * (
                    when - cache._last_change_ms
                )
                cache._last_change_ms = when
                state.in_flight -= 1
                state.cached += 1
                continue
            return

    # -- CPU-side actions ----------------------------------------------
    def _issue(self, plan, now: float) -> list[_Request]:
        cache = self.cache
        runs = cache.runs
        capacity = cache.capacity
        drives = self.drives
        run_disk = self.shared.run_disk
        requests: list[_Request] = []
        for group in plan.groups:
            run = group.run
            state = runs[run]
            count = group.count
            free = cache._free
            if count > free or state.next_fetch + count > state.total_blocks:
                # Genuine over-subscription: raise the reference error.
                cache.reserve(run, count)
            first_block = state.next_fetch
            cache._occupancy_weighted_ms += (capacity - free) * (
                now - cache._last_change_ms
            )
            cache._last_change_ms = now
            free -= count
            cache._free = free
            state.in_flight += count
            state.next_fetch += count
            if free < cache.min_free:
                cache.min_free = free
            occupied = capacity - free
            if occupied > cache.peak_occupancy:
                cache.peak_occupancy = occupied
            request = _Request(run, first_block, count, group.demand, now)
            drive = drives[run_disk[run]]
            pending = drive.pending
            pending.append(request)
            if len(pending) > drive.stats.max_queue_length:
                drive.stats.max_queue_length = len(pending)
            if drive.free_time is None:
                self.clock.now = now
                self.tracker.on_busy_change(drive.drive_id, True)
                self._start_service(drive, self._pick_next(drive), now)
            requests.append(request)
            self._fetch_requests += 1
            self._blocks_fetched += count
        return requests

    def _wait_demand(self, request: _Request) -> float:
        """Unsynchronized demand wait: the request's first block."""
        while request.finish is None:
            self._step_free()
        when = request.arrival0
        self._advance(when, arrivals_at_limit=False)
        drive = self.drives[self.shared.run_disk[request.run]]
        entry = drive.arrivals[drive.cursor]
        if entry != (when, request.run, request.first_block):
            raise BatchDivergence("demand arrival fold out of order")
        self._apply_arrival(drive)
        return when

    def _wait_in_flight(self, run: int, index: int) -> float:
        """Demand wait for a block already on its way from disk."""
        drive = self.drives[self.shared.run_disk[run]]
        scan = drive.cursor
        when: Optional[float] = None
        while when is None:
            arrivals = drive.arrivals
            for j in range(scan, len(arrivals)):
                if arrivals[j][1] == run and arrivals[j][2] == index:
                    when = arrivals[j][0]
                    break
            else:
                scan = len(arrivals)
                self._step_free()
        self._advance(when, arrivals_at_limit=False)
        entry = drive.arrivals[drive.cursor]
        if entry != (when, run, index):
            raise BatchDivergence("in-flight arrival fold out of order")
        self._apply_arrival(drive)
        return when

    def _wait_all(self, requests: list[_Request]) -> float:
        """Synchronized demand wait: every block of every group."""
        for request in requests:
            while request.finish is None:
                self._step_free()
        when = max(request.finish for request in requests)
        self._advance(when, arrivals_at_limit=True)
        return when

    # -- the merge loop -------------------------------------------------
    def run(self) -> MergeMetrics:
        shared = self.shared
        config = shared.config
        cache = self.cache
        states = cache.runs
        clock = self.clock
        cpu_ms = shared.cpu_ms
        for run in range(config.num_runs):
            cache.preload(run, shared.initial_blocks)

        unfinished = list(range(config.num_runs))
        depletion_rng = self._depletion_rng
        randrange = depletion_rng.randrange
        planner = self.planner
        capacity = cache.capacity
        now = 0.0
        while unfinished:
            run = unfinished[randrange(len(unfinished))]
            state = states[run]
            if state.cached < 1:
                raise BatchDivergence(f"run {run}: flat deplete underflow")
            clock.now = now
            cache._occupancy_weighted_ms += (capacity - cache._free) * (
                now - cache._last_change_ms
            )
            cache._last_change_ms = now
            state.cached -= 1
            state.next_deplete += 1
            cache._free += 1
            self._blocks_depleted += 1
            if cpu_ms > 0:
                self._cpu_busy_ms += cpu_ms
                wake = now + cpu_ms
                self._advance(wake, arrivals_at_limit=False)
                now = wake
            if state.next_deplete == state.total_blocks:
                unfinished.remove(run)
                continue
            if state.cached > 0:
                continue

            self._demand_situations += 1
            stall_start = now
            if state.in_flight > 0:
                self._demand_hits_in_flight += 1
                now = self._wait_in_flight(run, state.next_deplete)
            else:
                clock.now = now
                plan = planner.plan(self, run)
                if plan.counts_as_decision:
                    self._fetch_decisions += 1
                    if plan.full_prefetch:
                        self._full_prefetch_decisions += 1
                requests = self._issue(plan, now)
                if shared.synchronized:
                    now = self._wait_all(requests)
                else:
                    now = self._wait_demand(requests[0])
            stalled = now - stall_start
            self._cpu_stall_ms += stalled
            if stalled > 0:
                self._healthy_stall_ms += stalled

        if self._blocks_depleted != shared.total_blocks:
            raise BatchDivergence(
                f"flat merge ended early: {self._blocks_depleted} of "
                f"{shared.total_blocks} blocks"
            )
        clock.now = now
        cache.check()
        return MergeMetrics(
            config_description=shared.describe,
            seed=self.seed,
            total_time_ms=now,
            blocks_depleted=self._blocks_depleted,
            blocks_fetched=self._blocks_fetched,
            fetch_requests=self._fetch_requests,
            demand_situations=self._demand_situations,
            demand_hits_in_flight=self._demand_hits_in_flight,
            fetch_decisions=self._fetch_decisions,
            full_prefetch_decisions=self._full_prefetch_decisions,
            cpu_stall_ms=self._cpu_stall_ms,
            cpu_busy_ms=self._cpu_busy_ms,
            drive_stats=[drive.stats for drive in self.drives],
            average_concurrency=self.tracker.average_concurrency(),
            peak_concurrency=self.tracker.peak,
            disk_busy_fraction=self.tracker.busy_fraction(),
            cache_min_free=cache.min_free,
            cache_mean_occupancy=cache.mean_occupancy(),
            cache_peak_occupancy=cache.peak_occupancy,
            blocks_written=0,
            write_stall_ms=0.0,
            write_stalls=0,
            fault_stall_ms=0.0,
            healthy_stall_ms=self._healthy_stall_ms,
            demand_timeouts=0,
            degraded_skips=0,
            concurrency_timeline=None,
            cache_timeline=None,
            request_traces=None,
        )


def _null_guard() -> ContextManager[None]:
    import contextlib

    return contextlib.nullcontext()


def _fallback_trial(
    config: SimulationConfig,
    seed: int,
    guard: Callable[[], ContextManager[None]],
) -> MergeMetrics:
    """Run one seed on the fast event kernel (the always-correct path)."""
    from repro.core.merge_sim import MergeTrial

    try:
        with guard():
            # config.kernel == "batch" resolves to the fast simulator
            # through the registry factory.
            return MergeTrial(config, seed=seed).run()
    except api.TrialTimeoutError:
        raise
    except Exception as exc:
        if api._timed_out(exc):
            raise api.TrialTimeoutError("trial exceeded its timeout") from None
        raise


def run_trial_batch(
    config: SimulationConfig,
    seeds: Sequence[int],
    *,
    guard: Optional[Callable[[], ContextManager[None]]] = None,
    efficiency_floor: float = 0.5,
) -> list[MergeMetrics]:
    """Execute ``seeds`` trials of ``config``; the batch kernel's entry.

    Registered as the ``batch`` kernel's batch runner (see
    :mod:`repro.sim.kernel`); callers go through
    :func:`repro.api.run_trials`, never here directly.  ``guard`` wraps
    every trial (the per-trial timeout seam).  Trials the flattened
    interpreter cannot execute natively — an unsupported config, or a
    runtime :class:`BatchDivergence` — fall back to the fast kernel;
    once the batch's native success rate drops below
    ``efficiency_floor`` the remaining trials skip the interpreter.
    """
    if guard is None:
        guard = _null_guard
    results: list[MergeMetrics] = []
    if unsupported_reason(config) is not None:
        for seed in seeds:
            results.append(_fallback_trial(config, seed, guard))
        return results

    shared = _Shared(config)
    attempted = 0
    diverged = 0
    flat_enabled = True
    for seed in seeds:
        if flat_enabled:
            attempted += 1
            try:
                with guard():
                    results.append(_FlatTrial(shared, seed).run())
                continue
            except api.TrialTimeoutError:
                raise
            except (BatchDivergence, CacheAccountingError):
                diverged += 1
                if (attempted - diverged) / attempted < efficiency_floor:
                    flat_enabled = False
        results.append(_fallback_trial(config, seed, guard))
    return results
