"""Discrete-event simulation kernel.

This package is the reproduction's substrate for the Rice CSIM package
used by the paper: a small, dependency-free, process-oriented
discrete-event simulator.  Processes are plain Python generators that
``yield`` waitable :class:`~repro.sim.events.Event` objects; the
:class:`~repro.sim.kernel.Simulator` advances virtual time and resumes
processes as the events they wait on fire.

Public surface:

* :class:`Simulator` -- the event loop and virtual clock.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` --
  waitable primitives.
* :class:`Process` -- a running generator; itself waitable.
* :class:`Store` -- an unbounded/bounded FIFO channel between processes.
* :class:`Resource` -- a counting semaphore with FIFO queueing.
* :class:`RandomStreams` -- named, independently seeded RNG streams.
* :class:`KernelSpec`, :func:`register_kernel`,
  :func:`available_kernels`, :func:`kernel_names`, :func:`get_kernel`,
  :func:`create_kernel` -- the kernel registry every execution tier
  (reference, fast, batch, plug-ins) is selected through.
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.fast import FastSimulator
from repro.sim.kernel import (
    KernelSpec,
    SimulationError,
    Simulator,
    available_kernels,
    create_kernel,
    get_kernel,
    kernel_names,
    register_kernel,
    unregister_kernel,
)
from repro.sim.process import Process, ProcessFailure
from repro.sim.random_streams import RandomStreams
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FastSimulator",
    "KernelSpec",
    "Process",
    "ProcessFailure",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "available_kernels",
    "create_kernel",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "unregister_kernel",
]
