"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each time the generator
``yield``s an :class:`~repro.sim.events.Event` the process suspends; when
that event fires the process resumes with the event's value (or has the
event's exception thrown into it).  A process is itself an event that
fires when the generator returns, carrying the generator's return value
-- so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.events import Event
from repro.sim.kernel import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class ProcessFailure(RuntimeError):
    """Wraps an exception that escaped a process generator."""

    def __init__(self, process: "Process", cause: BaseException) -> None:
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.__cause__ = cause


class Process(Event):
    """A running generator, waitable like any other event."""

    __slots__ = ("generator", "name", "_waiting_on")

    _anonymous_count = 0

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.generator = generator
        if not name:
            Process._anonymous_count += 1
            name = f"process-{Process._anonymous_count}"
        self.name = name
        self._waiting_on: Event | None = None
        # Kick off at the current time via a zero-delay bootstrap event.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.exception is not None:
                target = self.generator.throw(event.exception)
            else:
                target = self.generator.send(event.value if event.fired else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate catch-all
            self.fail(ProcessFailure(self, exc))
            return
        if not isinstance(target, Event):
            self.generator.close()
            self.fail(
                ProcessFailure(
                    self,
                    SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    ),
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)
