"""Named, independently seeded random-number streams.

Stochastic components of the simulation (depletion choices, rotational
latencies, prefetch-victim selection) each draw from their own stream so
that changing how often one component samples does not perturb the
others.  Streams are derived deterministically from a root seed and a
string name, so a simulation is fully reproducible from ``(seed,
configuration)``.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent ``random.Random`` instances."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        derived_seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(derived_seed)
        self._streams[name] = stream
        return stream

    def spawn(self, offset: int) -> "RandomStreams":
        """A sibling factory for trial ``offset`` of the same experiment."""
        return RandomStreams(self.seed + offset)

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
