"""An optimized drop-in replacement for the reference DES kernel.

:class:`FastSimulator` preserves the reference kernel's semantics —
same heap discipline, same ``(time, sequence)`` tie-breaking, same
event lifecycle — while stripping the per-event Python overhead out of
the hot path:

* **batched event dispatch**: :meth:`FastSimulator.run` pops and fires
  events in one tight loop with pre-bound heap operations instead of
  re-checking the ``until``/``stop_condition`` guards and paying a
  ``step()`` call per event;
* **allocation-lean timeouts**: :class:`FastTimeout` collapses the
  reference ``timeout() -> Timeout.__init__ -> Event.__init__ ->
  succeed -> _mark_scheduled -> schedule`` chain (six calls and a
  tuple) into a single constructor that pushes straight onto the heap;
* **fast triggering**: :class:`FastEvent.succeed` schedules with one
  inlined heap push, used for every block-arrival, wakeup, and cache
  waiter created through the :meth:`Simulator.event` factory;
* **pre-bound process resume**: :class:`FastProcess` binds
  ``generator.send`` / ``generator.throw`` and its own resume callback
  once at construction, avoiding a bound-method allocation per wait
  and the property indirection of the reference resume path.

The two kernels are interchangeable by construction: they schedule the
same events in the same relative order, so identically seeded trials
produce **bit-identical** :class:`~repro.core.metrics.MergeMetrics`.
``tests/bench/test_kernel_equivalence.py`` enforces this across
strategies, seeds, disk counts, and fault plans.

Select a kernel with ``SimulationConfig(kernel="fast")`` (or
``--kernel fast`` on the CLI); the kernel registry in
:mod:`repro.sim.kernel` (:func:`~repro.sim.kernel.create_kernel`,
:func:`~repro.sim.kernel.register_kernel`) is how the merge simulation
finds this class.
"""

from __future__ import annotations

from heapq import heappop, heappush
from types import MethodType
from typing import Generator, Optional

from repro.sim.events import Event, Timeout
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Process, ProcessFailure


class FastEvent(Event):
    """An :class:`Event` whose trigger path is a single inlined push."""

    __slots__ = ()

    def succeed(self, value: object = None, delay: float = 0.0) -> "FastEvent":
        if self._scheduled:
            raise SimulationError("event triggered twice")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._scheduled = True
        self._value = value
        sim = self.sim
        sim._sequence += 1
        heappush(sim._queue, (sim._now + delay, sim._sequence, self))
        return self


class FastTimeout(Timeout):
    """A :class:`Timeout` constructed pre-triggered in one step."""

    __slots__ = ()

    def __init__(
        self, sim: "Simulator", delay: float, value: object = None
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Slot-by-slot init: deliberately skips Event.__init__/succeed
        # so one constructor call replaces the whole reference chain.
        self.sim = sim
        self.delay = delay
        self._value = value
        self._exception = None
        self._callbacks = []
        self._fired = False
        self._scheduled = True
        sim._sequence += 1
        heappush(sim._queue, (sim._now + delay, sim._sequence, self))


class FastProcess(Process):
    """A :class:`Process` with a streamlined resume path."""

    __slots__ = ("_send", "_throw", "_resume_callback")

    def __init__(
        self, sim: "Simulator", generator: Generator, name: str = ""
    ) -> None:
        # Pre-bind before super().__init__: the bootstrap event it
        # schedules resumes through the overridden _resume below.
        self._send = getattr(generator, "send", None)
        self._throw = getattr(generator, "throw", None)
        self._resume_callback = self._resume
        super().__init__(sim, generator, name=name)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exception is not None:
                target = self._throw(event._exception)
            else:
                target = self._send(event._value if event._fired else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate catch-all
            self.fail(ProcessFailure(self, exc))
            return
        if not isinstance(target, Event):
            self.generator.close()
            self.fail(
                ProcessFailure(
                    self,
                    SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    ),
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume_callback)


class FastSimulator(Simulator):
    """Drop-in :class:`Simulator` with the optimized hot path.

    Everything observable — event ordering, virtual time, process
    semantics, error behaviour — matches the reference kernel exactly;
    only the constant factors differ.
    """

    __slots__ = ("_timeout_pool",)

    def __init__(self) -> None:
        super().__init__()
        #: Free list for :class:`FastTimeout` reuse (see :meth:`run`).
        self._timeout_pool: list[FastTimeout] = []

    def timeout(self, delay: float, value: object = None) -> FastTimeout:
        # Allocation-free reuse: recycle a retired timeout when one is
        # available instead of constructing a fresh object.
        pool = self._timeout_pool
        if not pool:
            return FastTimeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        timeout = pool.pop()
        timeout.delay = delay
        timeout._value = value
        timeout._exception = None
        timeout._callbacks = []
        timeout._fired = False
        timeout._scheduled = True
        self._sequence += 1
        heappush(self._queue, (self._now + delay, self._sequence, timeout))
        return timeout

    def event(self) -> FastEvent:
        return FastEvent(self)

    def process(self, generator: Generator, name: str = "") -> FastProcess:
        return FastProcess(self, generator, name=name)

    def run(
        self,
        until: Optional[float] = None,
        stop_condition=None,
    ) -> float:
        if until is not None or stop_condition is not None:
            return super().run(until, stop_condition)
        # Batched dispatch: drain the heap in one tight loop with the
        # firing sequence of Event._fire inlined (no subclass overrides
        # _fire, so this is behaviour-preserving for every event type)
        # and without per-event until/stop_condition guard checks.
        queue = self._queue
        pool = self._timeout_pool
        pop = heappop
        resume_function = FastProcess._resume
        timeout_class = FastTimeout
        method_type = MethodType
        while queue:
            when, _seq, event = pop(queue)
            self._now = when
            if event._fired:
                raise SimulationError("event fired twice")
            event._fired = True
            callbacks = event._callbacks
            event._callbacks = []
            for callback in callbacks:
                callback(event)
            # Retire the timeout to the free list only when its sole
            # observer was a process resume: then it was yielded
            # directly by a (now resumed) process, nothing else holds
            # a live reference, and no later code can query it.
            if (
                type(event) is timeout_class
                and len(callbacks) == 1
                and type(callback) is method_type
                and callback.__func__ is resume_function
            ):
                pool.append(event)
        return self._now


