"""Waitable event primitives.

An :class:`Event` is the unit of synchronization: processes ``yield``
events to suspend until they fire.  Events carry either a *value*
(success) or an *exception* (failure); the waiting process receives the
value as the result of its ``yield`` expression, or has the exception
thrown into it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.sim.kernel import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

Callback = Callable[["Event"], None]

_PENDING = object()


class Event:
    """A one-shot waitable occurrence in virtual time.

    Lifecycle: *pending* -> (``succeed`` | ``fail``) -> scheduled ->
    *fired* (callbacks run, waiters resumed).  ``succeed``/``fail`` may
    be called at most once.
    """

    __slots__ = ("sim", "_value", "_exception", "_callbacks", "_fired", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: object = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callback] = []
        self._fired = False
        self._scheduled = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a result (even if not yet fired)."""
        return self._scheduled

    @property
    def fired(self) -> bool:
        """True once callbacks have run and waiters were resumed."""
        return self._fired

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (no exception)."""
        return self._fired and self._exception is None

    @property
    def value(self) -> object:
        """The success value; raises if the event failed or is pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event value read before it fired")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: object = None, delay: float = 0.0) -> "Event":
        """Mark the event successful; fires after ``delay`` time units."""
        self._mark_scheduled()
        self._value = value
        self.sim.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._mark_scheduled()
        self._exception = exception
        self.sim.schedule(self, delay)
        return self

    def _mark_scheduled(self) -> None:
        if self._scheduled:
            raise SimulationError("event triggered twice")
        self._scheduled = True

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def add_callback(self, callback: Callback) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already fired the callback runs immediately.
        """
        if self._fired:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        if self._fired:
            raise SimulationError("event fired twice")
        self._fired = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically ``delay`` units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None) -> None:
        super().__init__(sim)
        self.delay = delay
        self.succeed(value, delay=delay)


class _Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* child events have fired.

    Succeeds with the list of child values (in construction order).
    Fails with the first child exception encountered.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(_Condition):
    """Fires as soon as *any* child event fires.

    Succeeds with the first finished child event object itself so the
    waiter can tell which one won.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self.succeed(event)
