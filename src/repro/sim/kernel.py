"""The simulation event loop and virtual clock.

The kernel is deliberately small: a binary heap of ``(time, sequence,
event)`` entries and a :meth:`Simulator.run` loop that pops entries in
time order and *fires* each event.  Everything else (processes, stores,
resources) is built on top of :class:`~repro.sim.events.Event`.

Determinism: ties in time are broken by a monotonically increasing
sequence number, so two simulations driven by identically seeded random
streams produce identical trajectories.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.metrics import MergeMetrics
    from repro.core.parameters import SimulationConfig
    from repro.sim.events import Event, Timeout
    from repro.sim.process import Process

    #: A batch runner executes many seeded trials of one configuration
    #: and returns their metrics in seed order.
    BatchRunner = Callable[..., "list[MergeMetrics]"]


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. re-triggering an event)."""


class Simulator:
    """A process-oriented discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    __slots__ = ("_now", "_queue", "_sequence", "_active_processes")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, "Event"]] = []
        self._sequence: int = 0
        self._active_processes: int = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events scheduled but not yet fired."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, event: "Event", delay: float = 0.0) -> None:
        """Schedule ``event`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def timeout(self, delay: float, value: object = None) -> "Timeout":
        """Create a :class:`Timeout` event firing ``delay`` units from now."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def event(self) -> "Event":
        """Create an untriggered event to be succeeded/failed manually."""
        from repro.sim.events import Event

        return Event(self)

    def process(self, generator: Generator, name: str = "") -> "Process":
        """Register ``generator`` as a new process starting immediately."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fire the single next scheduled event."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._fire()

    def run(
        self,
        until: Optional[float] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run until the event queue drains (or ``until``/condition).

        Returns the final virtual time.  ``until`` is an inclusive time
        horizon; events scheduled beyond it remain queued.
        """
        while self._queue:
            if stop_condition is not None and stop_condition():
                break
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                break
            self.step()
        return self._now


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelSpec:
    """One registered execution kernel.

    Attributes:
        name: the identifier accepted by ``SimulationConfig.kernel``
            and the CLI ``--kernel`` flag.
        factory: zero-argument callable returning a fresh
            :class:`Simulator` (or drop-in subclass) for one trial.
            Factories are deliberately lazy callables so registering a
            kernel never imports its implementation module — that keeps
            this registry import-light and cycle-free.
        description: one-line summary shown by ``repro bench list`` and
            the docs.
        batch_runner: optional zero-argument loader returning a *batch
            runner* — ``runner(config, seeds, ...) ->
            list[MergeMetrics]`` executing many seeded trials of one
            configuration at once.  ``repro.api.run_trials`` routes
            whole trial batches through it when present; kernels
            without one run trial-at-a-time through ``factory``.
    """

    name: str
    factory: Callable[[], "Simulator"]
    description: str = ""
    batch_runner: Optional[Callable[[], "BatchRunner"]] = None


#: The process-wide kernel registry, keyed by spec name.
_REGISTRY: dict[str, KernelSpec] = {}


def register_kernel(spec: KernelSpec, *, replace: bool = False) -> KernelSpec:
    """Register ``spec``; returns it for chaining.

    Raises:
        ValueError: when ``spec.name`` is already registered and
            ``replace`` is False, or the name is empty.
    """
    if not spec.name:
        raise ValueError("kernel name must be non-empty")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"kernel {spec.name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_kernel(name: str) -> KernelSpec:
    """Remove and return a registered spec (mainly for test teardown).

    Raises:
        ValueError: for unregistered names.
    """
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise ValueError(f"kernel {name!r} is not registered") from None


def available_kernels() -> Sequence[KernelSpec]:
    """Every registered kernel spec, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def kernel_names() -> list[str]:
    """The registered kernel names, sorted."""
    return sorted(_REGISTRY)


def get_kernel(name: str) -> KernelSpec:
    """Look up the spec registered under ``name``.

    Raises:
        ValueError: for unregistered names, listing the valid choices.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation kernel {name!r}: "
            f"choose one of {', '.join(kernel_names())}"
        ) from None


def create_kernel(name: str) -> "Simulator":
    """Instantiate the kernel registered under ``name``.

    Raises:
        ValueError: for unregistered names, listing the valid choices.
    """
    return get_kernel(name).factory()


# -- built-in kernels ---------------------------------------------------
#
# The fast and batch tiers are registered with lazy factories: looking
# them up (config validation, CLI choices) never imports their modules,
# which would otherwise cycle through repro.core.


def _fast_factory() -> "Simulator":
    from repro.sim.fast import FastSimulator

    return FastSimulator()


def _load_batch_runner() -> "BatchRunner":
    from repro.sim.batch import run_trial_batch

    return run_trial_batch


register_kernel(
    KernelSpec(
        name="reference",
        factory=Simulator,
        description=(
            "the readable baseline: binary-heap event loop, generator "
            "processes (the bit-identity oracle)"
        ),
    )
)
register_kernel(
    KernelSpec(
        name="fast",
        factory=_fast_factory,
        description=(
            "allocation-lean drop-in kernel: inlined dispatch, pooled "
            "timeouts; bit-identical to reference"
        ),
    )
)
register_kernel(
    KernelSpec(
        name="batch",
        factory=_fast_factory,
        description=(
            "batched trial tier: flattened lockstep interpreter for "
            "whole trial batches (repro.api.run_trials); single trials "
            "and unsupported configs fall back to the fast kernel"
        ),
        batch_runner=_load_batch_runner,
    )
)
