"""The simulation event loop and virtual clock.

The kernel is deliberately small: a binary heap of ``(time, sequence,
event)`` entries and a :meth:`Simulator.run` loop that pops entries in
time order and *fires* each event.  Everything else (processes, stores,
resources) is built on top of :class:`~repro.sim.events.Event`.

Determinism: ties in time are broken by a monotonically increasing
sequence number, so two simulations driven by identically seeded random
streams produce identical trajectories.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.events import Event, Timeout
    from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. re-triggering an event)."""


class Simulator:
    """A process-oriented discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    __slots__ = ("_now", "_queue", "_sequence", "_active_processes")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, "Event"]] = []
        self._sequence: int = 0
        self._active_processes: int = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events scheduled but not yet fired."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, event: "Event", delay: float = 0.0) -> None:
        """Schedule ``event`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def timeout(self, delay: float, value: object = None) -> "Timeout":
        """Create a :class:`Timeout` event firing ``delay`` units from now."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def event(self) -> "Event":
        """Create an untriggered event to be succeeded/failed manually."""
        from repro.sim.events import Event

        return Event(self)

    def process(self, generator: Generator, name: str = "") -> "Process":
        """Register ``generator`` as a new process starting immediately."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fire the single next scheduled event."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._fire()

    def run(
        self,
        until: Optional[float] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run until the event queue drains (or ``until``/condition).

        Returns the final virtual time.  ``until`` is an inclusive time
        horizon; events scheduled beyond it remain queued.
        """
        while self._queue:
            if stop_condition is not None and stop_condition():
                break
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                break
            self.step()
        return self._now
