"""The sweep engine: cached, pooled, fault-tolerant job execution.

Execution model:

* Every job (one seeded trial of one grid cell) is first looked up in
  the :class:`~repro.sweep.store.ResultStore` by content address — hits
  cost one JSON read and no simulation.
* Misses run on a ``concurrent.futures.ProcessPoolExecutor`` with
  ``workers`` processes (``workers <= 1`` runs inline, which is also
  the zero-dependency fallback).  Each completed trial is persisted to
  the store *immediately*, so killing the sweep at any point loses at
  most the in-flight trials; re-invoking resumes from what finished.
* A failed or timed-out job is retried up to ``retries`` times; a job
  that exhausts its retries is recorded as a failure.  With
  ``allow_partial`` the sweep completes around it, otherwise
  :class:`SweepError` reports every casualty.
* Results are returned in spec expansion order regardless of the order
  workers finish them, so parallel sweeps aggregate bit-identically to
  the serial path.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.sweep.keys import config_to_dict
from repro.sweep.progress import (
    CACHED,
    COMPUTED,
    FAILED,
    NullProgress,
    ProgressListener,
    SweepStats,
)
from repro.sim.kernel import get_kernel
from repro.sweep.spec import SweepJob, SweepSpec, jobs_for_config
from repro.sweep.store import CampaignManifest, ResultStore
from repro.sweep.worker import execute_batch, execute_job


@dataclass(frozen=True)
class JobFailure:
    """One job that exhausted its retry budget."""

    index: int
    key: str
    description: str
    attempts: int
    error: str


class SweepError(RuntimeError):
    """Raised when jobs fail and ``allow_partial`` is off."""

    def __init__(self, failures: list[JobFailure]) -> None:
        self.failures = failures
        lines = "; ".join(
            f"{f.description} ({f.error})" for f in failures[:3]
        )
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(f"{len(failures)} sweep job(s) failed: {lines}{more}")


@dataclass
class SweepResult:
    """Everything one :meth:`SweepEngine.run_spec` call produced."""

    spec: SweepSpec
    cells: list[AggregateMetrics]
    stats: SweepStats
    failures: list[JobFailure] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "stats": self.stats.to_dict(),
            "failures": [
                {
                    "index": f.index,
                    "key": f.key,
                    "description": f.description,
                    "attempts": f.attempts,
                    "error": f.error,
                }
                for f in self.failures
            ],
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`: reload an exported sweep result."""
        return cls(
            spec=SweepSpec.from_dict(data["spec"]),
            cells=[
                AggregateMetrics.from_dict(cell) for cell in data["cells"]
            ],
            stats=SweepStats.from_dict(data["stats"]),
            failures=[
                JobFailure(
                    index=failure["index"],
                    key=failure["key"],
                    description=failure["description"],
                    attempts=failure["attempts"],
                    error=failure["error"],
                )
                for failure in data["failures"]
            ],
        )


def _batchable(config: SimulationConfig) -> bool:
    """Does ``config``'s kernel execute whole trial groups at once?"""
    try:
        return get_kernel(config.kernel).batch_runner is not None
    except ValueError:  # unregistered kernel: let the per-job path report it
        return False


class SweepEngine:
    """Executes sweep jobs with caching, parallelism, and retries.

    Args:
        store: persistent result cache; ``None`` disables caching.
        workers: pool size; ``<= 1`` executes inline (deterministic,
            no subprocesses).
        timeout_s: per-job wall-clock budget enforced in the worker.
        retries: extra attempts per failed job.
        progress: observer for begin/job/end events.
        allow_partial: tolerate exhausted jobs (their trials are
            dropped from the aggregation) instead of raising.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        progress: Optional[ProgressListener] = None,
        allow_partial: bool = False,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.store = store
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.progress = progress or NullProgress()
        self.allow_partial = allow_partial

    # -- public entry points ------------------------------------------------

    def run_spec(self, spec: SweepSpec) -> SweepResult:
        """Run a whole campaign; cells aggregate in expansion order."""
        jobs = spec.jobs()
        manifest = None
        if self.store is not None:
            manifest = CampaignManifest(self.store.root, spec.name)
            manifest.begin(spec.to_dict(), spec.spec_key(), [j.key for j in jobs])
        metrics, stats, failures = self._run_jobs(jobs, manifest)
        cells: list[AggregateMetrics] = []
        for cell_index, config in enumerate(spec.cells()):
            trials = [
                metrics[job.index]
                for job in jobs
                if job.cell == cell_index and metrics[job.index] is not None
            ]
            cells.append(AggregateMetrics(config.describe(), trials))
        return SweepResult(spec=spec, cells=cells, stats=stats, failures=failures)

    def run_config(self, config: SimulationConfig) -> AggregateMetrics:
        """Run one configuration's trials through the engine.

        Drop-in equivalent of
        ``MergeSimulation(config).run()`` — same seeds, same
        aggregation — but cached and parallel.
        """
        jobs = jobs_for_config(config)
        metrics, _, _ = self._run_jobs(jobs, manifest=None)
        return AggregateMetrics(
            config_description=config.describe(),
            trials=[m for m in metrics if m is not None],
        )

    def backend(self):
        """Context manager routing ``MergeSimulation.run`` through this engine.

        While active, every configuration simulated anywhere in the
        process — including inside registered figure/table experiments —
        fans its trials through the worker pool and the result store::

            with engine.backend():
                run_experiments(["fig-3.2a"], scale)
        """
        from repro.api import RunContext

        return RunContext(backend=self.run_config)

    # -- internals ----------------------------------------------------------

    def _run_jobs(
        self,
        jobs: list[SweepJob],
        manifest: Optional[CampaignManifest],
    ) -> tuple[list[Optional[MergeMetrics]], SweepStats, list[JobFailure]]:
        stats = SweepStats(total=len(jobs))
        start = time.perf_counter()
        results: dict[int, MergeMetrics] = {}
        failures: list[JobFailure] = []
        self.progress.on_begin(stats)

        def settle(job: SweepJob, outcome: str) -> None:
            stats.count(outcome)
            stats.wall_s = time.perf_counter() - start
            if manifest is not None:
                manifest.record(job.key, "done" if outcome != FAILED else "failed")
            self.progress.on_job(job, outcome, stats)

        pending: list[SweepJob] = []
        for job in jobs:
            cached = self.store.get(job.key) if self.store is not None else None
            if cached is not None:
                results[job.index] = cached
                settle(job, CACHED)
            else:
                pending.append(job)

        def complete(job: SweepJob, payload: dict) -> None:
            metrics = MergeMetrics.from_dict(payload["metrics"])
            results[job.index] = metrics
            stats.sim_s += payload.get("elapsed_s") or 0.0
            if self.store is not None:
                self.store.put(
                    job.key,
                    metrics,
                    config=config_to_dict(job.config),
                    seed=job.seed,
                    elapsed_s=payload.get("elapsed_s"),
                )
            settle(job, COMPUTED)

        def fail(job: SweepJob, attempts: int, error: BaseException) -> None:
            failures.append(
                JobFailure(
                    index=job.index,
                    key=job.key,
                    description=job.describe(),
                    attempts=attempts,
                    error=f"{type(error).__name__}: {error}",
                )
            )
            settle(job, FAILED)

        if pending:
            if self.workers <= 1:
                self._run_inline(pending, complete, fail, stats)
            else:
                self._run_pooled(pending, complete, fail, stats)

        stats.wall_s = time.perf_counter() - start
        self.progress.on_end(stats)
        if failures and not self.allow_partial:
            raise SweepError(failures)
        ordered = [results.get(job.index) for job in jobs]
        return ordered, stats, failures

    def _payload(self, job: SweepJob) -> dict:
        return {
            "config": config_to_dict(job.config),
            "trial": job.trial,
            "timeout_s": self.timeout_s,
        }

    def _run_inline(self, pending, complete, fail, stats: SweepStats) -> None:
        for group in self._cell_groups(pending):
            if len(group) > 1 and _batchable(group[0].config):
                # One worker call per cell: a batch-capable kernel runs
                # the whole trial group through its flattened runner.
                try:
                    payload = {
                        "config": config_to_dict(group[0].config),
                        "trials": [job.trial for job in group],
                        "timeout_s": self.timeout_s,
                    }
                    batch_results = execute_batch(payload)
                except Exception:
                    # Whatever failed (a timeout aborts the whole batch
                    # call), the per-job path retries each trial with
                    # its full budget and attributes failures precisely.
                    stats.retries += 1
                else:
                    for job, result in zip(group, batch_results):
                        complete(job, result)
                    continue
            for job in group:
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        complete(job, execute_job(self._payload(job)))
                        break
                    except Exception as exc:
                        if attempts > self.retries:
                            fail(job, attempts, exc)
                            break
                        stats.retries += 1

    @staticmethod
    def _cell_groups(pending: list[SweepJob]) -> list[list[SweepJob]]:
        """Split ``pending`` into runs of jobs sharing a grid cell.

        Pending jobs arrive in expansion order, so one cell's uncached
        trials are always adjacent; cache hits merely shrink a group.
        """
        groups: list[list[SweepJob]] = []
        for job in pending:
            if groups and groups[-1][0].cell == job.cell:
                groups[-1].append(job)
            else:
                groups.append([job])
        return groups

    def _run_pooled(self, pending, complete, fail, stats: SweepStats) -> None:
        attempts: dict[int, int] = {job.index: 0 for job in pending}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending))
        ) as pool:
            futures: dict[concurrent.futures.Future, SweepJob] = {}

            def submit(job: SweepJob) -> None:
                attempts[job.index] += 1
                futures[pool.submit(execute_job, self._payload(job))] = job

            for job in pending:
                submit(job)
            while futures:
                done, _ = concurrent.futures.wait(
                    futures, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    job = futures.pop(future)
                    try:
                        complete(job, future.result())
                    except Exception as exc:
                        if attempts[job.index] <= self.retries:
                            stats.retries += 1
                            submit(job)
                        else:
                            fail(job, attempts[job.index], exc)
