"""Canonical configuration serialization and content-addressed keys.

A sweep cell is cached under a key derived from every code-relevant
simulation parameter plus the trial seed: same configuration and seed
always hash to the same key; changing *any* parameter — even an
observability flag like ``record_timelines``, which alters what the
metrics contain — produces a new key.  ``trials`` and ``base_seed`` are
deliberately excluded because the cache works at *trial* granularity:
the per-trial seed (``base_seed + trial``) is hashed instead, so a
10-trial sweep reuses the first five trials of an earlier 5-trial sweep.

``CACHE_SCHEMA_VERSION`` is folded into the hash; bump it whenever the
simulator's behaviour or the metrics serialization changes in a way
that invalidates previously cached results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.core.parameters import (
    CachePolicy,
    DiskParameters,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.disks.drive import QueueDiscipline
from repro.disks.geometry import DiskGeometry
from repro.faults.plan import FaultPlan

#: Bump to invalidate every previously cached result.
#: 2: fault-injection counters added to DriveStats / MergeMetrics.
CACHE_SCHEMA_VERSION = 2

#: The explicit cache-key inventory of every ``SimulationConfig`` field.
#: Adding a field to the dataclass requires a decision here — is it
#: behaviour-relevant (``KNOWN_CONFIG_FIELDS``, and bump
#: ``CACHE_SCHEMA_VERSION``) or deliberately excluded from the key
#: (``KEY_EXCLUDED_FIELDS``)?  Lint rule RPR003 parses both modules and
#: fails when the inventory and the dataclass disagree;
#: ``tests/sweep/test_keys.py`` enforces the same invariant at runtime.
KNOWN_CONFIG_FIELDS = (
    "num_runs",
    "num_disks",
    "strategy",
    "prefetch_depth",
    "blocks_per_run",
    "cache_capacity",
    "synchronized",
    "cpu_ms_per_block",
    "cache_policy",
    "victim_selector",
    "disk",
    "geometry",
    "stream_across_requests",
    "queue_discipline",
    "write_disks",
    "write_buffer_blocks",
    "record_timelines",
    "record_requests",
    "adaptive_depth",
    "fault_plan",
)

#: Fields deliberately absent from cache keys: ``trials``/``base_seed``
#: because the cache works at per-trial granularity (the derived trial
#: seed is hashed instead), ``kernel`` because both kernels produce
#: bit-identical metrics (enforced by the bench equivalence suite) and
#: must share cache entries.
KEY_EXCLUDED_FIELDS = ("trials", "base_seed", "kernel")

#: Enum-valued ``SimulationConfig`` fields and their types, used both to
#: serialize (enum -> value) and to coerce plain strings from CLI /
#: JSON sweep specs back into enums.
ENUM_FIELDS: dict[str, type[enum.Enum]] = {
    "strategy": PrefetchStrategy,
    "cache_policy": CachePolicy,
    "victim_selector": VictimSelector,
    "queue_discipline": QueueDiscipline,
}

#: Nested-dataclass fields and their types.
NESTED_FIELDS: dict[str, type] = {
    "disk": DiskParameters,
    "geometry": DiskGeometry,
}


def config_to_dict(config: SimulationConfig) -> dict:
    """Flatten a config to a JSON-able dict (inverse: :func:`config_from_dict`)."""
    out: dict[str, Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, enum.Enum):
            value = value.value
        elif isinstance(value, FaultPlan):
            value = value.to_dict()
        elif dataclasses.is_dataclass(value):
            value = dataclasses.asdict(value)
        out[field.name] = value
    return out


def coerce_params(params: dict) -> dict:
    """Coerce plain JSON values (strings, dicts) to config field types.

    Lets sweep specs written in JSON or parsed from the command line say
    ``{"strategy": "inter-run"}`` instead of importing the enum.
    Values already of the right type pass through unchanged.
    """
    out = dict(params)
    for name, enum_cls in ENUM_FIELDS.items():
        if name in out and not isinstance(out[name], enum_cls):
            out[name] = enum_cls(out[name])
    for name, data_cls in NESTED_FIELDS.items():
        if name in out and isinstance(out[name], dict):
            out[name] = data_cls(**out[name])
    if isinstance(out.get("fault_plan"), dict):
        out["fault_plan"] = FaultPlan.from_dict(out["fault_plan"])
    return out


def config_from_dict(data: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_dict` output."""
    return SimulationConfig(**coerce_params(data))


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(config: SimulationConfig, seed: int) -> str:
    """Content address of one simulation trial: sha256 hex digest."""
    payload = config_to_dict(config)
    for name in KEY_EXCLUDED_FIELDS:
        payload.pop(name, None)
    # A behaviourally empty fault plan is byte-identical to no plan, so
    # both address the same cached trial.
    if config.fault_plan is not None and config.fault_plan.is_empty():
        payload["fault_plan"] = None
    payload["__seed__"] = seed
    payload["__schema__"] = CACHE_SCHEMA_VERSION
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
