"""Sweep observability: live counters, console reporting, JSON export.

The engine calls a :class:`ProgressListener` at campaign start, after
every job settles (cached / computed / failed), and at the end.  The
bundled listeners are :class:`ConsoleProgress` (one status line per
interval plus a final summary) and :class:`NullProgress`; anything that
implements the same three methods — a TUI, a metrics pusher — plugs in
the same way.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, TextIO

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.spec import SweepJob

#: How a settled job was satisfied.
CACHED = "cached"
COMPUTED = "computed"
FAILED = "failed"


@dataclass
class SweepStats:
    """Live counters for one engine invocation."""

    total: int = 0
    cached: int = 0
    computed: int = 0
    failed: int = 0
    retries: int = 0
    wall_s: float = 0.0
    sim_s: float = 0.0  #: summed in-worker simulation time
    started_at: float = field(default_factory=time.time)

    @property
    def done(self) -> int:
        return self.cached + self.computed + self.failed

    @property
    def throughput(self) -> float:
        """Settled jobs per wall-clock second."""
        return self.done / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        return self.cached / self.total if self.total else 0.0

    def count(self, outcome: str) -> None:
        if outcome == CACHED:
            self.cached += 1
        elif outcome == COMPUTED:
            self.computed += 1
        elif outcome == FAILED:
            self.failed += 1
        else:
            raise ValueError(f"unknown outcome {outcome!r}")

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "cached": self.cached,
            "computed": self.computed,
            "failed": self.failed,
            "retries": self.retries,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "throughput_jobs_per_s": self.throughput,
            "cache_hit_ratio": self.cache_hit_ratio,
            "started_at": self.started_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepStats":
        """Inverse of :meth:`to_dict`.

        ``throughput_jobs_per_s`` and ``cache_hit_ratio`` are derived
        properties, recomputed rather than stored; reading them here
        keeps the round-trip total and documents the asymmetry.
        """
        data = dict(data)
        data.pop("throughput_jobs_per_s", None)
        data.pop("cache_hit_ratio", None)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def export_json(self, path: Path | str) -> Path:
        """Write the counters as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    def summary(self) -> str:
        return (
            f"jobs: {self.total} total = {self.computed} computed + "
            f"{self.cached} cached + {self.failed} failed; "
            f"wall {self.wall_s:.1f}s; {self.throughput:.1f} jobs/s; "
            f"cache hit {self.cache_hit_ratio:.0%}"
        )


class ProgressListener:
    """No-op base: override any subset of the callbacks."""

    def on_begin(self, stats: SweepStats) -> None:
        pass

    def on_job(self, job: "SweepJob", outcome: str, stats: SweepStats) -> None:
        pass

    def on_end(self, stats: SweepStats) -> None:
        pass


class NullProgress(ProgressListener):
    pass


class ConsoleProgress(ProgressListener):
    """Streams ``[sweep] 12/40 ...`` lines to a text stream."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        every: int = 1,
    ) -> None:
        self.stream = stream or sys.stderr
        self.every = max(1, every)

    def on_begin(self, stats: SweepStats) -> None:
        print(f"[sweep] {stats.total} jobs queued", file=self.stream)
        self.stream.flush()

    def on_job(self, job: "SweepJob", outcome: str, stats: SweepStats) -> None:
        if stats.done % self.every and stats.done != stats.total:
            return
        print(
            f"[sweep] {stats.done}/{stats.total} "
            f"({stats.computed} computed, {stats.cached} cached, "
            f"{stats.failed} failed) {outcome}: {job.describe()}",
            file=self.stream,
        )
        self.stream.flush()

    def on_end(self, stats: SweepStats) -> None:
        print(f"[sweep] {stats.summary()}", file=self.stream)
        self.stream.flush()
