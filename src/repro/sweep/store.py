"""Persistent, content-addressed result store and campaign checkpoints.

Results live one JSON file per trial under ``<root>/<key[:2]>/<key>.json``
(keyed by :func:`repro.sweep.keys.cache_key`), written atomically via a
temp file + ``os.replace`` so a killed sweep never leaves a truncated
entry.  A re-run of the same sweep finds every finished trial by key and
skips the simulation — that *is* the resume mechanism; the campaign
manifest under ``<root>/campaigns/<name>.json`` adds an observable
checkpoint (spec hash, per-key status, counts) that tooling and humans
can inspect mid-flight.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.core.metrics import MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.sweep.keys import CACHE_SCHEMA_VERSION, cache_key

#: Default store location (gitignored).
DEFAULT_CACHE_DIR = Path("results") / "cache"


def compute_key(config: SimulationConfig, trial: int = 0) -> str:
    """Content address of trial ``trial`` of ``config``.

    The public spelling of the key derivation every store consumer must
    share: trial ``t`` is keyed by its derived seed
    ``config.base_seed + t``, exactly as the sweep engine expands jobs
    (:func:`repro.sweep.spec.jobs_for_config`) and the serve layer
    answers requests — byte-identical keys are what make the cache a
    shared global answer store.
    """
    return cache_key(config, config.base_seed + trial)


def lookup(
    config: SimulationConfig,
    trial: int = 0,
    store: Optional["ResultStore"] = None,
) -> Optional[MergeMetrics]:
    """Cached metrics of one trial of ``config``, or ``None`` on a miss.

    The one-call read path over :func:`compute_key` +
    :meth:`ResultStore.get`, so callers never reach into store
    internals.  ``store`` defaults to a :class:`ResultStore` at
    :data:`DEFAULT_CACHE_DIR`.
    """
    if store is None:
        store = ResultStore()
    return store.get(compute_key(config, trial))


def atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON at ``path`` via temp file + ``os.replace``.

    The store's one write primitive, shared by trial entries, campaign
    manifests, and the dist coordinator's shard checkpoints: a reader
    never observes a truncated file, and a crash mid-write leaves only
    an orphaned ``*<key>.json*.tmp`` sibling (reclaimed by
    :func:`repro.sweep.gc.collect_garbage` — live entries always end in
    ``.json``, so the ``*.tmp`` namespace is exclusively garbage).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


#: Backward-compat spelling (pre-GC internal name).
_atomic_write_json = atomic_write_json


class ResultStore:
    """Content-addressed cache of simulated trials."""

    def __init__(self, root: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[MergeMetrics]:
        """Cached metrics for ``key``, or ``None`` on any miss.

        Unreadable or schema-mismatched entries count as misses (the
        sweep recomputes and overwrites them) rather than errors.
        """
        try:
            with open(self.path_for(key)) as handle:
                payload = json.load(handle)
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            return MergeMetrics.from_dict(payload["metrics"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(
        self,
        key: str,
        metrics: MergeMetrics,
        *,
        config: Optional[dict] = None,
        seed: Optional[int] = None,
        elapsed_s: Optional[float] = None,
    ) -> Path:
        """Persist one trial's metrics; returns the entry path."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "config": config,
            "seed": seed,
            "elapsed_s": elapsed_s,
            "saved_at": time.time(),
            "metrics": metrics.to_dict(),
        }
        path = self.path_for(key)
        _atomic_write_json(path, payload)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.name == "campaigns" or not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def purge(self) -> int:
        """Delete every cached trial; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def tmp_files(self) -> Iterator[Path]:
        """Orphaned ``*.tmp`` files left by crashed atomic writes.

        Live entries always end in ``.json`` (trials, manifests), so
        anything matching ``*.tmp`` anywhere under the root — shard
        directories and ``campaigns/`` alike — is reclaimable garbage.
        """
        if not self.root.is_dir():
            return
        yield from sorted(self.root.rglob("*.tmp"))


class CampaignManifest:
    """Checkpoint file for one named sweep campaign.

    Records the spec hash and the status of every job key
    (``pending`` / ``done`` / ``failed``) so an interrupted campaign is
    inspectable and a resumed one can verify it matches the original
    spec.  Written atomically after every state change.
    """

    def __init__(self, root: Path | str, name: str) -> None:
        self.path = Path(root) / "campaigns" / f"{name}.json"
        self.name = name
        self._state: dict = {}

    def load(self) -> Optional[dict]:
        try:
            with open(self.path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def begin(self, spec_dict: dict, spec_key: str, job_keys: list[str]) -> None:
        """Start (or resume) a campaign.

        Resuming with a *different* spec under the same name raises —
        that would silently interleave results of two sweeps.
        """
        previous = self.load()
        if previous is not None and previous.get("spec_key") != spec_key:
            raise ValueError(
                f"campaign {self.name!r} already exists with a different "
                f"spec; pick a new name or delete {self.path}"
            )
        jobs = dict.fromkeys(job_keys, "pending")
        if previous is not None:
            for key, status in previous.get("jobs", {}).items():
                if key in jobs and status == "done":
                    jobs[key] = "done"
        self._state = {
            "name": self.name,
            "spec_key": spec_key,
            "spec": spec_dict,
            "started_at": (previous or {}).get("started_at", time.time()),
            "updated_at": time.time(),
            "jobs": jobs,
        }
        self._flush()

    def record(self, key: str, status: str) -> None:
        self._state.setdefault("jobs", {})[key] = status
        self._state["updated_at"] = time.time()
        self._flush()

    def record_shard(self, shard_id: str, status: str, **fields) -> None:
        """Checkpoint one dist shard (``pending``/``leased``/``done``).

        Shard records live alongside the per-key job statuses so an
        interrupted distributed campaign shows *which contiguous job
        ranges* were in flight, not just which keys finished; extra
        ``fields`` (worker id, job range) are stored verbatim.
        """
        shards = self._state.setdefault("shards", {})
        shards[shard_id] = {"status": status, **fields}
        self._state["updated_at"] = time.time()
        self._flush()

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for status in self._state.get("jobs", {}).values():
            counts[status] = counts.get(status, 0) + 1
        return counts

    def is_complete(self) -> bool:
        """True when every recorded job reached ``done``."""
        jobs = self._state.get("jobs", {})
        return bool(jobs) and all(s == "done" for s in jobs.values())

    def _flush(self) -> None:
        atomic_write_json(self.path, self._state)
