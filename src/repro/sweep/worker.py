"""The subprocess-side job runner.

``execute_job`` is a module-level function (so it pickles cleanly into a
``ProcessPoolExecutor``) that rebuilds the configuration from its
serialized form, runs exactly one seeded trial through
:func:`repro.api.run_trials`, and hands the metrics back as a JSON-able
dict.  ``execute_batch`` is its many-trials sibling: one config, many
trial indices, one ``run_trials`` call — which lets a ``batch`` kernel
execute the whole group through its flattened batch runner.

Timeout enforcement lives in ``repro.api.run_trials`` (per-trial
``SIGALRM``, re-armed on an interval): the pool process stays alive and
reusable, and the parent sees an ordinary :class:`JobTimeoutError` it
can retry or record without tearing the pool down.

``SIGALRM`` is POSIX-only and main-thread-only.  Where it is
unenforceable (Windows, worker threads) jobs run without a wall-clock
guard and the result records ``timeout_enforced: false`` so callers can
tell a completed-in-time job from an unguarded one.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import api
from repro.sweep.keys import config_from_dict

#: Whether this platform can enforce per-job timeouts at all.
#: (Re-exported from repro.api for backwards compatibility.)
HAVE_SIGALRM = api.HAVE_SIGALRM


class JobTimeoutError(RuntimeError):
    """A job exceeded its per-job wall-clock budget."""


def execute_job(payload: dict) -> dict:
    """Run one trial described by ``payload`` and return its result.

    Payload keys: ``config`` (dict from
    :func:`repro.sweep.keys.config_to_dict`), ``trial`` (int), and
    optionally ``timeout_s``.  Returns ``{"metrics": ..., "elapsed_s": ...}``.
    """
    config = config_from_dict(payload["config"])
    trial = payload["trial"]
    timeout_s: Optional[float] = payload.get("timeout_s")

    start = time.perf_counter()
    try:
        metrics = api.run_trials(
            [config], trials=[trial], timeout_s=timeout_s
        )[0]
    except api.TrialTimeoutError as exc:
        raise JobTimeoutError(str(exc)) from None
    return {
        "metrics": metrics.to_dict(),
        "elapsed_s": time.perf_counter() - start,
        "timeout_enforced": _timeout_enforced(timeout_s),
    }


def execute_batch(payload: dict) -> list[dict]:
    """Run many trials of one config; returns one result dict per trial.

    Payload keys: ``config`` (dict), ``trials`` (list of ints), and
    optionally ``timeout_s`` (per-trial budget).  The trials execute as
    a single :func:`repro.api.run_trials` batch — a ``batch`` kernel
    runs them through its flattened batch runner — and results come
    back in ``trials`` order, shaped exactly like :func:`execute_job`
    results.  ``elapsed_s`` is the batch wall-clock split evenly across
    the trials (individual trials are not timed inside a batch).
    """
    config = config_from_dict(payload["config"])
    trials: list[int] = list(payload["trials"])
    timeout_s: Optional[float] = payload.get("timeout_s")

    start = time.perf_counter()
    try:
        metrics = api.run_trials(
            [config] * len(trials), trials=trials, timeout_s=timeout_s
        )
    except api.TrialTimeoutError as exc:
        raise JobTimeoutError(str(exc)) from None
    elapsed = time.perf_counter() - start
    share = elapsed / len(trials) if trials else 0.0
    enforced = _timeout_enforced(timeout_s)
    return [
        {
            "metrics": m.to_dict(),
            "elapsed_s": share,
            "timeout_enforced": enforced,
        }
        for m in metrics
    ]


def _timeout_enforced(timeout_s: Optional[float]) -> bool:
    """Was the requested budget actually guarded (or none requested)?"""
    if not timeout_s:
        return True
    return api.timeouts_enforceable()
