"""The subprocess-side job runner.

``execute_job`` is a module-level function (so it pickles cleanly into a
``ProcessPoolExecutor``) that rebuilds the configuration from its
serialized form, runs exactly one seeded trial, and hands the metrics
back as a JSON-able dict.  The per-job timeout is enforced *inside* the
worker with ``SIGALRM`` — the pool process stays alive and reusable, and
the parent sees an ordinary :class:`JobTimeoutError` it can retry or
record without tearing the pool down.

``SIGALRM`` is POSIX-only.  Where it is missing (Windows, some
embedded interpreters) jobs run without a wall-clock guard and the
result records ``timeout_enforced: false`` so callers can tell a
completed-in-time job from an unguarded one.
"""

from __future__ import annotations

import signal
import time
from typing import Optional

from repro.sweep.keys import config_from_dict

#: Whether this platform can enforce per-job timeouts at all.
HAVE_SIGALRM = hasattr(signal, "SIGALRM")


class JobTimeoutError(RuntimeError):
    """A job exceeded its per-job wall-clock budget."""


def _alarm_handler(signum, frame):  # pragma: no cover - fires mid-simulation
    raise JobTimeoutError("job exceeded its timeout")


def execute_job(payload: dict) -> dict:
    """Run one trial described by ``payload`` and return its result.

    Payload keys: ``config`` (dict from
    :func:`repro.sweep.keys.config_to_dict`), ``trial`` (int), and
    optionally ``timeout_s``.  Returns ``{"metrics": ..., "elapsed_s": ...}``.
    """
    from repro.core.simulator import MergeSimulation

    config = config_from_dict(payload["config"])
    trial = payload["trial"]
    timeout_s: Optional[float] = payload.get("timeout_s")

    enforce = bool(timeout_s) and HAVE_SIGALRM
    start = time.perf_counter()
    previous_handler = None
    if enforce:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        # Re-arm on an interval: a one-shot alarm can be lost when the
        # delivery lands inside a context that swallows the raise (GC
        # callbacks, C extensions), which would silently drop the guard.
        signal.setitimer(signal.ITIMER_REAL, timeout_s, timeout_s)
    try:
        metrics = MergeSimulation(config).run_trial(trial=trial)
    finally:
        if enforce:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    return {
        "metrics": metrics.to_dict(),
        "elapsed_s": time.perf_counter() - start,
        "timeout_enforced": enforce or not timeout_s,
    }
