"""Result-store compaction: reclaim garbage the atomic-write protocol leaves.

Two kinds of debris accumulate under a long-lived store root:

* **orphaned temp files** — ``atomic_write_json`` stages every entry as
  ``<name>.json<random>.tmp`` before ``os.replace``; a crash (SIGKILL,
  power loss) between ``mkstemp`` and the rename strands the temp file
  forever.  Live entries always end in ``.json``, so everything in the
  ``*.tmp`` namespace is garbage by construction.
* **stale campaign manifests** — checkpoints under ``campaigns/`` whose
  every job reached ``done`` (the content-addressed store *is* the
  resume state, so a finished manifest is pure history), plus manifests
  that no longer parse as JSON.

Collection is age-gated: only files older than ``min_age_s`` are
touched, so a concurrently running sweep's in-flight temp files and
just-finished manifests survive.  ``repro sweep gc`` is the CLI face.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Optional

from repro.sweep.store import ResultStore

#: Default grace period: anything younger is presumed in flight.
DEFAULT_MIN_AGE_S = 3600.0


@dataclasses.dataclass
class GCReport:
    """What one collection pass found (and, unless dry-run, removed)."""

    root: str
    dry_run: bool
    tmp_removed: list[str] = dataclasses.field(default_factory=list)
    manifests_removed: list[str] = dataclasses.field(default_factory=list)
    bytes_freed: int = 0
    live_entries: int = 0
    skipped_young: int = 0

    @property
    def removed(self) -> int:
        return len(self.tmp_removed) + len(self.manifests_removed)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GCReport":
        names = {field.name for field in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


def _age_s(path: Path, now: float) -> Optional[float]:
    try:
        return now - path.stat().st_mtime
    except OSError:
        return None  # vanished under us: someone else collected it


def _manifest_is_garbage(path: Path, remove_completed: bool) -> bool:
    try:
        state = json.loads(path.read_text())
    except (OSError, ValueError):
        return True  # unparseable checkpoint: useless to any resume
    if not remove_completed:
        return False
    jobs = state.get("jobs") if isinstance(state, dict) else None
    if not isinstance(jobs, dict) or not jobs:
        return False
    return all(status == "done" for status in jobs.values())


def collect_garbage(
    store: ResultStore,
    *,
    min_age_s: float = DEFAULT_MIN_AGE_S,
    remove_completed_manifests: bool = False,
    dry_run: bool = False,
    now: Optional[float] = None,
) -> GCReport:
    """One compaction pass over ``store``; returns what was reclaimed.

    Never touches live ``.json`` trial entries — the crash-mid-write
    test in ``tests/sweep/test_gc.py`` pins that invariant.  ``now``
    is injectable for tests; defaults to wall clock.
    """
    clock_now = time.time() if now is None else now
    report = GCReport(root=str(store.root), dry_run=dry_run)

    for tmp in store.tmp_files():
        age = _age_s(tmp, clock_now)
        if age is None:
            continue
        if age < min_age_s:
            report.skipped_young += 1
            continue
        size = tmp.stat().st_size
        if not dry_run:
            try:
                tmp.unlink()
            except OSError:
                continue
        report.tmp_removed.append(str(tmp))
        report.bytes_freed += size

    campaigns = store.root / "campaigns"
    if campaigns.is_dir():
        for manifest in sorted(campaigns.glob("*.json")):
            age = _age_s(manifest, clock_now)
            if age is None:
                continue
            if age < min_age_s:
                report.skipped_young += 1
                continue
            if not _manifest_is_garbage(manifest, remove_completed_manifests):
                continue
            size = manifest.stat().st_size
            if not dry_run:
                try:
                    manifest.unlink()
                except OSError:
                    continue
            report.manifests_removed.append(str(manifest))
            report.bytes_freed += size

    report.live_entries = len(store)
    return report


__all__ = ["GCReport", "collect_garbage", "DEFAULT_MIN_AGE_S"]
