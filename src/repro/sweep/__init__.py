"""repro.sweep -- parallel parameter sweeps with a persistent result cache.

The paper's figures and tables are sweeps over runs ``k``, disks ``D``,
prefetch depth ``N``, and cache size ``C``.  This subsystem turns such a
sweep into a resumable campaign:

* :class:`SweepSpec` declares the grid; it expands deterministically
  into per-trial :class:`SweepJob` units with seeds matching the serial
  path exactly.
* :class:`SweepEngine` executes jobs on a process pool with per-job
  timeouts and bounded retries, returning results in expansion order.
* :class:`ResultStore` content-addresses every finished trial on disk,
  so re-running a sweep recomputes only missing cells and an
  interrupted campaign resumes where it stopped.
* :mod:`repro.sweep.progress` streams live counters to the console and
  exports them as JSON.

Quickstart::

    from repro.sweep import ResultStore, SweepEngine, SweepSpec

    spec = SweepSpec(
        name="depth-sweep",
        base={"num_runs": 25, "strategy": "intra-run"},
        grid={"num_disks": [1, 5], "prefetch_depth": [5, 10, 20]},
        trials=5,
    )
    engine = SweepEngine(store=ResultStore("results/cache"), workers=4)
    result = engine.run_spec(spec)
    for cell in result.cells:
        print(cell.config_description, f"{cell.total_time_s.mean:.1f}s")
"""

from repro.sweep.engine import (
    JobFailure,
    SweepEngine,
    SweepError,
    SweepResult,
)
from repro.sweep.keys import (
    CACHE_SCHEMA_VERSION,
    cache_key,
    config_from_dict,
    config_to_dict,
)
from repro.sweep.progress import (
    ConsoleProgress,
    NullProgress,
    ProgressListener,
    SweepStats,
)
from repro.sweep.spec import SweepJob, SweepSpec, jobs_for_config
from repro.sweep.store import (
    DEFAULT_CACHE_DIR,
    CampaignManifest,
    ResultStore,
    compute_key,
    lookup,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignManifest",
    "ConsoleProgress",
    "DEFAULT_CACHE_DIR",
    "JobFailure",
    "NullProgress",
    "ProgressListener",
    "ResultStore",
    "SweepEngine",
    "SweepError",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "cache_key",
    "compute_key",
    "config_from_dict",
    "config_to_dict",
    "jobs_for_config",
    "lookup",
]
