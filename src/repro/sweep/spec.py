"""Declarative sweep specifications.

A :class:`SweepSpec` names a campaign and describes a parameter grid:
``base`` holds the :class:`~repro.core.parameters.SimulationConfig`
keyword arguments common to every cell, ``grid`` maps parameter names
to lists of values swept in cross product.  Expansion is deterministic:
cells enumerate in the insertion order of ``grid`` (last key varies
fastest, like nested for-loops), and each cell expands into one
:class:`SweepJob` per trial with seed ``base_seed + trial`` — exactly
the seeds the serial path uses, so a sweep's aggregated results are
bit-identical to running each configuration through
:class:`~repro.core.simulator.MergeSimulation` in a loop.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.parameters import SimulationConfig
from repro.sweep.keys import canonical_json, coerce_params, config_to_dict
from repro.sweep.store import compute_key


@dataclass(frozen=True)
class SweepJob:
    """One unit of work: a single seeded trial of one grid cell."""

    index: int  #: position in deterministic expansion order
    cell: int  #: index of the owning grid cell
    trial: int  #: trial number within the cell
    config: SimulationConfig
    key: str  #: content address (see :func:`repro.sweep.keys.cache_key`)

    @property
    def seed(self) -> int:
        return self.config.base_seed + self.trial

    def describe(self) -> str:
        return f"{self.config.describe()} trial={self.trial}"


def jobs_for_config(
    config: SimulationConfig,
    cell: int = 0,
    first_index: int = 0,
) -> list[SweepJob]:
    """Expand one configuration into its per-trial jobs."""
    return [
        SweepJob(
            index=first_index + trial,
            cell=cell,
            trial=trial,
            config=config,
            key=compute_key(config, trial),
        )
        for trial in range(config.trials)
    ]


@dataclass(frozen=True)
class SweepSpec:
    """A named, declarative parameter sweep.

    Attributes:
        name: campaign name (used for the checkpoint manifest).
        base: config kwargs shared by every cell.  String enum values
            (``"inter-run"``) are accepted and coerced.
        grid: parameter name -> list of values, expanded in cross
            product in insertion order.
        trials: trials per cell (unless overridden in ``base``/``grid``).
        base_seed: root seed (unless overridden in ``base``/``grid``).
    """

    name: str = "sweep"
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    trials: int = 1
    base_seed: int = 1992

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        overlap = set(self.base) & set(self.grid)
        if overlap:
            raise ValueError(
                f"parameters {sorted(overlap)} appear in both base and grid"
            )
        for name, values in self.grid.items():
            if not values:
                raise ValueError(f"grid parameter {name!r} has no values")

    def cell_params(self) -> list[dict]:
        """Concrete parameter dict of every cell, in expansion order."""
        names = list(self.grid)
        combos = itertools.product(*(self.grid[name] for name in names))
        return [
            {**self.base, **dict(zip(names, combo))} for combo in combos
        ]

    def cells(self) -> list[SimulationConfig]:
        """Concrete configuration of every cell, in expansion order."""
        configs = []
        for params in self.cell_params():
            merged = {
                "trials": self.trials,
                "base_seed": self.base_seed,
                **coerce_params(params),
            }
            configs.append(SimulationConfig(**merged))
        return configs

    def jobs(self) -> list[SweepJob]:
        """Every (cell, trial) job, in deterministic order."""
        jobs: list[SweepJob] = []
        for cell, config in enumerate(self.cells()):
            jobs.extend(jobs_for_config(config, cell=cell, first_index=len(jobs)))
        return jobs

    def to_dict(self) -> dict:
        """JSON-able form (inverse: :meth:`from_dict`).

        Enum and dataclass values inside ``base``/``grid`` are flattened
        to plain JSON values; :func:`~repro.sweep.keys.coerce_params`
        restores them when the spec is expanded again.
        """
        return {
            "name": self.name,
            "base": _plain(dict(self.base)),
            "grid": {k: _plain(list(v)) for k, v in self.grid.items()},
            "trials": self.trials,
            "base_seed": self.base_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        return cls(
            name=data.get("name", "sweep"),
            base=data.get("base", {}),
            grid=data.get("grid", {}),
            trials=data.get("trials", 1),
            base_seed=data.get("base_seed", 1992),
        )

    def spec_key(self) -> str:
        """Stable hash of the whole spec (checkpoint sanity check)."""
        cells = [config_to_dict(config) for config in self.cells()]
        return hashlib.sha256(canonical_json(cells).encode("utf-8")).hexdigest()


def _plain(value: Any) -> Any:
    """Recursively replace enums/dataclasses with JSON-able values."""
    import dataclasses
    import enum

    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value
