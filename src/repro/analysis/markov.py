"""Markov analysis of the almost-full-cache policies.

The paper adopts the *conservative* policy (fetch only the demand block
when the cache cannot hold all ``D`` prefetch blocks) over the *greedy*
one (fill whatever space is free), citing the authors' companion
technical report: a Markov analysis of ``D`` disks with **one run per
disk** showing the conservative policy achieves higher average I/O
parallelism for all reasonable cache sizes.  This module rebuilds that
analysis.

Model (the TR's setting, ``N = 1``):

* ``D`` infinite runs, one per disk; cache of ``C`` blocks.
* Each step depletes one block of a uniformly chosen run.  A run's
  last cached block being depleted triggers a *fetch event*:

  - **conservative**: if the ``D`` blocks of a full prefetch fit, every
    disk fetches one block (parallelism ``D``); otherwise only the
    demand disk fetches (parallelism 1).
  - **greedy**: the demand disk fetches, then as many other disks as
    free space allows, chosen uniformly (parallelism ``1 + min(D - 1,
    free - 1)``).

* The state is the vector of cached blocks per run; by symmetry only
  the sorted multiset matters, which keeps the chain small.

``average_parallelism`` solves the chain for its stationary
distribution and returns the expected parallelism over fetch events --
the quantity the TR compares.  ``repro.experiments`` exposes this as
``tab-markov`` with a simulation cross-check.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Tuple

from repro.core.parameters import CachePolicy

State = Tuple[int, ...]  # sorted descending vector of cached blocks


def _canonical(counts: Iterable[int]) -> State:
    return tuple(sorted(counts, reverse=True))


def enumerate_states(d: int, capacity: int) -> list[State]:
    """All canonical states: ``d`` runs, each >= 1 block, sum <= C."""
    if d < 1:
        raise ValueError("D must be >= 1")
    if capacity < d:
        raise ValueError("cache must hold at least one block per run")
    states = set()
    for combo in itertools.combinations_with_replacement(
        range(1, capacity - d + 2), d
    ):
        if sum(combo) <= capacity:
            states.add(_canonical(combo))
    return sorted(states)


@dataclass(frozen=True)
class MarkovResult:
    """Stationary behaviour of one policy."""

    policy: CachePolicy
    num_disks: int
    capacity: int
    average_parallelism: float
    fetch_rate: float  # fetch events per depletion step
    num_states: int


def _transitions(
    state: State,
    d: int,
    capacity: int,
    policy: CachePolicy,
) -> Dict[State, Fraction]:
    """Successor distribution of one depletion step from ``state``.

    Returns canonical successor states with exact probabilities.
    """
    result: Dict[State, Fraction] = {}
    pick = Fraction(1, d)
    for j in range(d):
        counts = list(state)
        if counts[j] > 1:
            counts[j] -= 1
            _add(result, _canonical(counts), pick)
            continue
        # Depleting run j's last block: fetch event.
        counts[j] = 0
        free = capacity - sum(counts)
        if policy is CachePolicy.CONSERVATIVE:
            if free >= d:
                successor = [c + 1 for c in counts]
            else:
                successor = list(counts)
                successor[j] = 1
            _add(result, _canonical(successor), pick)
            continue
        # Greedy: demand block first, then a uniform subset of the
        # other disks of size min(d - 1, free - 1).
        counts[j] = 1
        budget = min(d - 1, free - 1)
        others = [i for i in range(d) if i != j]
        if budget <= 0:
            _add(result, _canonical(counts), pick)
            continue
        subsets = list(itertools.combinations(others, budget))
        weight = pick / len(subsets)
        for subset in subsets:
            successor = list(counts)
            for i in subset:
                successor[i] += 1
            _add(result, _canonical(successor), weight)
    return result


def _add(table: Dict[State, Fraction], state: State, probability: Fraction) -> None:
    table[state] = table.get(state, Fraction(0)) + probability


def _fetch_statistics(
    state: State, d: int, capacity: int, policy: CachePolicy
) -> tuple[Fraction, Fraction]:
    """(P(fetch event), E[parallelism * 1{fetch}]) for one step."""
    pick = Fraction(1, d)
    fetch_probability = Fraction(0)
    parallelism_mass = Fraction(0)
    for j in range(d):
        if state[j] != 1:
            continue
        fetch_probability += pick
        free = capacity - sum(state) + 1  # after the depletion
        if policy is CachePolicy.CONSERVATIVE:
            parallelism = d if free >= d else 1
        else:
            parallelism = 1 + min(d - 1, free - 1)
        parallelism_mass += pick * parallelism
    return fetch_probability, parallelism_mass


def solve_stationary(
    d: int,
    capacity: int,
    policy: CachePolicy,
    iterations: int = 2000,
    tolerance: float = 1e-12,
) -> Dict[State, float]:
    """Stationary distribution by power iteration (float arithmetic)."""
    states = enumerate_states(d, capacity)
    index = {state: i for i, state in enumerate(states)}
    matrix: list[list[tuple[int, float]]] = [[] for _ in states]
    for state in states:
        row = index[state]
        for successor, probability in _transitions(
            state, d, capacity, policy
        ).items():
            matrix[row].append((index[successor], float(probability)))

    size = len(states)
    current = [1.0 / size] * size
    for _ in range(iterations):
        nxt = [0.0] * size
        for row, mass in enumerate(current):
            if mass == 0.0:
                continue
            for column, probability in matrix[row]:
                nxt[column] += mass * probability
        drift = max(abs(a - b) for a, b in zip(current, nxt))
        current = nxt
        if drift < tolerance:
            break
    return {state: current[index[state]] for state in states}


def average_parallelism(
    d: int,
    capacity: int,
    policy: CachePolicy,
) -> MarkovResult:
    """Expected I/O parallelism over fetch events, at stationarity."""
    stationary = solve_stationary(d, capacity, policy)
    fetch_rate = 0.0
    parallelism_mass = 0.0
    for state, probability in stationary.items():
        fetch_p, mass = _fetch_statistics(state, d, capacity, policy)
        fetch_rate += probability * float(fetch_p)
        parallelism_mass += probability * float(mass)
    average = parallelism_mass / fetch_rate if fetch_rate > 0 else 0.0
    return MarkovResult(
        policy=policy,
        num_disks=d,
        capacity=capacity,
        average_parallelism=average,
        fetch_rate=fetch_rate,
        num_states=len(stationary),
    )


def policy_comparison(d: int, capacities: Iterable[int]) -> list[dict]:
    """Conservative vs greedy parallelism over a cache-size sweep."""
    rows = []
    for capacity in capacities:
        conservative = average_parallelism(d, capacity, CachePolicy.CONSERVATIVE)
        greedy = average_parallelism(d, capacity, CachePolicy.GREEDY)
        rows.append(
            {
                "capacity": capacity,
                "conservative": conservative.average_parallelism,
                "greedy": greedy.average_parallelism,
                "advantage": (
                    conservative.average_parallelism
                    - greedy.average_parallelism
                ),
            }
        )
    return rows
