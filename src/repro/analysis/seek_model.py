"""Seek-distance distribution under random block depletion.

With ``k`` runs laid out contiguously on one disk and the next depleted
block chosen uniformly among the runs, the head moves a random number
``x`` of *runs* between consecutive requests (each run spanning ``m``
cylinders).  The paper derives

* ``P(x = 0) = 1/k``,
* ``P(x = i) = 2(k - i) / k^2`` for ``1 <= i <= k-1``,

whence ``E(x) = (k^2 - 1) / (3k) ~= k/3``.  Distributing the runs over
``D`` disks leaves the request sequence at each disk random, so the
same model applies per disk with ``k/D`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SeekDistanceModel:
    """The run-granularity seek-distance distribution for ``k`` runs."""

    num_runs: int

    def __post_init__(self) -> None:
        if self.num_runs < 1:
            raise ValueError("num_runs must be >= 1")

    def pmf(self, moves: int) -> float:
        """``P(x = moves)`` for ``0 <= moves <= k - 1`` (else 0)."""
        k = self.num_runs
        if moves == 0:
            return 1.0 / k
        if 1 <= moves <= k - 1:
            return 2.0 * (k - moves) / (k * k)
        return 0.0

    def support(self) -> range:
        return range(self.num_runs)

    def expected_moves(self) -> float:
        """``E(x) = (k^2 - 1) / (3k)``, exactly."""
        k = self.num_runs
        return (k * k - 1) / (3.0 * k)

    def expected_moves_approx(self) -> float:
        """The paper's ``k/3`` approximation."""
        return self.num_runs / 3.0

    def variance(self) -> float:
        """``Var(x)`` from the exact second moment."""
        mean = self.expected_moves()
        second = sum(i * i * self.pmf(i) for i in self.support())
        return second - mean * mean

    def expected_seek_ms(self, run_cylinders: float, seek_ms_per_cylinder: float) -> float:
        """Average seek time: ``m * E(x) * S`` milliseconds.

        The paper substitutes the ``k/3`` approximation here; we use it
        too so predictions match the printed numbers exactly.
        """
        return run_cylinders * self.expected_moves_approx() * seek_ms_per_cylinder


def per_disk_model(num_runs: int, num_disks: int) -> SeekDistanceModel:
    """Model for one disk of a ``D``-disk array holding ``k`` runs.

    The paper assumes ``k`` a multiple of ``D`` and uses ``k/D`` runs
    per disk (substituting ``ceil(k/D)`` otherwise).
    """
    runs_per_disk = -(-num_runs // num_disks)
    return SeekDistanceModel(runs_per_disk)
