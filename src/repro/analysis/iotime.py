"""Equations (1)-(4): average per-block I/O time.

All take the disk constants ``S`` (seek ms/cylinder), ``R`` (average
rotational latency, ms) and ``T`` (transfer ms/block), the run length
``m`` in cylinders, the merge order ``k``, the fetch size ``N`` and the
disk count ``D``.  The paper's approximation ``E(moves) = k/3`` is used
throughout (see :mod:`repro.analysis.seek_model` for the exact form).

These formulas describe configurations **without I/O overlap**: a
single disk, or synchronized multi-disk operation.  For unsynchronized
multi-disk operation they give the time *before* dividing by the
achieved concurrency (see :mod:`repro.analysis.urn_game`).
"""

from __future__ import annotations

from repro.core.parameters import DiskParameters


def no_prefetch_single_disk_block_ms(
    k: int,
    m: float,
    disk: DiskParameters,
) -> float:
    """Equation (1): ``tau = m (k/3) S + R + T``."""
    return (
        m * (k / 3.0) * disk.seek_ms_per_cylinder
        + disk.avg_rotational_latency_ms
        + disk.transfer_ms_per_block
    )


def intra_run_single_disk_block_ms(
    k: int,
    m: float,
    n: int,
    disk: DiskParameters,
) -> float:
    """Equation (2): ``tau = m (k/3N) S + R/N + T``.

    One seek and one rotational latency amortized over ``N`` contiguous
    blocks of the demand run.
    """
    if n < 1:
        raise ValueError("N must be >= 1")
    return (
        m * (k / (3.0 * n)) * disk.seek_ms_per_cylinder
        + disk.avg_rotational_latency_ms / n
        + disk.transfer_ms_per_block
    )


def no_prefetch_multi_disk_block_ms(
    k: int,
    m: float,
    d: int,
    disk: DiskParameters,
) -> float:
    """Equation (3): ``tau = m (k/3D) S + R + T``.

    Each disk holds ``k/D`` runs, shrinking the average seek; rotation
    and transfer are unchanged and there is no overlap (the merge
    stalls on every demand block).
    """
    if d < 1:
        raise ValueError("D must be >= 1")
    return (
        m * (k / (3.0 * d)) * disk.seek_ms_per_cylinder
        + disk.avg_rotational_latency_ms
        + disk.transfer_ms_per_block
    )


def intra_run_multi_disk_block_ms(
    k: int,
    m: float,
    n: int,
    d: int,
    disk: DiskParameters,
) -> float:
    """Equation (4): synchronized intra-run on D disks:
    ``tau = m (k/3ND) S + R/N + T``."""
    if n < 1 or d < 1:
        raise ValueError("N and D must be >= 1")
    return (
        m * (k / (3.0 * n * d)) * disk.seek_ms_per_cylinder
        + disk.avg_rotational_latency_ms / n
        + disk.transfer_ms_per_block
    )


def total_time_s(block_ms: float, k: int, blocks_per_run: int = 1000) -> float:
    """Total merge time in seconds for a no-overlap per-block time.

    The paper multiplies ``tau`` by the total number of blocks
    (``1000 k`` in the evaluation).
    """
    return block_ms * k * blocks_per_run / 1000.0
