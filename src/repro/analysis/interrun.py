"""Inter-run prefetching analysis and lower bounds.

**Synchronized inter-run model.**  One fetch cycle reads ``N`` blocks
on each of ``D`` disks and completes when the slowest disk finishes.
Disk ``i``'s service time is ``S_i = sigma_i + rho_i + T N`` with
``sigma`` the (random) seek and ``rho ~ Uniform(0, 2R)`` the rotational
latency.  Approximating the seek by its mean ``m k S / (3 D)`` and
using ``E(max of D uniforms on (0, 2R)) = 2 R D / (D + 1)``:

    E(cycle) = m k S / (3 D) + 2 R D / (D + 1) + T N

and since ``N D`` blocks arrive per cycle, the per-block time is

    tau = m k S / (3 N D^2) + 2 R / (N (D + 1)) + T / D.

**Lower bounds.**  The I/O time can never drop below the pure transfer
time: ``k * blocks_per_run * T`` on one disk and ``k * blocks_per_run *
T / D`` on ``D`` disks.  Inter-run prefetching approaches the ``1/D``
bound as the cache (and hence usable ``N``) grows; intra-run
prefetching alone saturates at ``sqrt(pi D / 2)``-fold concurrency and
cannot.
"""

from __future__ import annotations

from repro.core.parameters import DiskParameters


def expected_max_uniform(d: int, upper: float) -> float:
    """``E(max of d iid Uniform(0, upper)) = upper * d / (d + 1)``."""
    if d < 1:
        raise ValueError("d must be >= 1")
    return upper * d / (d + 1.0)


def inter_run_sync_cycle_ms(
    k: int,
    m: float,
    n: int,
    d: int,
    disk: DiskParameters,
) -> float:
    """Expected duration of one synchronized ``D``-disk fetch cycle."""
    if n < 1 or d < 1:
        raise ValueError("N and D must be >= 1")
    mean_seek = m * k * disk.seek_ms_per_cylinder / (3.0 * d)
    max_rotation = expected_max_uniform(d, 2.0 * disk.avg_rotational_latency_ms)
    return mean_seek + max_rotation + disk.transfer_ms_per_block * n


def inter_run_sync_block_ms(
    k: int,
    m: float,
    n: int,
    d: int,
    disk: DiskParameters,
) -> float:
    """Per-block time: the cycle time divided by the ``N D`` blocks read."""
    return inter_run_sync_cycle_ms(k, m, n, d, disk) / (n * d)


def inter_run_sync_total_s(
    k: int,
    m: float,
    n: int,
    d: int,
    disk: DiskParameters,
    blocks_per_run: int = 1000,
) -> float:
    """Total synchronized inter-run merge time in seconds."""
    return inter_run_sync_block_ms(k, m, n, d, disk) * k * blocks_per_run / 1000.0


def lower_bound_total_s(
    k: int,
    d: int,
    disk: DiskParameters,
    blocks_per_run: int = 1000,
) -> float:
    """Transfer-time lower bound: ``k * blocks_per_run * T / D`` seconds.

    51.2 s (k=25) and 102.4 s (k=50) on one disk; 10.25 s and 20.5 s on
    five disks -- the asymptotes of Figures 3.2 and 3.5.
    """
    if d < 1:
        raise ValueError("D must be >= 1")
    return k * blocks_per_run * disk.transfer_ms_per_block / d / 1000.0
