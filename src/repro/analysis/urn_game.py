"""The urn game: concurrency of unsynchronized intra-run prefetching.

The paper models the overlap achievable at large ``N`` as a game with
``D`` urns (disks).  Balls (I/O requests) are thrown one at a time into
a uniformly random urn; the round ends when a ball lands in an occupied
urn (the request queues behind an in-progress one, stalling further
issue).  The round length -- the number of distinct urns hit -- is the
number of disks kept concurrently busy.

With ``Q_j = P(length >= j)``:

* ``Q_1 = 1``, ``Q_j = Q_{j-1} (D - j + 1) / D`` for ``2 <= j <= D``,
* ``P_j = Q_{j-1} * (j - 1) / D`` adjusted at the boundary (see
  :func:`round_length_pmf`),
* ``E(length) = sum_j Q_j = sqrt(pi D / 2) - 1/3 + O(D^{-1/2})``

(the closed form is the classic "birthday"-style sum; the paper credits
a referee for the simplification).  The striking conclusion: average
concurrency grows only as ``sqrt(D)``, so intra-run prefetching alone
cannot approach the ``D``-fold transfer-bound speedup.
"""

from __future__ import annotations

import math


def survival_probabilities(d: int) -> list[float]:
    """``[Q_1, ..., Q_D]`` with ``Q_j = P(round length >= j)``."""
    if d < 1:
        raise ValueError("D must be >= 1")
    survival = [1.0]
    for j in range(2, d + 1):
        survival.append(survival[-1] * (d - j + 1) / d)
    return survival


def round_length_pmf(d: int) -> list[float]:
    """``[P_1, ..., P_D]`` with ``P_j = P(round length == j)``.

    ``P_j = Q_j - Q_{j+1}`` (with ``Q_{D+1} = 0``): a round has length
    exactly ``j`` when it survives ``j`` throws but not ``j + 1``.
    """
    survival = survival_probabilities(d)
    pmf = []
    for j in range(d):
        nxt = survival[j + 1] if j + 1 < d else 0.0
        pmf.append(survival[j] - nxt)
    return pmf


def expected_concurrency(d: int) -> float:
    """Exact ``E(length) = sum_j Q_j``.

    Evaluates to 2.51 (D=5), 3.66 (D=10) and 5.92 (D=25) -- the
    overlaps quoted in the paper.
    """
    return sum(survival_probabilities(d))


def expected_concurrency_closed_form(d: int) -> float:
    """The paper's asymptotic form ``sqrt(pi D / 2) - 1/3``."""
    if d < 1:
        raise ValueError("D must be >= 1")
    return math.sqrt(math.pi * d / 2.0) - 1.0 / 3.0


def unsynchronized_intra_run_total_s(synchronized_total_s: float, d: int) -> float:
    """Asymptotic unsynchronized total: synchronized time over E(length).

    The paper applies this at large ``N`` (e.g. 58.85 s / 2.51 = 23.4 s
    for k=25, D=5, N=30).
    """
    return synchronized_total_s / expected_concurrency(d)
