"""Multi-pass merge planning and whole-sort cost estimation.

The paper analyzes one merge pass.  A complete external sort may need
several: with ``k`` initial runs and a maximum merge order (fan-in)
``F``, runs must be merged in rounds until one remains.  This module
extends the paper's single-pass formulas to the whole sort, in the
spirit of the Aggarwal-Vitter accounting the paper builds on:

* :func:`plan_passes` -- the pass structure for ``k`` runs at fan-in
  ``F`` (each pass merges groups of up to ``F`` runs; every pass reads
  and writes the full data once).
* :func:`estimate_sort_time_s` -- total I/O time: each pass is costed
  with the paper's per-block time for its own merge order, and every
  pass moves all ``k * blocks_per_run`` blocks.

The fan-in itself is a cache decision: intra-run prefetching at depth
``N`` supports ``F = C / N`` open runs (cache of ``C`` blocks), so this
module also exposes the classic trade-off ``fan_in_for_cache``:
deeper prefetching lowers the per-pass time but may force more passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import iotime
from repro.core.parameters import DiskParameters


@dataclass(frozen=True)
class MergePass:
    """One round of merging."""

    index: int
    runs_in: int
    runs_out: int
    fan_in: int  # largest group actually merged this pass


@dataclass(frozen=True)
class MergePlan:
    """The full pass structure of a sort."""

    initial_runs: int
    max_fan_in: int
    passes: tuple[MergePass, ...]

    @property
    def num_passes(self) -> int:
        return len(self.passes)


def plan_passes(initial_runs: int, max_fan_in: int) -> MergePlan:
    """Pass structure for ``initial_runs`` runs at fan-in ``max_fan_in``."""
    if initial_runs < 1:
        raise ValueError("need at least one run")
    if max_fan_in < 2:
        raise ValueError("fan-in must be >= 2")
    passes = []
    runs = initial_runs
    index = 0
    while runs > 1:
        groups = -(-runs // max_fan_in)
        fan_in = min(runs, max_fan_in)
        passes.append(
            MergePass(index=index, runs_in=runs, runs_out=groups, fan_in=fan_in)
        )
        runs = groups
        index += 1
    return MergePlan(
        initial_runs=initial_runs,
        max_fan_in=max_fan_in,
        passes=tuple(passes),
    )


def fan_in_for_cache(cache_blocks: int, prefetch_depth: int) -> int:
    """Largest merge order a cache supports at depth ``N``.

    Intra-run prefetching needs ``N`` cached blocks per open run.
    """
    if cache_blocks < 1 or prefetch_depth < 1:
        raise ValueError("cache and depth must be positive")
    return max(1, cache_blocks // prefetch_depth)


def estimate_sort_time_s(
    initial_runs: int,
    blocks_per_run: int,
    cache_blocks: int,
    prefetch_depth: int,
    num_disks: int,
    disk: DiskParameters,
    blocks_per_cylinder: int = 64,
    synchronized: bool = True,
) -> tuple[MergePlan, float]:
    """Whole-sort I/O estimate under intra-run prefetching.

    Every pass moves all ``initial_runs * blocks_per_run`` blocks; pass
    ``p`` merges groups of ``fan_in_p`` runs whose lengths have grown by
    the product of earlier fan-ins, and is costed with equation (4) for
    its own merge order.  Returns ``(plan, total_seconds)``.

    This is a *read-side* estimate in the paper's spirit (write traffic
    on separate disks); unsynchronized multi-disk operation would divide
    each pass by its urn-game concurrency at best.
    """
    fan_in = fan_in_for_cache(cache_blocks, prefetch_depth)
    if fan_in < 2:
        raise ValueError(
            f"cache of {cache_blocks} blocks cannot support merging at "
            f"depth {prefetch_depth}"
        )
    plan = plan_passes(initial_runs, fan_in)
    total_blocks = initial_runs * blocks_per_run
    total_seconds = 0.0
    run_blocks = blocks_per_run
    for merge_pass in plan.passes:
        m = run_blocks / blocks_per_cylinder
        block_ms = iotime.intra_run_multi_disk_block_ms(
            merge_pass.fan_in, m, prefetch_depth, num_disks, disk
        )
        total_seconds += block_ms * total_blocks / 1000.0
        run_blocks *= merge_pass.fan_in
    return plan, total_seconds
