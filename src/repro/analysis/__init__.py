"""Closed-form models from the paper's analysis sections.

Each module mirrors one analytical development:

* :mod:`repro.analysis.seek_model` -- the seek-distance distribution
  under random block depletion (extends Kwan & Baer).
* :mod:`repro.analysis.iotime` -- equations (1)-(4): average per-block
  I/O time for {no, intra-run} prefetching on {1, D} disks.
* :mod:`repro.analysis.urn_game` -- the urn game bounding the average
  disk concurrency of unsynchronized intra-run prefetching.
* :mod:`repro.analysis.interrun` -- the synchronized inter-run model
  (expected max over D rotational latencies) and the transfer-time
  lower bounds.
* :mod:`repro.analysis.predictions` -- a single ``predict()`` mapping a
  :class:`~repro.core.parameters.SimulationConfig` to the paper's
  estimate for it.
"""

from repro.analysis.interrun import (
    expected_max_uniform,
    inter_run_sync_block_ms,
    inter_run_sync_total_s,
    lower_bound_total_s,
)
from repro.analysis.iotime import (
    intra_run_multi_disk_block_ms,
    intra_run_single_disk_block_ms,
    no_prefetch_multi_disk_block_ms,
    no_prefetch_single_disk_block_ms,
    total_time_s,
)
from repro.analysis.calibration import Calibration, solve_constants
from repro.analysis.passes import (
    MergePlan,
    estimate_sort_time_s,
    fan_in_for_cache,
    plan_passes,
)
from repro.analysis.predictions import Prediction, predict
from repro.analysis.seek_model import SeekDistanceModel
from repro.analysis.urn_game import (
    expected_concurrency,
    expected_concurrency_closed_form,
    round_length_pmf,
    survival_probabilities,
)

__all__ = [
    "Calibration",
    "MergePlan",
    "Prediction",
    "SeekDistanceModel",
    "estimate_sort_time_s",
    "fan_in_for_cache",
    "plan_passes",
    "solve_constants",
    "expected_concurrency",
    "expected_concurrency_closed_form",
    "expected_max_uniform",
    "inter_run_sync_block_ms",
    "inter_run_sync_total_s",
    "intra_run_multi_disk_block_ms",
    "intra_run_single_disk_block_ms",
    "lower_bound_total_s",
    "no_prefetch_multi_disk_block_ms",
    "no_prefetch_single_disk_block_ms",
    "predict",
    "round_length_pmf",
    "survival_probabilities",
    "total_time_s",
]
