"""Recovering the paper's disk constants from its reported results.

The available scan of the paper garbles most digits, so the constants
(S, R, T) used throughout this reproduction were *solved back* from the
numbers that survive: every no-prefetch / intra-run total is **linear**
in (S, R, T),

    total(k, D, N) = k * blocks * (m (k / 3 N D) S  +  R / N  +  T) / 1000,

so a handful of anchors gives an (over-determined) linear system.  This
module encodes those anchors and solves the least-squares system with
plain Gaussian elimination, demonstrating that the calibration in
``repro.core.parameters`` is not guesswork: the recovered constants are
S = 0.03 ms/cylinder, R = 8.33 ms, T = 2.05 ms to within the paper's
printed precision, with sub-percent residuals on every anchor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

#: Run length in cylinders for 1000-block runs (1000 / 64).
M = 15.625

#: Blocks per run in the paper's evaluation.
BLOCKS = 1000


@dataclass(frozen=True)
class Anchor:
    """One reported total: configuration plus the paper's value."""

    k: int
    d: int
    n: int
    total_s: float
    source: str

    def coefficients(self) -> tuple[float, float, float]:
        """(a_S, a_R, a_T) with ``total_s = a_S S + a_R R + a_T T``."""
        scale = self.k * BLOCKS / 1000.0  # ms -> s over all blocks
        return (
            scale * M * self.k / (3.0 * self.n * self.d),
            scale / self.n,
            scale,
        )


#: The anchors recoverable from the paper's prose (values printed by
#: the paper; see DESIGN.md section 2 for the digit reconstruction).
PAPER_ANCHORS: tuple[Anchor, ...] = (
    Anchor(25, 1, 1, 357.2, "no prefetch, k=25, 1 disk"),
    Anchor(50, 1, 1, 909.7, "no prefetch, k=50, 1 disk"),
    Anchor(25, 5, 1, 279.0, "no prefetch, k=25, 5 disks"),
    Anchor(50, 10, 1, 558.1, "no prefetch, k=50, 10 disks"),
    Anchor(25, 1, 10, 81.8, "intra-run N=10, k=25, 1 disk"),
    Anchor(50, 1, 10, 183.2, "intra-run N=10, k=50, 1 disk"),
    Anchor(25, 1, 30, 61.5, "intra-run N=30, k=25, 1 disk"),
    Anchor(50, 1, 30, 129.4, "intra-run N=30, k=50, 1 disk"),
)


@dataclass(frozen=True)
class Calibration:
    """Solved constants plus fit quality."""

    seek_ms_per_cylinder: float
    avg_rotational_latency_ms: float
    transfer_ms_per_block: float
    max_relative_residual: float
    residuals: tuple[float, ...]


def solve_constants(anchors: Sequence[Anchor] = PAPER_ANCHORS) -> Calibration:
    """Least-squares solve of the anchor system for (S, R, T)."""
    if len(anchors) < 3:
        raise ValueError("need at least three anchors for three unknowns")
    rows = [anchor.coefficients() for anchor in anchors]
    rhs = [anchor.total_s for anchor in anchors]

    # Normal equations: (A^T A) x = A^T b.
    normal = [[0.0] * 3 for _ in range(3)]
    vector = [0.0] * 3
    for row, b in zip(rows, rhs):
        for i in range(3):
            vector[i] += row[i] * b
            for j in range(3):
                normal[i][j] += row[i] * row[j]

    solution = _solve_3x3(normal, vector)
    residuals = []
    for anchor, row in zip(anchors, rows):
        predicted = sum(c * x for c, x in zip(row, solution))
        residuals.append((predicted - anchor.total_s) / anchor.total_s)
    return Calibration(
        seek_ms_per_cylinder=solution[0],
        avg_rotational_latency_ms=solution[1],
        transfer_ms_per_block=solution[2],
        max_relative_residual=max(abs(r) for r in residuals),
        residuals=tuple(residuals),
    )


def _solve_3x3(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting for a 3x3 system."""
    return _solve_linear(matrix, rhs)


def _solve_linear(matrix: Sequence[Sequence[float]],
                  rhs: Sequence[float]) -> list[float]:
    """Gaussian elimination with partial pivoting for a small system."""
    size = len(rhs)
    a = [list(row) + [b] for row, b in zip(matrix, rhs)]
    for column in range(size):
        pivot = max(range(column, size), key=lambda r: abs(a[r][column]))
        if abs(a[pivot][column]) < 1e-12:
            raise ValueError("singular system: anchors are degenerate")
        a[column], a[pivot] = a[pivot], a[column]
        for row in range(column + 1, size):
            factor = a[row][column] / a[column][column]
            for j in range(column, size + 1):
                a[row][j] -= factor * a[column][j]
    solution = [0.0] * size
    for row in range(size - 1, -1, -1):
        accumulated = sum(a[row][j] * solution[j] for j in range(row + 1, size))
        solution[row] = (a[row][size] - accumulated) / a[row][row]
    return solution


# ---------------------------------------------------------------------------
# Fitting (S, R, T) to *measured* reads — the repro.realio direction.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReadObservation:
    """One measured read request from the real-I/O backend.

    The same linearity the anchor system exploits applies per request:
    under the paper's service model a read that moves the head
    ``seek_cylinders`` cylinders and transfers ``blocks`` blocks costs

        service_ms = S * seek_cylinders + R + T * blocks,

    so a set of observations with varying seek distances and transfer
    sizes determines effective (S, R, T) for the storage underneath.
    """

    seek_cylinders: float
    blocks: int
    service_ms: float

    def coefficients(self) -> tuple[float, float, float]:
        """(a_S, a_R, a_T) with ``service_ms = a_S S + a_R R + a_T T``."""
        return (float(self.seek_cylinders), 1.0, float(self.blocks))


#: Effective transfer time never fits below this (keeps the simulator's
#: division-by-T quantities finite on arbitrarily fast storage).
MIN_TRANSFER_MS = 1e-6


def fit_service_model(
    observations: Iterable[ReadObservation],
) -> Calibration:
    """Least-squares fit of effective (S, R, T) to measured reads.

    Degenerate designs are expected on real storage — on tmpfs or a
    warm page cache every "seek" costs the same (often indistinguishable
    from zero), collapsing the seek column — so the fit degrades
    gracefully instead of failing:

    1. full 3-parameter fit (S, R, T);
    2. seek column degenerate → S = 0, fit (R, T);
    3. per-request overhead inseparable from transfer (all reads the
       same size) → R = 0, T = mean(service / blocks).

    Fitted constants are clamped to physical ranges (S, R >= 0,
    T >= :data:`MIN_TRANSFER_MS`); residuals are relative to each
    observed service time, computed for the clamped model actually
    returned.
    """
    samples = list(observations)
    if len(samples) < 3:
        raise ValueError("need at least three read observations to fit")
    if any(s.service_ms <= 0 for s in samples):
        raise ValueError("read observations must have positive service time")
    rows = [s.coefficients() for s in samples]
    rhs = [s.service_ms for s in samples]

    solution = _least_squares(rows, rhs)
    if solution is None:
        # Seek column degenerate: pin S = 0 and fit (R, T).
        reduced = _least_squares([row[1:] for row in rows], rhs)
        if reduced is not None:
            solution = [0.0, reduced[0], reduced[1]]
        else:
            # Single transfer size: attribute everything to transfer.
            mean_per_block = sum(
                s.service_ms / s.blocks for s in samples
            ) / len(samples)
            solution = [0.0, 0.0, mean_per_block]

    seek = max(0.0, solution[0])
    rotation = max(0.0, solution[1])
    transfer = max(MIN_TRANSFER_MS, solution[2])
    residuals = []
    for sample, row in zip(samples, rows):
        predicted = row[0] * seek + row[1] * rotation + row[2] * transfer
        residuals.append((predicted - sample.service_ms) / sample.service_ms)
    return Calibration(
        seek_ms_per_cylinder=seek,
        avg_rotational_latency_ms=rotation,
        transfer_ms_per_block=transfer,
        max_relative_residual=max(abs(r) for r in residuals),
        residuals=tuple(residuals),
    )


def _least_squares(
    rows: Sequence[Sequence[float]], rhs: Sequence[float]
) -> Optional[list[float]]:
    """Solve ``min |A x - b|`` via normal equations; None if singular."""
    size = len(rows[0])
    normal = [[0.0] * size for _ in range(size)]
    vector = [0.0] * size
    for row, b in zip(rows, rhs):
        for i in range(size):
            vector[i] += row[i] * b
            for j in range(size):
                normal[i][j] += row[i] * row[j]
    try:
        return _solve_linear(normal, vector)
    except ValueError:
        return None
