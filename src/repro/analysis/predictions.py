"""A unified front-end over the paper's closed-form estimates.

:func:`predict` maps a :class:`~repro.core.parameters.SimulationConfig`
to the paper's analytical estimate for that configuration, choosing the
applicable formula and flagging how trustworthy it is (the paper's
models are exact for no-overlap cases and asymptotic elsewhere).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis import interrun, iotime, urn_game
from repro.core.parameters import PrefetchStrategy, SimulationConfig


class PredictionQuality(enum.Enum):
    """How the paper itself rates the applicable formula."""

    EXACT_MODEL = "exact-model"  # no overlap: formula models the system directly
    ASYMPTOTIC = "asymptotic"  # valid for large N (and success ratio ~ 1)
    LOWER_BOUND = "lower-bound"  # only a bound is available


@dataclass(frozen=True)
class Prediction:
    """An analytical estimate for one configuration."""

    block_ms: float
    total_s: float
    quality: PredictionQuality
    formula: str

    def __repr__(self) -> str:
        return (
            f"Prediction({self.total_s:.1f}s, tau={self.block_ms:.3f}ms, "
            f"{self.quality.value}: {self.formula})"
        )


def predict(config: SimulationConfig) -> Prediction:
    """The paper's estimate of total merge time for ``config``.

    Raises ``ValueError`` for configurations the paper provides no
    closed form for (e.g. finite CPU speed, small inter-run caches) --
    those are what the simulation is for.
    """
    if config.cpu_ms_per_block > 0:
        raise ValueError(
            "the paper provides no closed form for finite CPU speeds; "
            "use the simulator"
        )
    k = config.num_runs
    d = config.num_disks
    n = config.effective_depth
    m = config.run_cylinders
    disk = config.disk
    bpr = config.blocks_per_run

    if config.strategy is PrefetchStrategy.NONE:
        if d == 1:
            block = iotime.no_prefetch_single_disk_block_ms(k, m, disk)
            formula = "eq(1): m(k/3)S + R + T"
        else:
            block = iotime.no_prefetch_multi_disk_block_ms(k, m, d, disk)
            formula = "eq(3): m(k/3D)S + R + T"
        return Prediction(
            block_ms=block,
            total_s=iotime.total_time_s(block, k, bpr),
            quality=PredictionQuality.EXACT_MODEL,
            formula=formula,
        )

    if config.strategy is PrefetchStrategy.INTRA_RUN:
        if d == 1:
            block = iotime.intra_run_single_disk_block_ms(k, m, n, disk)
            return Prediction(
                block_ms=block,
                total_s=iotime.total_time_s(block, k, bpr),
                quality=PredictionQuality.EXACT_MODEL,
                formula="eq(2): m(k/3N)S + R/N + T",
            )
        block = iotime.intra_run_multi_disk_block_ms(k, m, n, d, disk)
        total = iotime.total_time_s(block, k, bpr)
        if config.synchronized:
            return Prediction(
                block_ms=block,
                total_s=total,
                quality=PredictionQuality.EXACT_MODEL,
                formula="eq(4): m(k/3ND)S + R/N + T",
            )
        concurrency = urn_game.expected_concurrency(d)
        return Prediction(
            block_ms=block / concurrency,
            total_s=total / concurrency,
            quality=PredictionQuality.ASYMPTOTIC,
            formula="eq(4) / urn-game E(L); valid for large N",
        )

    if config.strategy is PrefetchStrategy.INTER_RUN:
        if config.synchronized:
            block = interrun.inter_run_sync_block_ms(k, m, n, d, disk)
            return Prediction(
                block_ms=block,
                total_s=interrun.inter_run_sync_total_s(k, m, n, d, disk, bpr),
                quality=PredictionQuality.ASYMPTOTIC,
                formula="mkS/(3ND^2) + 2R/(N(D+1)) + T/D; needs success ratio ~ 1",
            )
        total = interrun.lower_bound_total_s(k, d, disk, bpr)
        return Prediction(
            block_ms=disk.transfer_ms_per_block / d,
            total_s=total,
            quality=PredictionQuality.LOWER_BOUND,
            formula="k*blocks*T/D transfer bound; approached for large N and cache",
        )

    raise ValueError(f"unknown strategy {config.strategy}")
