"""Fetch planning: the paper's two prefetching strategies.

A *planner* turns a demand situation ("run ``j`` has exhausted its
cached blocks") into a :class:`FetchPlan` -- the list of ``(run,
blocks)`` groups to fetch -- given a read-only view of the system
state.  Planners are pure decision logic; reserving cache space and
queueing requests at drives is the merge simulator's job.

* :class:`NoPrefetchPlanner` -- the Kwan-Baer baseline: one demand
  block.
* :class:`IntraRunPlanner` -- ``N`` contiguous blocks of the demand run.
* :class:`InterRunPlanner` -- the demand group plus an ``N``-block group
  on every other disk, gated by the almost-full-cache policy.

Victim selection (which run to prefetch on a non-demand disk) is
pluggable; ``RANDOM`` is the paper's policy, the others reproduce the
heuristics the authors examined in the companion thesis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Protocol, Sequence

from repro.core.cache import BlockCache
from repro.core.parameters import CachePolicy, VictimSelector
from repro.disks.layout import RunLayout


@dataclass(frozen=True)
class FetchGroup:
    """One contiguous fetch: ``count`` blocks of ``run``."""

    run: int
    count: int
    demand: bool = False

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("fetch group must cover at least one block")


@dataclass(frozen=True)
class FetchPlan:
    """The planner's decision for one demand situation.

    Attributes:
        groups: fetch groups, demand group first.
        full_prefetch: True when the plan is a complete inter-run
            prefetch (``N`` blocks on all ``D`` disks); drives the
            success-ratio statistic.
        counts_as_decision: False for strategies where the success
            ratio is not meaningful (the paper defines it only for
            inter-run prefetching).
    """

    groups: tuple[FetchGroup, ...]
    full_prefetch: bool = False
    counts_as_decision: bool = False

    @property
    def demand_group(self) -> FetchGroup:
        return self.groups[0]

    @property
    def total_blocks(self) -> int:
        return sum(group.count for group in self.groups)


class SystemView(Protocol):
    """What a planner may observe (duck-typed by the simulator)."""

    layout: RunLayout
    cache: BlockCache

    def head_cylinder(self, disk: int) -> int: ...

    def drive_degraded(self, disk: int) -> bool:
        """Degraded-mode signal (fault injection); optional on views.

        Planners query it through :func:`_degradation_of`, which treats
        views without the method as "every drive healthy" -- the
        fault-free behaviour.
        """
        ...


def _degradation_of(view: SystemView) -> Callable[[int], bool]:
    """The view's degraded-drive predicate, or all-healthy without one."""
    return getattr(view, "drive_degraded", lambda disk: False)


class VictimChooser:
    """Chooses the run to prefetch on one non-demand disk."""

    def __init__(self, selector: VictimSelector, rng: random.Random) -> None:
        self.selector = selector
        self.rng = rng
        self._round_robin_cursor: dict[int, int] = {}

    def choose(
        self,
        view: SystemView,
        disk: int,
        candidates: Sequence[int],
    ) -> int:
        """Pick one of ``candidates`` (runs on ``disk`` with blocks on disk)."""
        if not candidates:
            raise ValueError("no candidate runs to choose from")
        if self.selector is VictimSelector.RANDOM:
            return candidates[self.rng.randrange(len(candidates))]
        if self.selector is VictimSelector.NEAREST_HEAD:
            head = view.head_cylinder(disk)
            return min(
                candidates,
                key=lambda run: abs(
                    view.layout.cylinder_of(run, view.cache.runs[run].next_fetch)
                    - head
                ),
            )
        if self.selector is VictimSelector.ROUND_ROBIN:
            cursor = self._round_robin_cursor.get(disk, 0)
            choice = candidates[cursor % len(candidates)]
            self._round_robin_cursor[disk] = cursor + 1
            return choice
        if self.selector is VictimSelector.MOST_DEPLETED:
            # The run closest to stalling the merge: fewest blocks
            # resident or already on the way.
            return min(
                candidates,
                key=lambda run: (
                    view.cache.runs[run].cached + view.cache.runs[run].in_flight,
                    run,
                ),
            )
        raise ValueError(f"unknown selector {self.selector}")


class FetchPlanner:
    """Base planner: subclasses implement :meth:`plan`."""

    def plan(self, view: SystemView, demand_run: int) -> FetchPlan:
        raise NotImplementedError


class NoPrefetchPlanner(FetchPlanner):
    """Demand-fetch exactly one block (the single-disk baseline of

    Kwan & Baer, and its multi-disk analogue)."""

    def plan(self, view: SystemView, demand_run: int) -> FetchPlan:
        return FetchPlan(groups=(FetchGroup(demand_run, 1, demand=True),))


class IntraRunPlanner(FetchPlanner):
    """Fetch ``N`` contiguous blocks of the demand run ("Demand Run

    Only").  The cache is sized ``k*N`` so space is always available --
    at least ``N`` depletions of the demand run preceded this fetch."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.depth = depth

    def plan(self, view: SystemView, demand_run: int) -> FetchPlan:
        state = view.cache.runs[demand_run]
        count = min(self.depth, state.on_disk)
        return FetchPlan(groups=(FetchGroup(demand_run, count, demand=True),))


class InterRunPlanner(FetchPlanner):
    """The paper's inter-run strategy ("All Disks One Run").

    On a demand fetch for run ``j``: if the cache can hold ``D*N``
    blocks, fetch ``N`` blocks of ``j`` plus ``N`` blocks of one run on
    each other disk; otherwise (conservative policy) fetch only the
    demand block.  The greedy variant instead fills whatever space is
    free, demand group first, then other disks in random order.
    """

    def __init__(
        self,
        depth: int,
        num_disks: int,
        policy: CachePolicy,
        chooser: VictimChooser,
        rng: random.Random,
        adaptive: bool = False,
    ) -> None:
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.depth = depth
        self.num_disks = num_disks
        self.policy = policy
        self.chooser = chooser
        self.rng = rng
        self.adaptive = adaptive

    def plan(self, view: SystemView, demand_run: int) -> FetchPlan:
        if self.adaptive:
            return self._adaptive_plan(view, demand_run)
        required = self.depth * self.num_disks
        if view.cache.can_reserve(required):
            groups, skipped = self._full_plan(view, demand_run, budget=None)
            return FetchPlan(
                groups=groups,
                full_prefetch=skipped == 0,
                counts_as_decision=True,
            )
        if self.policy is CachePolicy.CONSERVATIVE:
            return FetchPlan(
                groups=(FetchGroup(demand_run, 1, demand=True),),
                full_prefetch=False,
                counts_as_decision=True,
            )
        # Greedy: spend all free space, demand group first.
        groups, _ = self._full_plan(view, demand_run, budget=view.cache.free)
        return FetchPlan(groups=groups, full_prefetch=False, counts_as_decision=True)

    def _adaptive_plan(self, view: SystemView, demand_run: int) -> FetchPlan:
        """Size the fetch depth to the free cache.

        Instead of gambling on the full ``D*N`` fitting (conservative)
        or filling space unevenly (greedy), fetch equal groups of
        ``N' = clamp(free // D, 1, N)`` blocks on every disk: all disks
        stay busy at whatever amortization the cache currently affords.
        """
        depth_now = min(self.depth, max(1, view.cache.free // self.num_disks))
        if view.cache.can_reserve(depth_now * self.num_disks):
            groups, skipped = self._full_plan(
                view, demand_run, budget=None, depth=depth_now
            )
            return FetchPlan(
                groups=groups,
                full_prefetch=depth_now == self.depth and skipped == 0,
                counts_as_decision=True,
            )
        return FetchPlan(
            groups=(FetchGroup(demand_run, 1, demand=True),),
            full_prefetch=False,
            counts_as_decision=True,
        )

    def _full_plan(
        self,
        view: SystemView,
        demand_run: int,
        budget: Optional[int],
        depth: Optional[int] = None,
    ) -> tuple[tuple[FetchGroup, ...], int]:
        """Build the fetch groups; returns ``(groups, degraded_skips)``.

        Degraded drives (fault injection's flapping / fail-slow /
        in-outage signal) are dropped from prefetch target selection:
        spending prefetch depth on a drive that cannot deliver soon
        only ties up cache space the healthy drives could use.  The
        demand disk is never skipped -- the merge needs that block
        regardless of drive health.
        """
        depth = self.depth if depth is None else depth
        remaining = budget if budget is not None else float("inf")
        demand_state = view.cache.runs[demand_run]
        demand_count = min(depth, demand_state.on_disk, remaining)
        demand_count = max(int(demand_count), 1)
        groups = [FetchGroup(demand_run, demand_count, demand=True)]
        remaining -= demand_count

        demand_disk = view.layout.disk_of_run(demand_run)
        other_disks = [d for d in range(self.num_disks) if d != demand_disk]
        if budget is not None:
            self.rng.shuffle(other_disks)
        is_degraded = _degradation_of(view)
        skipped = 0
        for disk in other_disks:
            if remaining < 1:
                break
            if is_degraded(disk):
                skipped += 1
                continue
            candidates = [
                run
                for run in view.layout.runs_on_disk(disk)
                if view.cache.runs[run].on_disk > 0
            ]
            if not candidates:
                continue
            victim = self.chooser.choose(view, disk, candidates)
            count = int(min(depth, view.cache.runs[victim].on_disk, remaining))
            if count < 1:
                break
            groups.append(FetchGroup(victim, count))
            remaining -= count
        return tuple(groups), skipped


def build_planner(
    strategy,
    depth: int,
    num_disks: int,
    policy: CachePolicy,
    selector: VictimSelector,
    rng: random.Random,
    adaptive: bool = False,
) -> FetchPlanner:
    """Construct the planner matching a configuration."""
    from repro.core.parameters import PrefetchStrategy

    if strategy is PrefetchStrategy.NONE:
        return NoPrefetchPlanner()
    if strategy is PrefetchStrategy.INTRA_RUN:
        return IntraRunPlanner(depth)
    if strategy is PrefetchStrategy.INTER_RUN:
        chooser = VictimChooser(selector, rng)
        return InterRunPlanner(
            depth, num_disks, policy, chooser, rng, adaptive=adaptive
        )
    raise ValueError(f"unknown strategy {strategy}")
