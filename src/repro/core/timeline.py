"""Utilization timelines: what the array was doing, over time.

When a configuration runs with ``record_timelines=True`` the simulator
keeps step functions of (a) the number of busy disks and (b) the cache
occupancy.  This module turns those step functions into bucketed
time-weighted averages and renders them as terminal sparklines -- the
quickest way to *see* why a strategy is slow (idle disks, a starved
cache, a write stall plateau).
"""

from __future__ import annotations

from typing import Sequence

#: A step function: (time_ms, value) breakpoints, first at time 0.
Timeline = Sequence[tuple[float, float]]

_SPARK_LEVELS = " .:-=+*#%@"


def downsample(timeline: Timeline, buckets: int, end_ms: float) -> list[float]:
    """Time-weighted mean of a step function over equal buckets.

    ``timeline`` holds (time, value) breakpoints: the value holds from
    its breakpoint until the next.  Times beyond ``end_ms`` are
    ignored; an empty timeline yields zeros.
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    if end_ms <= 0:
        return [0.0] * buckets
    means = [0.0] * buckets
    if not timeline:
        return means
    width = end_ms / buckets
    points = list(timeline) + [(end_ms, timeline[-1][1])]
    for (start, value), (nxt, _v) in zip(points, points[1:]):
        start = max(0.0, min(start, end_ms))
        nxt = max(0.0, min(nxt, end_ms))
        if nxt <= start:
            continue
        first = int(start // width)
        last = int(min(nxt, end_ms - 1e-12) // width)
        for bucket in range(first, last + 1):
            lo = max(start, bucket * width)
            hi = min(nxt, (bucket + 1) * width)
            if hi > lo:
                means[bucket] += value * (hi - lo)
    return [m / width for m in means]


def render_sparkline(values: Sequence[float], maximum: float) -> str:
    """One-line sparkline; values are scaled against ``maximum``."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    top = len(_SPARK_LEVELS) - 1
    cells = []
    for value in values:
        level = round(min(max(value / maximum, 0.0), 1.0) * top)
        cells.append(_SPARK_LEVELS[level])
    return "".join(cells)


def utilization_report(
    metrics,
    num_disks: int,
    cache_capacity: int,
    buckets: int = 60,
) -> str:
    """Render disk-concurrency and cache-occupancy sparklines.

    ``metrics`` is a :class:`~repro.core.metrics.MergeMetrics` whose
    trial ran with ``record_timelines=True``; raises otherwise.
    """
    if metrics.concurrency_timeline is None or metrics.cache_timeline is None:
        raise ValueError(
            "no timelines recorded: run with record_timelines=True"
        )
    end = metrics.total_time_ms
    disks = downsample(metrics.concurrency_timeline, buckets, end)
    cache = downsample(metrics.cache_timeline, buckets, end)
    lines = [
        f"timeline over {end / 1000.0:.2f}s ({buckets} buckets)",
        f"busy disks /{num_disks}: |{render_sparkline(disks, num_disks)}|",
        f"cache used /{cache_capacity}: |{render_sparkline(cache, cache_capacity)}|",
        (
            f"mean busy disks {sum(disks) / len(disks):.2f}, "
            f"mean cache occupancy {sum(cache) / len(cache):.1f} blocks"
        ),
    ]
    return "\n".join(lines)
