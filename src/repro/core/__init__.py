"""The paper's primary contribution: multi-disk prefetching for the

merge phase of external mergesort, as a configurable discrete-event
simulation with full measurement."""

from repro.core.cache import BlockCache, CacheAccountingError, RunCacheState
from repro.core.merge_sim import MergeTrial
from repro.core.metrics import Aggregate, AggregateMetrics, ConcurrencyTracker, MergeMetrics
from repro.core.parameters import (
    PAPER_BLOCKS_PER_RUN,
    PAPER_DISK,
    PAPER_RECORDS_PER_BLOCK,
    PAPER_TRIALS,
    CachePolicy,
    DiskParameters,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.core.simulator import MergeSimulation, simulate_merge
from repro.core.writes import WriteStats, WriteSubsystem
from repro.core.strategies import (
    FetchGroup,
    FetchPlan,
    FetchPlanner,
    InterRunPlanner,
    IntraRunPlanner,
    NoPrefetchPlanner,
    VictimChooser,
    build_planner,
)

__all__ = [
    "Aggregate",
    "AggregateMetrics",
    "BlockCache",
    "CacheAccountingError",
    "CachePolicy",
    "ConcurrencyTracker",
    "DiskParameters",
    "FetchGroup",
    "FetchPlan",
    "FetchPlanner",
    "InterRunPlanner",
    "IntraRunPlanner",
    "MergeMetrics",
    "MergeSimulation",
    "MergeTrial",
    "NoPrefetchPlanner",
    "PAPER_BLOCKS_PER_RUN",
    "PAPER_DISK",
    "PAPER_RECORDS_PER_BLOCK",
    "PAPER_TRIALS",
    "PrefetchStrategy",
    "RunCacheState",
    "SimulationConfig",
    "VictimChooser",
    "VictimSelector",
    "WriteStats",
    "WriteSubsystem",
    "build_planner",
    "simulate_merge",
]
