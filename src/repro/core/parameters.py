"""Configuration objects and the calibrated paper parameters.

The ICDE '92 scan available to us garbles most digits, so the disk
constants here were **reconstructed** by inverting the paper's own
analytical formulas against its quoted results (totals of 357.2 s /
910 s for the single-disk no-prefetch baselines, the 51.2 s / 102.4 s
transfer-time lower bounds, 279.0 s and 558.1 s multi-disk baselines,
81.8 s / 183.2 s intra-run times at ``N=10``, and the urn-game overlaps
2.51 / 3.66 / 5.92).  With the values below every one of those numbers
is reproduced to the printed precision; see
``tests/analysis/test_paper_numbers.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.disks.drive import QueueDiscipline
from repro.disks.geometry import PAPER_GEOMETRY, DiskGeometry
from repro.faults.plan import FaultPlan
from repro.sim.kernel import get_kernel


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical timing of one drive (milliseconds).

    Attributes:
        seek_ms_per_cylinder: ``S``, linear seek cost per cylinder
            crossed.  The paper notes a linear model overestimates seeks
            but keeps it for simplicity.
        avg_rotational_latency_ms: ``R``, defined as half of one full
            platter revolution.
        transfer_ms_per_block: ``T``, time to transfer one 4096-byte
            block (2.0 MB/s sustained).
    """

    seek_ms_per_cylinder: float = 0.03
    avg_rotational_latency_ms: float = 8.33
    transfer_ms_per_block: float = 2.05

    def __post_init__(self) -> None:
        if self.seek_ms_per_cylinder < 0:
            raise ValueError("seek time must be non-negative")
        if self.avg_rotational_latency_ms < 0:
            raise ValueError("rotational latency must be non-negative")
        if self.transfer_ms_per_block <= 0:
            raise ValueError("transfer time must be positive")

    @property
    def rotation_period_ms(self) -> float:
        """One full revolution: rotational latency is Uniform(0, this)."""
        return 2.0 * self.avg_rotational_latency_ms


#: The drive simulated in the paper (DEC RA8x class): S = 0.03 ms/cyl,
#: R = 8.33 ms (3600 RPM), T = 2.05 ms per 4 KiB block.
PAPER_DISK = DiskParameters()

#: Blocks per run used throughout the paper's evaluation.
PAPER_BLOCKS_PER_RUN = 1000

#: Records per 4096-byte block (64-byte records).
PAPER_RECORDS_PER_BLOCK = 64

#: Trials averaged per plotted point.
PAPER_TRIALS = 5


class PrefetchStrategy(enum.Enum):
    """Which of the paper's strategies the merge uses.

    * ``NONE``: demand-fetch one block at a time (Kwan-Baer baseline).
    * ``INTRA_RUN``: fetch ``N`` contiguous blocks of the demand run
      ("Demand Run Only" in the figures).
    * ``INTER_RUN``: additionally prefetch ``N`` blocks of one run on
      every other disk ("All Disks One Run"); falls back to a single
      demand block when the cache cannot hold all ``D*N`` blocks.
    """

    NONE = "none"
    INTRA_RUN = "intra-run"
    INTER_RUN = "inter-run"


class CachePolicy(enum.Enum):
    """Almost-full-cache behaviour for inter-run prefetching.

    ``CONSERVATIVE`` (the paper's choice, justified by the companion
    Markov analysis): if the cache cannot hold all ``D*N`` prefetch
    blocks, fetch only the demand block, freeing space quickly so full
    parallel prefetches resume sooner.  ``GREEDY``: fill whatever space
    is available with a partial prefetch.
    """

    CONSERVATIVE = "conservative"
    GREEDY = "greedy"


class VictimSelector(enum.Enum):
    """How the run to prefetch on each non-demand disk is chosen.

    ``RANDOM`` is the paper's policy.  The others reproduce the
    head-position and urgency heuristics the authors report studying in
    the companion thesis and finding only marginally better.
    """

    RANDOM = "random"
    NEAREST_HEAD = "nearest-head"
    ROUND_ROBIN = "round-robin"
    MOST_DEPLETED = "most-depleted"


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one merge-phase simulation.

    Attributes:
        num_runs: ``k``, number of sorted input runs.
        num_disks: ``D``, number of input disks.
        strategy: prefetching strategy.
        prefetch_depth: ``N``, contiguous blocks per fetch (ignored for
            ``NONE``).
        blocks_per_run: run length in blocks (1000 in the paper).
        cache_capacity: cache size ``C`` in blocks, or ``None`` to use
            the strategy's natural size (``k`` for no prefetching,
            ``k*N`` for intra-run, a generous ``k*N*(1 + D/2)`` for
            inter-run, which empirically yields a success ratio near 1).
        synchronized: wait for every block of a fetch group before the
            CPU resumes (vs. only the demand block).
        cpu_ms_per_block: CPU time to merge the records of one block
            (0 models the paper's infinitely fast CPU).
        cache_policy: conservative or greedy almost-full behaviour.
        victim_selector: prefetch-run choice on non-demand disks.
        disk: drive timing parameters.
        geometry: drive geometry.
        trials: independent trials averaged by :class:`MergeSimulation`.
        base_seed: root seed; trial ``t`` uses ``base_seed + t``.
        stream_across_requests: ablation flag -- let back-to-back
            sequential requests skip positioning costs.
        queue_discipline: per-drive request ordering (FIFO in the
            paper; SSTF available as a scheduling ablation).
        write_disks: size of the separate output array.  0 (the paper's
            model) ignores write traffic entirely; with ``W > 0`` every
            depleted block emits an output block to one of ``W`` write
            disks round-robin, and the merge stalls when the target
            disk's buffer is full.
        write_buffer_blocks: per-write-disk buffer depth before
            backpressure stalls the merge.
        record_timelines: keep (time, value) step functions of disk
            concurrency and cache occupancy for timeline reports
            (see :mod:`repro.core.timeline`).
        record_requests: keep a per-request trace (issue/start/finish,
            disk, kind) for Gantt charts and wait statistics
            (see :mod:`repro.core.tracing`).
        adaptive_depth: (inter-run extension) size each fetch's depth
            to the free cache -- ``N' = clamp(free // D, 1, N)`` --
            instead of the paper's all-or-nothing ``D*N`` check.
        fault_plan: declarative per-drive fault schedule plus the
            resilience policy responding to it (see
            :mod:`repro.faults`).  ``None`` -- and an *empty* plan --
            reproduce the paper's perfectly reliable disks exactly.
        kernel: which simulation kernel runs the trial.  Any name in
            the :mod:`repro.sim.kernel` registry is accepted; the
            built-ins are ``"reference"`` (the readable baseline),
            ``"fast"`` (the optimized drop-in, see
            :mod:`repro.sim.fast`), and ``"batch"`` (the flattened
            whole-batch interpreter, see :mod:`repro.sim.batch`,
            dispatched through :func:`repro.api.run_trials`).  Every
            registered kernel produces bit-identical metrics, so the
            choice affects wall time only; it is deliberately excluded
            from cache keys and from :meth:`describe`.
    """

    num_runs: int
    num_disks: int
    strategy: PrefetchStrategy = PrefetchStrategy.NONE
    prefetch_depth: int = 1
    blocks_per_run: int = PAPER_BLOCKS_PER_RUN
    cache_capacity: int | None = None
    synchronized: bool = False
    cpu_ms_per_block: float = 0.0
    cache_policy: CachePolicy = CachePolicy.CONSERVATIVE
    victim_selector: VictimSelector = VictimSelector.RANDOM
    disk: DiskParameters = field(default_factory=DiskParameters)
    geometry: DiskGeometry = field(default_factory=lambda: PAPER_GEOMETRY)
    trials: int = PAPER_TRIALS
    base_seed: int = 1992
    stream_across_requests: bool = False
    queue_discipline: QueueDiscipline = QueueDiscipline.FIFO
    write_disks: int = 0
    write_buffer_blocks: int = 2
    record_timelines: bool = False
    record_requests: bool = False
    adaptive_depth: bool = False
    fault_plan: Optional[FaultPlan] = None
    kernel: str = "reference"

    def __post_init__(self) -> None:
        # Registry lookup raises the canonical "unknown simulation
        # kernel ...: choose one of ..." ValueError for bad names.
        get_kernel(self.kernel)
        if self.num_runs < 1:
            raise ValueError("num_runs must be >= 1")
        if self.num_disks < 1:
            raise ValueError("num_disks must be >= 1")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth (N) must be >= 1")
        if self.blocks_per_run < 1:
            raise ValueError("blocks_per_run must be >= 1")
        if self.cpu_ms_per_block < 0:
            raise ValueError("cpu_ms_per_block must be non-negative")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.write_disks < 0:
            raise ValueError("write_disks must be >= 0")
        if self.write_buffer_blocks < 1:
            raise ValueError("write_buffer_blocks must be >= 1")
        if self.fault_plan is not None:
            if isinstance(self.fault_plan, dict):
                object.__setattr__(
                    self, "fault_plan", FaultPlan.from_dict(self.fault_plan)
                )
            self.fault_plan.validate(self.num_disks)
        minimum = self.minimum_cache_capacity
        if self.cache_capacity is not None and self.cache_capacity < minimum:
            raise ValueError(
                f"cache_capacity={self.cache_capacity} below the minimum "
                f"{minimum} needed to hold the initial {self.initial_blocks_per_run} "
                f"block(s) of each of the {self.num_runs} runs"
            )

    @property
    def effective_depth(self) -> int:
        """``N`` as actually used (1 when no prefetching)."""
        if self.strategy is PrefetchStrategy.NONE:
            return 1
        return self.prefetch_depth

    @property
    def initial_blocks_per_run(self) -> int:
        """Blocks of each run preloaded before the merge starts."""
        return min(self.effective_depth, self.blocks_per_run)

    @property
    def minimum_cache_capacity(self) -> int:
        """Smallest legal cache: the initial load of every run."""
        return self.num_runs * self.initial_blocks_per_run

    @property
    def resolved_cache_capacity(self) -> int:
        """The cache size actually simulated."""
        if self.cache_capacity is not None:
            return self.cache_capacity
        if self.strategy is PrefetchStrategy.INTER_RUN:
            # Large enough for a success ratio near 1 (cf. Figure 3.5/3.6).
            generous = self.num_runs * self.effective_depth * (1 + self.num_disks / 2)
            return int(generous)
        return self.minimum_cache_capacity

    @property
    def total_blocks(self) -> int:
        """Blocks merged in one trial: ``k * blocks_per_run``."""
        return self.num_runs * self.blocks_per_run

    @property
    def run_cylinders(self) -> float:
        """``m``: run length in cylinders."""
        return self.blocks_per_run / self.geometry.blocks_per_cylinder

    def describe(self) -> str:
        """A one-line human-readable summary.

        An empty fault plan adds nothing, so its description (and
        therefore its metrics) match the plan-free baseline exactly.
        """
        sync = "sync" if self.synchronized else "unsync"
        base = (
            f"k={self.num_runs} D={self.num_disks} {self.strategy.value} "
            f"N={self.effective_depth} C={self.resolved_cache_capacity} {sync} "
            f"cpu={self.cpu_ms_per_block}ms"
        )
        if self.fault_plan is not None and not self.fault_plan.is_empty():
            base += f" faults={self.fault_plan.describe_short()}"
        return base
