"""One trial of the merge-phase simulation.

Wires together the DES kernel, the disk array, the block cache, and a
fetch planner, then runs the paper's merge loop:

1. Pick a run ``j`` uniformly at random among runs with unmerged
   blocks (the Kwan-Baer random block-depletion model) and deplete its
   leading resident block; spend ``cpu_ms_per_block`` of CPU time.
2. If that exhausted ``j``'s resident blocks (and ``j`` is not
   finished), a *demand situation* occurs: the merge cannot continue
   until the next block of ``j`` is in memory.  If that block is
   already in flight, wait for its arrival; otherwise ask the planner
   for a fetch plan, reserve cache space, queue the requests, and wait
   -- for the demand block only (unsynchronized) or for every block of
   the plan (synchronized).

An alternative *depletion source* can replace step 1's random choice
with a recorded sequence (e.g. from a real record-level merge); see
:mod:`repro.workloads.depletion`.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterator, Optional

from repro import api
from repro.core.cache import BlockCache
from repro.core.metrics import ConcurrencyTracker, MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.core.strategies import FetchPlan, build_planner
from repro.core.writes import WriteSubsystem
from repro.disks.drive import DiskDrive
from repro.disks.layout import RunLayout
from repro.disks.request import BlockFetchRequest, FetchKind
from repro.faults.injector import FaultInjector
from repro.obs.events import EventKind
from repro.sim.events import AllOf, AnyOf, Event
from repro.sim.kernel import create_kernel
from repro.sim.random_streams import RandomStreams

#: A depletion source yields the run to deplete next, given the list of
#: unfinished runs.  The default draws uniformly at random.
DepletionSource = Callable[[list[int]], int]


class MergeTrial:
    """A single seeded run of the merge-phase simulation."""

    def __init__(
        self,
        config: SimulationConfig,
        seed: int,
        depletion_source: Optional[Iterator[int]] = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.sim = create_kernel(config.kernel)
        # Tracing is ambient (RunContext), never part of the config:
        # the trace can't perturb results or sweep cache keys.  With no
        # session installed, ``self.trace`` stays None and every hook
        # below reduces to one guard check.
        session = api.current_trace()
        self.trace = (
            session.trial(seed, config.describe())
            if session is not None
            else None
        )
        self.streams = RandomStreams(seed)
        self.layout = RunLayout(
            num_runs=config.num_runs,
            num_disks=config.num_disks,
            blocks_per_run=config.blocks_per_run,
            geometry=config.geometry,
        )
        self.cache = BlockCache(
            self.sim,
            capacity=config.resolved_cache_capacity,
            runs=config.num_runs,
            blocks_per_run=config.blocks_per_run,
            record_timeline=config.record_timelines,
        )
        self.tracker = ConcurrencyTracker(
            self.sim, config.num_disks, record_timeline=config.record_timelines
        )
        # The injector draws from its own stream, so installing one
        # with an empty plan perturbs nothing (byte-identical runs).
        self.injector = (
            FaultInjector(
                config.fault_plan,
                num_disks=config.num_disks,
                rng=self.streams.stream("faults"),
            )
            if config.fault_plan is not None
            else None
        )
        self.drives = [
            DiskDrive(
                self.sim,
                drive_id=disk,
                geometry=config.geometry,
                parameters=config.disk,
                rng=self.streams.stream(f"disk-{disk}"),
                on_busy_change=self.tracker.on_busy_change,
                stream_across_requests=config.stream_across_requests,
                address_of=self._address_of,
                discipline=config.queue_discipline,
                injector=self.injector,
                trace=self.trace,
            )
            for disk in range(config.num_disks)
        ]
        self.planner = build_planner(
            config.strategy,
            depth=config.effective_depth,
            num_disks=config.num_disks,
            policy=config.cache_policy,
            selector=config.victim_selector,
            rng=self.streams.stream("victim-choice"),
            adaptive=config.adaptive_depth,
        )
        self._depletion_rng = self.streams.stream("depletion")
        self._depletion_source = depletion_source
        self.writes = (
            WriteSubsystem(
                self.sim,
                num_disks=config.write_disks,
                parameters=config.disk,
                geometry=config.geometry,
                streams=self.streams,
                buffer_blocks=config.write_buffer_blocks,
                trace=self.trace,
            )
            if config.write_disks > 0
            else None
        )
        # Counters.
        self._blocks_depleted = 0
        self._blocks_fetched = 0
        self._fetch_requests = 0
        self._demand_situations = 0
        self._demand_hits_in_flight = 0
        self._fetch_decisions = 0
        self._full_prefetch_decisions = 0
        self._cpu_stall_ms = 0.0
        self._cpu_busy_ms = 0.0
        self._write_stall_ms = 0.0
        self._fault_stall_ms = 0.0
        self._healthy_stall_ms = 0.0
        self._demand_timeouts = 0
        self._degraded_skips = 0
        self._request_traces: Optional[list] = (
            [] if config.record_requests else None
        )

    # ------------------------------------------------------------------
    # Planner view protocol
    # ------------------------------------------------------------------
    def head_cylinder(self, disk: int) -> int:
        return self.drives[disk].head_cylinder

    def drive_degraded(self, disk: int) -> bool:
        """Degraded-mode signal the planner uses to skip sick drives.

        Without an injector every drive is permanently healthy, which
        is exactly the fault-free planner behaviour.
        """
        if self.injector is None:
            return False
        degraded = self.injector.drive_degraded(disk, self.sim.now)
        if degraded:
            self._degraded_skips += 1
            if self.trace is not None:
                self.trace.instant(
                    EventKind.DRIVE_DEGRADED, f"disk-{disk}", self.sim.now
                )
        return degraded

    def _address_of(self, request: BlockFetchRequest) -> int:
        return self.layout.block_address(request.run, request.first_block)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> MergeMetrics:
        """Execute the trial to completion and return its metrics."""
        self._preload()
        cpu = self.sim.process(self._merge_loop(), name="merge-cpu")
        self.sim.run()
        if cpu.exception is not None:
            raise self._unwrap(cpu.exception)
        # A crashed drive process leaves the CPU suspended forever and
        # the event queue empty; surface the root cause, not a timeout.
        all_drives = list(self.drives)
        if self.writes is not None:
            all_drives.extend(self.writes.drives)
        for drive in all_drives:
            if drive.process.triggered and drive.process.exception is not None:
                raise self._unwrap(drive.process.exception)
        expected = self.config.total_blocks
        if self._blocks_depleted != expected:
            raise RuntimeError(
                f"merge ended early: {self._blocks_depleted} of {expected} blocks"
            )
        self.cache.check()
        return self._collect_metrics()

    @staticmethod
    def _unwrap(exc: BaseException) -> BaseException:
        """Surface injected-fault root causes instead of process wrappers.

        Fault errors reach the CPU (failed demand events) or the drive
        process (abandoned prefetches) wrapped in ``ProcessFailure``;
        callers should be able to catch ``FaultExhaustedError`` etc.
        directly.
        """
        from repro.faults.injector import FaultError
        from repro.sim.process import ProcessFailure

        if isinstance(exc, ProcessFailure) and isinstance(
            exc.__cause__, FaultError
        ):
            return exc.__cause__
        return exc

    def _preload(self) -> None:
        initial = self.config.initial_blocks_per_run
        for run in range(self.config.num_runs):
            self.cache.preload(run, initial)

    def _merge_loop(self) -> Generator:
        config = self.config
        cache = self.cache
        trace = self.trace
        unfinished = list(range(config.num_runs))
        pick = self._make_picker(unfinished)

        while unfinished:
            run = pick()
            cache.deplete(run)
            self._blocks_depleted += 1
            if config.cpu_ms_per_block > 0:
                self._cpu_busy_ms += config.cpu_ms_per_block
                if trace is not None:
                    trace.span(
                        EventKind.CPU_MERGE,
                        "cpu",
                        self.sim.now,
                        self.sim.now + config.cpu_ms_per_block,
                        {"run": run},
                    )
                yield self.sim.timeout(config.cpu_ms_per_block)
            elif trace is not None:
                trace.instant(
                    EventKind.CPU_MERGE, "cpu", self.sim.now, {"run": run}
                )
            if self.writes is not None:
                backpressure = self.writes.write_block()
                if backpressure is not None:
                    stall_start = self.sim.now
                    yield backpressure
                    self._write_stall_ms += self.sim.now - stall_start
                    if trace is not None and self.sim.now > stall_start:
                        trace.span(
                            EventKind.WRITE_STALL,
                            "cpu",
                            stall_start,
                            self.sim.now,
                        )

            state = cache.runs[run]
            if state.finished:
                unfinished.remove(run)
                continue
            if state.cached > 0:
                continue

            # Demand situation: the merge stalls until run's next block
            # is resident.
            self._demand_situations += 1
            stall_start = self.sim.now
            degraded_at_start = self._demand_disk_degraded(run)
            if state.in_flight > 0:
                self._demand_hits_in_flight += 1
                yield cache.arrival_event(run, state.next_deplete)
            else:
                plan = self.planner.plan(self, run)
                self._record_decision(plan)
                requests = self._issue(plan)
                if config.synchronized:
                    wait_event: Event = AllOf(
                        self.sim, [req.completed for req in requests]
                    )
                else:
                    wait_event = requests[0].demand_event
                timeout_ms = (
                    self.injector.demand_timeout_ms
                    if self.injector is not None
                    else None
                )
                if timeout_ms is None:
                    yield wait_event
                else:
                    yield from self._wait_with_timeout(
                        wait_event, requests, timeout_ms
                    )
            stalled = self.sim.now - stall_start
            self._cpu_stall_ms += stalled
            self._attribute_stall(run, stalled, degraded_at_start)
            if trace is not None and stalled > 0:
                trace.span(
                    EventKind.DEMAND_STALL,
                    "cpu",
                    stall_start,
                    self.sim.now,
                    {"run": run},
                )
                trace.observe_stall(stalled)

        if self.writes is not None:
            drain = self.writes.drain_event()
            if drain is not None:
                yield drain
        return None

    def _make_picker(self, unfinished: list[int]) -> Callable[[], int]:
        if self._depletion_source is not None:
            source = self._depletion_source

            def pick_from_source() -> int:
                run = next(source)
                if run not in unfinished:
                    raise RuntimeError(
                        f"depletion source chose finished/unknown run {run}"
                    )
                return run

            return pick_from_source

        rng = self._depletion_rng

        def pick_random() -> int:
            return unfinished[rng.randrange(len(unfinished))]

        return pick_random

    def _wait_with_timeout(
        self,
        wait_event: Event,
        requests: list[BlockFetchRequest],
        timeout_ms: float,
    ) -> Generator:
        """Wait for ``wait_event``, escalating the stalled requests at
        the drive every ``timeout_ms`` of demand stall.

        Escalation moves still-queued requests to the front of their
        drive's queue; a request already in service is left alone (the
        drive's own retry policy governs it).  No duplicate reads are
        ever issued, so cache arrival accounting stays strictly
        in-order.
        """
        while not wait_event.triggered:
            winner = yield AnyOf(
                self.sim, [wait_event, self.sim.timeout(timeout_ms)]
            )
            if winner is wait_event:
                return
            self._demand_timeouts += 1
            if self.trace is not None:
                self.trace.instant(
                    EventKind.DEMAND_TIMEOUT,
                    "cpu",
                    self.sim.now,
                    {"timeout_ms": timeout_ms},
                )
            for request in requests:
                if not request.completed.triggered:
                    disk = self.layout.disk_of_run(request.run)
                    self.drives[disk].escalate(request)
        yield wait_event

    def _demand_disk_degraded(self, run: int) -> bool:
        """Is the demand run's drive degraded right now?

        Queries the injector directly (not the planner view) so the
        check is never counted as a prefetch skip.
        """
        if self.injector is None:
            return False
        disk = self.layout.disk_of_run(run)
        return self.injector.drive_degraded(disk, self.sim.now)

    def _attribute_stall(
        self, run: int, stalled: float, degraded_at_start: bool
    ) -> None:
        """Split a demand stall into healthy vs fault-induced time.

        A stall counts as fault-induced when the demand run's drive was
        degraded at either boundary of the stall (a recovered outage
        still caused the wait even though the drive is healthy by the
        time the block arrives).  Computed for every run -- with no
        injector all stall is healthy, matching fault-free accounting
        exactly.
        """
        if stalled <= 0:
            return
        if degraded_at_start or self._demand_disk_degraded(run):
            self._fault_stall_ms += stalled
        else:
            self._healthy_stall_ms += stalled

    def _record_decision(self, plan: FetchPlan) -> None:
        if plan.counts_as_decision:
            self._fetch_decisions += 1
            if plan.full_prefetch:
                self._full_prefetch_decisions += 1

    def _issue(self, plan: FetchPlan) -> list[BlockFetchRequest]:
        """Reserve cache space and queue one request per fetch group."""
        requests: list[BlockFetchRequest] = []
        for group in plan.groups:
            state = self.cache.runs[group.run]
            first_block = state.next_fetch
            self.cache.reserve(group.run, group.count)
            kind = FetchKind.DEMAND if group.demand else FetchKind.PREFETCH
            request = BlockFetchRequest(
                self.sim,
                run=group.run,
                first_block=first_block,
                count=group.count,
                kind=kind,
            )
            for offset, event in enumerate(request.block_events):
                index = first_block + offset
                # Callbacks run on failure too (retry exhaustion,
                # permanent outage); only a successful read fills the
                # cache slot.
                event.add_callback(
                    lambda ev, run=group.run, idx=index: (
                        self.cache.block_arrived(run, idx)
                        if ev.exception is None
                        else None
                    )
                )
            disk = self.layout.disk_of_run(group.run)
            if self._request_traces is not None:
                from repro.core.tracing import RequestTrace

                request.completed.add_callback(
                    lambda ev, r=request, d=disk: (
                        self._request_traces.append(RequestTrace.from_request(r, d))
                        if ev.exception is None
                        else None
                    )
                )
            self.drives[disk].submit(request)
            requests.append(request)
            self._fetch_requests += 1
            self._blocks_fetched += group.count
        return requests

    def _collect_metrics(self) -> MergeMetrics:
        metrics = MergeMetrics(
            config_description=self.config.describe(),
            seed=self.seed,
            total_time_ms=self.sim.now,
            blocks_depleted=self._blocks_depleted,
            blocks_fetched=self._blocks_fetched,
            fetch_requests=self._fetch_requests,
            demand_situations=self._demand_situations,
            demand_hits_in_flight=self._demand_hits_in_flight,
            fetch_decisions=self._fetch_decisions,
            full_prefetch_decisions=self._full_prefetch_decisions,
            cpu_stall_ms=self._cpu_stall_ms,
            cpu_busy_ms=self._cpu_busy_ms,
            drive_stats=[drive.stats for drive in self.drives],
            average_concurrency=self.tracker.average_concurrency(),
            peak_concurrency=self.tracker.peak,
            disk_busy_fraction=self.tracker.busy_fraction(),
            cache_min_free=self.cache.min_free,
            cache_mean_occupancy=self.cache.mean_occupancy(),
            cache_peak_occupancy=self.cache.peak_occupancy,
            blocks_written=(
                self.writes.stats.blocks_written if self.writes else 0
            ),
            write_stall_ms=self._write_stall_ms,
            write_stalls=self.writes.stats.stalls if self.writes else 0,
            fault_stall_ms=self._fault_stall_ms,
            healthy_stall_ms=self._healthy_stall_ms,
            demand_timeouts=self._demand_timeouts,
            degraded_skips=self._degraded_skips,
            concurrency_timeline=self.tracker.timeline,
            cache_timeline=self.cache.timeline,
            request_traces=self._request_traces,
        )
        if self.trace is not None:
            self.trace.finalize(metrics)
        return metrics
