"""Public entry point: run a configuration over several seeded trials.

Example::

    from repro import MergeSimulation, SimulationConfig, PrefetchStrategy

    config = SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        cache_capacity=800,
    )
    result = MergeSimulation(config).run()
    print(result.total_time_s.mean, result.success_ratio.mean)

Ambient run options — execution backend, fault plan, kernel choice,
tracing — come from :mod:`repro.api`::

    with repro.api.configure(kernel="fast", trace=True) as ctx:
        result = MergeSimulation(config).run()

Trial execution itself is delegated to :func:`repro.api.run_trials`;
the methods here are thin wrappers that keep the historical signatures
(new execution capabilities — batching, timeouts — land only on the
batch API).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, Optional

from repro import api
from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import PrefetchStrategy, SimulationConfig

#: Optional alternative executor for whole configurations.  When
#: installed (``RunContext(backend=...)``), :meth:`MergeSimulation.run`
#: delegates to it — this is how the sweep engine (:mod:`repro.sweep`)
#: transparently adds caching and a worker pool underneath existing
#: experiment code.  Backends must preserve the serial contract: trial
#: ``t`` seeded ``base_seed + t``, trials aggregated in order.
SimulationBackend = Callable[[SimulationConfig], AggregateMetrics]


class MergeSimulation:
    """Runs ``config.trials`` independent trials and aggregates them."""

    def __init__(self, config: SimulationConfig) -> None:
        ambient_plan = api.current_fault_plan()
        if ambient_plan is not None and config.fault_plan is None:
            config = dataclasses.replace(config, fault_plan=ambient_plan)
        ambient_kernel = api.current_kernel()
        if ambient_kernel is not None and config.kernel != ambient_kernel:
            config = dataclasses.replace(config, kernel=ambient_kernel)
        self.config = config

    def run_trial(
        self,
        *,
        trial: int = 0,
        depletion_source: Optional[Iterator[int]] = None,
    ) -> MergeMetrics:
        """Run one trial; trial ``t`` is seeded ``base_seed + t``.

        Thin wrapper over :func:`repro.api.run_trials` — a batch of
        one.  Batch-only capabilities (per-trial timeouts, wholesale
        batch-kernel dispatch) are reachable only through that API;
        this signature is frozen.
        """
        return api.run_trials(
            [self.config],
            trials=[trial],
            depletion_sources=[depletion_source],
        )[0]

    def run(self) -> AggregateMetrics:
        """Run all trials and return aggregated metrics.

        Delegates to the ambient simulation backend, if any (see
        ``repro.api.RunContext(backend=...)``); otherwise the trials
        run as one :func:`repro.api.run_trials` batch (so a ``batch``
        kernel executes them through its batch runner) and aggregate
        in trial order.
        """
        backend = api.current_backend()
        if backend is not None:
            return backend(self.config)
        count = self.config.trials
        trials = api.run_trials(
            [self.config] * count, trials=range(count)
        )
        return AggregateMetrics(
            config_description=self.config.describe(),
            trials=trials,
        )


def simulate_merge(
    num_runs: int,
    num_disks: int,
    *,
    strategy: PrefetchStrategy = PrefetchStrategy.NONE,
    prefetch_depth: int = 1,
    **kwargs,
) -> AggregateMetrics:
    """Thin convenience wrapper over :class:`MergeSimulation`.

    Exactly equivalent to building a
    :class:`~repro.core.parameters.SimulationConfig` from the arguments
    (extra keywords are forwarded verbatim) and calling
    ``MergeSimulation(config).run()`` — same ambient options, same
    backend routing, same aggregation, same
    :func:`repro.api.run_trials` execution underneath.  Use the class
    when you need to keep the config around or run individual trials;
    use ``run_trials`` directly for batch-only capabilities (timeouts,
    batch-kernel dispatch, heterogeneous configs).  This signature is
    frozen — it gains no new parameters.
    """
    config = SimulationConfig(
        num_runs=num_runs,
        num_disks=num_disks,
        strategy=strategy,
        prefetch_depth=prefetch_depth,
        **kwargs,
    )
    return MergeSimulation(config).run()
