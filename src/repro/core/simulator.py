"""Public entry point: run a configuration over several seeded trials.

Example::

    from repro import MergeSimulation, SimulationConfig, PrefetchStrategy

    config = SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        cache_capacity=800,
    )
    result = MergeSimulation(config).run()
    print(result.total_time_s.mean, result.success_ratio.mean)
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Iterator, Optional

from repro.core.merge_sim import MergeTrial
from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.faults.plan import FaultPlan

#: Optional alternative executor for whole configurations.  When set,
#: :meth:`MergeSimulation.run` delegates to it — this is how the sweep
#: engine (:mod:`repro.sweep`) transparently adds caching and a worker
#: pool underneath existing experiment code.  Backends must preserve
#: the serial contract: trial ``t`` seeded ``base_seed + t``, trials
#: aggregated in order.
SimulationBackend = Callable[[SimulationConfig], AggregateMetrics]

_BACKEND: Optional[SimulationBackend] = None


def set_simulation_backend(
    backend: Optional[SimulationBackend],
) -> Optional[SimulationBackend]:
    """Install (or clear, with ``None``) the backend; returns the old one."""
    global _BACKEND
    previous = _BACKEND
    _BACKEND = backend
    return previous


@contextlib.contextmanager
def simulation_backend(backend: Optional[SimulationBackend]):
    """Scoped :func:`set_simulation_backend`."""
    previous = set_simulation_backend(backend)
    try:
        yield backend
    finally:
        set_simulation_backend(previous)


#: Ambient fault plan applied to configs that do not carry one of their
#: own (see :func:`fault_plan_override`).  This is how ``repro run
#: --faults plan.json`` subjects the *existing* paper experiments to a
#: fault schedule without changing any experiment definition.
_FAULT_PLAN: Optional[FaultPlan] = None


def set_fault_plan_override(
    plan: Optional[FaultPlan],
) -> Optional[FaultPlan]:
    """Install (or clear, with ``None``) the ambient fault plan."""
    global _FAULT_PLAN
    previous = _FAULT_PLAN
    _FAULT_PLAN = plan
    return previous


@contextlib.contextmanager
def fault_plan_override(plan: Optional[FaultPlan]):
    """Scoped :func:`set_fault_plan_override`.

    Configs with an explicit ``fault_plan`` keep it; only plan-free
    configs pick up the override.
    """
    previous = set_fault_plan_override(plan)
    try:
        yield plan
    finally:
        set_fault_plan_override(previous)


#: Ambient simulation-kernel override (see :func:`kernel_override`).
#: This is how ``repro run --kernel fast`` and the benchmark harness
#: switch the *existing* paper experiments onto the optimized kernel
#: without changing any experiment definition.  Safe by construction:
#: both kernels produce bit-identical metrics.
_KERNEL: Optional[str] = None


def set_kernel_override(kernel: Optional[str]) -> Optional[str]:
    """Install (or clear, with ``None``) the ambient kernel name."""
    global _KERNEL
    previous = _KERNEL
    _KERNEL = kernel
    return previous


@contextlib.contextmanager
def kernel_override(kernel: Optional[str]):
    """Scoped :func:`set_kernel_override`.

    Every config constructed into a :class:`MergeSimulation` inside the
    scope runs on the named kernel, regardless of its own ``kernel``
    field (the override is for operators choosing *how* to execute, not
    *what* to simulate — and the kernels are result-equivalent).
    """
    previous = set_kernel_override(kernel)
    try:
        yield kernel
    finally:
        set_kernel_override(previous)


class MergeSimulation:
    """Runs ``config.trials`` independent trials and aggregates them."""

    def __init__(self, config: SimulationConfig) -> None:
        if _FAULT_PLAN is not None and config.fault_plan is None:
            config = dataclasses.replace(config, fault_plan=_FAULT_PLAN)
        if _KERNEL is not None and config.kernel != _KERNEL:
            config = dataclasses.replace(config, kernel=_KERNEL)
        self.config = config

    def run_trial(
        self,
        trial: int = 0,
        depletion_source: Optional[Iterator[int]] = None,
    ) -> MergeMetrics:
        """Run one trial; trial ``t`` is seeded ``base_seed + t``."""
        return MergeTrial(
            self.config,
            seed=self.config.base_seed + trial,
            depletion_source=depletion_source,
        ).run()

    def run(self) -> AggregateMetrics:
        """Run all trials and return aggregated metrics.

        Delegates to the installed simulation backend, if any (see
        :func:`simulation_backend`); the serial in-process loop is the
        default.
        """
        if _BACKEND is not None:
            return _BACKEND(self.config)
        trials = [self.run_trial(t) for t in range(self.config.trials)]
        return AggregateMetrics(
            config_description=self.config.describe(),
            trials=trials,
        )


def simulate_merge(
    num_runs: int,
    num_disks: int,
    strategy: PrefetchStrategy = PrefetchStrategy.NONE,
    prefetch_depth: int = 1,
    **kwargs,
) -> AggregateMetrics:
    """Convenience wrapper: build a config and run it.

    Extra keyword arguments are forwarded to
    :class:`~repro.core.parameters.SimulationConfig`.
    """
    config = SimulationConfig(
        num_runs=num_runs,
        num_disks=num_disks,
        strategy=strategy,
        prefetch_depth=prefetch_depth,
        **kwargs,
    )
    return MergeSimulation(config).run()
