"""Public entry point: run a configuration over several seeded trials.

Example::

    from repro import MergeSimulation, SimulationConfig, PrefetchStrategy

    config = SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        cache_capacity=800,
    )
    result = MergeSimulation(config).run()
    print(result.total_time_s.mean, result.success_ratio.mean)

Ambient run options — execution backend, fault plan, kernel choice,
tracing — come from :mod:`repro.api`::

    with repro.api.configure(kernel="fast", trace=True) as ctx:
        result = MergeSimulation(config).run()

The setters and context managers this module used to define
(``set_simulation_backend``/``simulation_backend`` and friends) remain
as deprecated shims that delegate to :class:`repro.api.RunContext`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import warnings
from typing import Callable, Iterator, Optional

from repro import api
from repro.core.merge_sim import MergeTrial
from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.faults.plan import FaultPlan

#: Optional alternative executor for whole configurations.  When
#: installed (``RunContext(backend=...)``), :meth:`MergeSimulation.run`
#: delegates to it — this is how the sweep engine (:mod:`repro.sweep`)
#: transparently adds caching and a worker pool underneath existing
#: experiment code.  Backends must preserve the serial contract: trial
#: ``t`` seeded ``base_seed + t``, trials aggregated in order.
SimulationBackend = Callable[[SimulationConfig], AggregateMetrics]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see docs/OBSERVABILITY.md "
        "for the RunContext migration guide)",
        DeprecationWarning,
        stacklevel=3,
    )


def set_simulation_backend(
    backend: Optional[SimulationBackend],
) -> Optional[SimulationBackend]:
    """Deprecated shim for ``RunContext(backend=...)``.

    Installs (or clears, with ``None``) the ambient backend and
    returns the previous one.
    """
    _deprecated("set_simulation_backend", "repro.api.RunContext(backend=...)")
    return api.set_option("backend", backend)


@contextlib.contextmanager
def simulation_backend(backend: Optional[SimulationBackend]):
    """Deprecated shim: scoped backend via :class:`repro.api.RunContext`."""
    _deprecated("simulation_backend", "repro.api.configure(backend=...)")
    with api.RunContext(backend=backend):
        yield backend


def set_fault_plan_override(
    plan: Optional[FaultPlan],
) -> Optional[FaultPlan]:
    """Deprecated shim for ``RunContext(fault_plan=...)``.

    Installs (or clears, with ``None``) the ambient fault plan applied
    to configs that do not carry one of their own.
    """
    _deprecated(
        "set_fault_plan_override", "repro.api.RunContext(fault_plan=...)"
    )
    return api.set_option("fault_plan", plan)


@contextlib.contextmanager
def fault_plan_override(plan: Optional[FaultPlan]):
    """Deprecated shim: scoped fault plan via :class:`repro.api.RunContext`.

    Configs with an explicit ``fault_plan`` keep it; only plan-free
    configs pick up the override.
    """
    _deprecated("fault_plan_override", "repro.api.configure(fault_plan=...)")
    with api.RunContext(fault_plan=plan):
        yield plan


def set_kernel_override(kernel: Optional[str]) -> Optional[str]:
    """Deprecated shim for ``RunContext(kernel=...)``.

    Installs (or clears, with ``None``) the ambient kernel name.  Safe
    by construction: both kernels produce bit-identical metrics.
    """
    _deprecated("set_kernel_override", "repro.api.RunContext(kernel=...)")
    return api.set_option("kernel", kernel)


@contextlib.contextmanager
def kernel_override(kernel: Optional[str]):
    """Deprecated shim: scoped kernel via :class:`repro.api.RunContext`.

    Every config constructed into a :class:`MergeSimulation` inside the
    scope runs on the named kernel, regardless of its own ``kernel``
    field (the override is for operators choosing *how* to execute, not
    *what* to simulate — and the kernels are result-equivalent).
    """
    _deprecated("kernel_override", "repro.api.configure(kernel=...)")
    with api.RunContext(kernel=kernel):
        yield kernel


class MergeSimulation:
    """Runs ``config.trials`` independent trials and aggregates them."""

    def __init__(self, config: SimulationConfig) -> None:
        ambient_plan = api.current_fault_plan()
        if ambient_plan is not None and config.fault_plan is None:
            config = dataclasses.replace(config, fault_plan=ambient_plan)
        ambient_kernel = api.current_kernel()
        if ambient_kernel is not None and config.kernel != ambient_kernel:
            config = dataclasses.replace(config, kernel=ambient_kernel)
        self.config = config

    def run_trial(
        self,
        *,
        trial: int = 0,
        depletion_source: Optional[Iterator[int]] = None,
    ) -> MergeMetrics:
        """Run one trial; trial ``t`` is seeded ``base_seed + t``."""
        return MergeTrial(
            self.config,
            seed=self.config.base_seed + trial,
            depletion_source=depletion_source,
        ).run()

    def run(self) -> AggregateMetrics:
        """Run all trials and return aggregated metrics.

        Delegates to the ambient simulation backend, if any (see
        ``repro.api.RunContext(backend=...)``); the serial in-process
        loop is the default.
        """
        backend = api.current_backend()
        if backend is not None:
            return backend(self.config)
        trials = [
            self.run_trial(trial=t) for t in range(self.config.trials)
        ]
        return AggregateMetrics(
            config_description=self.config.describe(),
            trials=trials,
        )


def simulate_merge(
    num_runs: int,
    num_disks: int,
    *,
    strategy: PrefetchStrategy = PrefetchStrategy.NONE,
    prefetch_depth: int = 1,
    **kwargs,
) -> AggregateMetrics:
    """Thin convenience wrapper over :class:`MergeSimulation`.

    Exactly equivalent to building a
    :class:`~repro.core.parameters.SimulationConfig` from the arguments
    (extra keywords are forwarded verbatim) and calling
    ``MergeSimulation(config).run()`` — same ambient options, same
    backend routing, same aggregation.  Use the class when you need to
    keep the config around or run individual trials.
    """
    config = SimulationConfig(
        num_runs=num_runs,
        num_disks=num_disks,
        strategy=strategy,
        prefetch_depth=prefetch_depth,
        **kwargs,
    )
    return MergeSimulation(config).run()
