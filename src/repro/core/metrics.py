"""Measurement: per-trial metrics and cross-trial aggregation.

The paper's two headline measures are the **total merge time** and, for
inter-run prefetching, the **success ratio** (fraction of demand-fetch
decisions for which the cache had room for the full ``D*N`` prefetch).
We additionally record the decomposition of disk time into seek /
rotation / transfer, the time-averaged number of concurrently busy
disks (the quantity bounded by the urn-game analysis), CPU stall time,
and cache occupancy statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.disks.drive import DriveStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class ConcurrencyTracker:
    """Time-weighted statistics on the number of busy disks."""

    def __init__(
        self,
        sim: "Simulator",
        num_disks: int,
        record_timeline: bool = False,
    ) -> None:
        self.sim = sim
        self.num_disks = num_disks
        self._busy = [False] * num_disks
        self._busy_count = 0
        self._last_time = sim.now
        self._weighted_busy_ms = 0.0
        self._active_ms = 0.0
        self.peak = 0
        self.timeline: list[tuple[float, float]] | None = (
            [(sim.now, 0.0)] if record_timeline else None
        )

    def on_busy_change(self, disk: int, busy: bool) -> None:
        if self._busy[disk] == busy:
            return
        self._advance()
        self._busy[disk] = busy
        self._busy_count += 1 if busy else -1
        self.peak = max(self.peak, self._busy_count)
        if self.timeline is not None:
            self.timeline.append((self.sim.now, float(self._busy_count)))

    def _advance(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed > 0:
            self._weighted_busy_ms += self._busy_count * elapsed
            if self._busy_count > 0:
                self._active_ms += elapsed
        self._last_time = now

    def average_concurrency(self) -> float:
        """Mean busy disks over intervals where at least one is busy.

        This is the quantity the urn-game model predicts to approach
        ``sqrt(pi*D/2) - 1/3`` for unsynchronized intra-run prefetching
        at large ``N``.
        """
        self._advance()
        if self._active_ms <= 0:
            return 0.0
        return self._weighted_busy_ms / self._active_ms

    def busy_fraction(self) -> float:
        """Fraction of elapsed time during which any disk was busy."""
        self._advance()
        if self._last_time <= 0:
            return 0.0
        return self._active_ms / self._last_time


@dataclass
class MergeMetrics:
    """Everything measured in one simulation trial (times in ms)."""

    config_description: str
    seed: int
    total_time_ms: float
    blocks_depleted: int
    blocks_fetched: int
    fetch_requests: int
    demand_situations: int
    demand_hits_in_flight: int
    fetch_decisions: int
    full_prefetch_decisions: int
    cpu_stall_ms: float
    cpu_busy_ms: float
    drive_stats: list[DriveStats]
    average_concurrency: float
    peak_concurrency: int
    disk_busy_fraction: float
    cache_min_free: int
    cache_mean_occupancy: float
    cache_peak_occupancy: int
    blocks_written: int = 0
    write_stall_ms: float = 0.0
    write_stalls: int = 0
    # Fault-injection measurements (zero without a fault plan).  Stall
    # time is attributed by drive health at the moment of the stall:
    # healthy_stall_ms + fault_stall_ms == cpu_stall_ms always.
    fault_stall_ms: float = 0.0
    healthy_stall_ms: float = 0.0
    demand_timeouts: int = 0
    degraded_skips: int = 0
    concurrency_timeline: Optional[list[tuple[float, float]]] = None
    cache_timeline: Optional[list[tuple[float, float]]] = None
    request_traces: Optional[list] = None

    #: Scalar fields serialized verbatim by :meth:`to_dict`.
    _SCALAR_FIELDS = (
        "config_description", "seed", "total_time_ms", "blocks_depleted",
        "blocks_fetched", "fetch_requests", "demand_situations",
        "demand_hits_in_flight", "fetch_decisions", "full_prefetch_decisions",
        "cpu_stall_ms", "cpu_busy_ms", "average_concurrency",
        "peak_concurrency", "disk_busy_fraction", "cache_min_free",
        "cache_mean_occupancy", "cache_peak_occupancy", "blocks_written",
        "write_stall_ms", "write_stalls", "fault_stall_ms",
        "healthy_stall_ms", "demand_timeouts", "degraded_skips",
    )

    def to_dict(self) -> dict:
        """JSON-able snapshot of one trial.

        Everything round-trips through :meth:`from_dict`, including the
        optional timelines and request traces, so cached sweep results
        are interchangeable with freshly simulated ones.
        """
        data = {name: getattr(self, name) for name in self._SCALAR_FIELDS}
        data["drive_stats"] = [stats.to_dict() for stats in self.drive_stats]
        for name in ("concurrency_timeline", "cache_timeline"):
            timeline = getattr(self, name)
            data[name] = (
                None if timeline is None else [[t, v] for t, v in timeline]
            )
        data["request_traces"] = (
            None
            if self.request_traces is None
            else [trace.to_dict() for trace in self.request_traces]
        )
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MergeMetrics":
        """Inverse of :meth:`to_dict`.

        Tolerant across schema versions: keys this version does not
        know are ignored, and known-but-absent keys fall back to their
        field defaults -- so caches written by newer writers (extra
        counters) and by older writers (missing counters) both load.
        """
        import dataclasses

        from repro.core.tracing import RequestTrace

        defaults = {
            f.name: f.default
            for f in dataclasses.fields(cls)
            if f.default is not dataclasses.MISSING
        }
        kwargs = {
            name: data[name] if name in data else defaults[name]
            for name in cls._SCALAR_FIELDS
            if name in data or name in defaults
        }
        for name in cls._SCALAR_FIELDS:
            if name not in kwargs:  # required field genuinely missing
                kwargs[name] = data[name]
        kwargs["drive_stats"] = [
            DriveStats.from_dict(stats) for stats in data["drive_stats"]
        ]
        for name in ("concurrency_timeline", "cache_timeline"):
            timeline = data.get(name)
            kwargs[name] = (
                None if timeline is None else [(t, v) for t, v in timeline]
            )
        traces = data.get("request_traces")
        kwargs["request_traces"] = (
            None
            if traces is None
            else [RequestTrace.from_dict(trace) for trace in traces]
        )
        return cls(**kwargs)

    @property
    def total_time_s(self) -> float:
        return self.total_time_ms / 1000.0

    @property
    def success_ratio(self) -> float:
        """Fraction of fetch decisions that initiated a full prefetch.

        Defined (per the paper) only for inter-run prefetching; returns
        1.0 when no decisions were counted so that intra-run runs read
        as "always successful".
        """
        if self.fetch_decisions == 0:
            return 1.0
        return self.full_prefetch_decisions / self.fetch_decisions

    @property
    def mean_io_ms_per_block(self) -> float:
        """Total elapsed time over blocks: comparable to the paper's tau
        only for strategies without overlap (synchronized cases)."""
        if self.blocks_depleted == 0:
            return 0.0
        return self.total_time_ms / self.blocks_depleted

    @property
    def total_seek_ms(self) -> float:
        return sum(stats.seek_ms for stats in self.drive_stats)

    @property
    def total_rotation_ms(self) -> float:
        return sum(stats.rotation_ms for stats in self.drive_stats)

    @property
    def total_transfer_ms(self) -> float:
        return sum(stats.transfer_ms for stats in self.drive_stats)


#: Two-sided 95% Student-t critical values by degrees of freedom; the
#: normal value (1.960) serves beyond the table.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
    20: 2.086, 25: 2.060, 30: 2.042,
}


def _t_critical(degrees_of_freedom: int) -> float:
    if degrees_of_freedom <= 0:
        return float("nan")
    if degrees_of_freedom in _T_95:
        return _T_95[degrees_of_freedom]
    candidates = [df for df in _T_95 if df <= degrees_of_freedom]
    if candidates:
        return _T_95[max(candidates)] if degrees_of_freedom < 30 else 1.960
    return 1.960


@dataclass
class Aggregate:
    """Mean and sample standard deviation of one scalar across trials."""

    mean: float
    std: float
    count: int
    values: tuple[float, ...] = field(repr=False, default=())

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        n = len(values)
        if n == 0:
            return cls(mean=float("nan"), std=float("nan"), count=0)
        mean = sum(values) / n
        if n == 1:
            std = 0.0
        else:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
            std = math.sqrt(variance)
        return cls(mean=mean, std=std, count=n, values=tuple(values))

    def confidence_interval(self) -> tuple[float, float]:
        """Two-sided 95% Student-t confidence interval for the mean.

        Returns ``(mean, mean)`` for a single trial (no spread
        information) and ``(nan, nan)`` for an empty aggregate.
        """
        if self.count == 0:
            return (float("nan"), float("nan"))
        if self.count == 1:
            return (self.mean, self.mean)
        half_width = (
            _t_critical(self.count - 1) * self.std / math.sqrt(self.count)
        )
        return (self.mean - half_width, self.mean + half_width)

    def __format__(self, spec: str) -> str:
        spec = spec or ".2f"
        return f"{self.mean:{spec}}"


@dataclass
class AggregateMetrics:
    """Averages over the trials of one configuration."""

    config_description: str
    trials: list[MergeMetrics]

    @property
    def total_time_s(self) -> Aggregate:
        return Aggregate.of([m.total_time_s for m in self.trials])

    @property
    def success_ratio(self) -> Aggregate:
        return Aggregate.of([m.success_ratio for m in self.trials])

    @property
    def average_concurrency(self) -> Aggregate:
        return Aggregate.of([m.average_concurrency for m in self.trials])

    @property
    def mean_io_ms_per_block(self) -> Aggregate:
        return Aggregate.of([m.mean_io_ms_per_block for m in self.trials])

    @property
    def cpu_stall_s(self) -> Aggregate:
        return Aggregate.of([m.cpu_stall_ms / 1000.0 for m in self.trials])

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`from_dict`)."""
        return {
            "config_description": self.config_description,
            "trials": [trial.to_dict() for trial in self.trials],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggregateMetrics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            config_description=data["config_description"],
            trials=[MergeMetrics.from_dict(trial) for trial in data["trials"]],
        )

    def __repr__(self) -> str:
        return (
            f"AggregateMetrics({self.config_description}: "
            f"time={self.total_time_s:.2f}s over {len(self.trials)} trials)"
        )
