"""Request-level tracing: every I/O, with waits and service windows.

Where :mod:`repro.core.timeline` aggregates, this records each fetch
request individually -- issue time, service start, completion, disk,
kind, block count -- when a trial runs with ``record_requests=True``.
The analyzers answer the questions aggregate metrics cannot: how long
do demand fetches queue behind prefetches?  Which disk is the straggler
in synchronized rounds?  ``render_gantt`` draws the per-disk service
windows as ASCII so a single stall is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.disks.request import BlockFetchRequest, FetchKind


@dataclass(frozen=True)
class RequestTrace:
    """One serviced fetch request."""

    run: int
    disk: int
    kind: FetchKind
    blocks: int
    issue_ms: float
    start_ms: float
    finish_ms: float

    @property
    def queue_wait_ms(self) -> float:
        return self.start_ms - self.issue_ms

    @property
    def service_ms(self) -> float:
        return self.finish_ms - self.start_ms

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`from_dict`)."""
        return {
            "run": self.run,
            "disk": self.disk,
            "kind": self.kind.value,
            "blocks": self.blocks,
            "issue_ms": self.issue_ms,
            "start_ms": self.start_ms,
            "finish_ms": self.finish_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestTrace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run=data["run"],
            disk=data["disk"],
            kind=FetchKind(data["kind"]),
            blocks=data["blocks"],
            issue_ms=data["issue_ms"],
            start_ms=data["start_ms"],
            finish_ms=data["finish_ms"],
        )

    @classmethod
    def from_request(cls, request: BlockFetchRequest, disk: int) -> "RequestTrace":
        if request.start_service_time is None or request.finish_time is None:
            raise ValueError("request has not completed service")
        return cls(
            run=request.run,
            disk=disk,
            kind=request.kind,
            blocks=request.count,
            issue_ms=request.issue_time,
            start_ms=request.start_service_time,
            finish_ms=request.finish_time,
        )


@dataclass(frozen=True)
class RequestStatistics:
    """Summary over one kind of request."""

    count: int
    mean_queue_wait_ms: float
    max_queue_wait_ms: float
    mean_service_ms: float
    total_blocks: int


def request_statistics(
    traces: Sequence[RequestTrace],
    kind: FetchKind | None = None,
) -> RequestStatistics:
    """Aggregate waits and service times, optionally by kind."""
    selected = [t for t in traces if kind is None or t.kind is kind]
    if not selected:
        return RequestStatistics(0, 0.0, 0.0, 0.0, 0)
    waits = [t.queue_wait_ms for t in selected]
    services = [t.service_ms for t in selected]
    return RequestStatistics(
        count=len(selected),
        mean_queue_wait_ms=sum(waits) / len(waits),
        max_queue_wait_ms=max(waits),
        mean_service_ms=sum(services) / len(services),
        total_blocks=sum(t.blocks for t in selected),
    )


def render_gantt(
    traces: Sequence[RequestTrace],
    num_disks: int,
    width: int = 72,
    start_ms: float = 0.0,
    end_ms: float | None = None,
) -> str:
    """ASCII service chart: one row per disk, time left to right.

    Cells show ``D`` where a demand fetch is in service, ``p`` for a
    prefetch, ``.`` idle.  Overlaps within a cell favour demand marks.
    """
    if num_disks < 1:
        raise ValueError("need at least one disk")
    if not traces:
        raise ValueError("no traces to render")
    horizon = end_ms if end_ms is not None else max(t.finish_ms for t in traces)
    if horizon <= start_ms:
        raise ValueError("empty time window")
    span = horizon - start_ms
    rows = [["."] * width for _ in range(num_disks)]

    def column(time_ms: float) -> int:
        fraction = (time_ms - start_ms) / span
        return min(width - 1, max(0, int(fraction * width)))

    for trace in traces:
        if trace.finish_ms < start_ms or trace.start_ms > horizon:
            continue
        mark = "D" if trace.kind is FetchKind.DEMAND else "p"
        first = column(max(trace.start_ms, start_ms))
        last = column(min(trace.finish_ms, horizon))
        row = rows[trace.disk]
        for cell in range(first, last + 1):
            if row[cell] != "D":  # demand marks win overlaps
                row[cell] = mark
    lines = [
        f"disk {disk} |{''.join(row)}|" for disk, row in enumerate(rows)
    ]
    lines.append(
        f"        {start_ms:.0f}ms{'':>{max(1, width - 12)}}{horizon:.0f}ms"
    )
    lines.append("        D demand fetch   p prefetch   . idle")
    return "\n".join(lines)
