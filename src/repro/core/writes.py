"""Write traffic: the dimension the paper sets aside.

The paper routes the merge's output to "a separate set of disks" and
then ignores it "to focus on the benefits of prefetching".  This module
models that separate write subsystem so the assumption can be tested:

* The merge emits one output block per input block depleted; blocks go
  to ``W`` write disks round-robin and each disk writes its stream
  sequentially (first write pays a rotational latency, the rest stream
  at transfer rate).
* Each write disk has a bounded buffer of ``write_buffer_blocks``
  not-yet-written blocks.  When the target disk's buffer is full the
  merge **stalls** -- the backpressure that makes an undersized write
  array the bottleneck.

The classic sizing result falls out: with the read side delivering one
block per ``T/D`` on average, the writes need ``W >= D`` equal disks to
stay off the critical path (see the ``ext-write-traffic`` experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.disks.drive import DiskDrive
from repro.disks.geometry import DiskGeometry
from repro.disks.request import BlockFetchRequest, FetchKind
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.parameters import DiskParameters
    from repro.obs.collector import TrialTrace
    from repro.sim.kernel import Simulator
    from repro.sim.random_streams import RandomStreams


@dataclass
class WriteStats:
    """Aggregate write-subsystem statistics (times in ms)."""

    blocks_written: int = 0
    stalls: int = 0
    stall_ms: float = 0.0


class WriteSubsystem:
    """``W`` write disks absorbing the merge's output stream."""

    def __init__(
        self,
        sim: "Simulator",
        num_disks: int,
        parameters: "DiskParameters",
        geometry: DiskGeometry,
        streams: "RandomStreams",
        buffer_blocks: int = 2,
        trace: Optional["TrialTrace"] = None,
    ) -> None:
        if num_disks < 1:
            raise ValueError("need at least one write disk")
        if buffer_blocks < 1:
            raise ValueError("write buffer must hold at least one block")
        self.sim = sim
        self.buffer_blocks = buffer_blocks
        self.stats = WriteStats()
        self._next_address = [0] * num_disks
        self._outstanding: list[list[BlockFetchRequest]] = [
            [] for _ in range(num_disks)
        ]
        self._cursor = 0
        self.drives = [
            DiskDrive(
                sim,
                drive_id=disk,
                geometry=geometry,
                parameters=parameters,
                rng=streams.stream(f"write-disk-{disk}"),
                # Output streams sequentially: let back-to-back writes
                # skip positioning, as a log-structured writer would.
                stream_across_requests=True,
                address_of=self._address_of,
                trace=trace,
                track=f"write-{disk}",
            )
            for disk in range(num_disks)
        ]
        self._addresses: dict[int, int] = {}

    def _address_of(self, request: BlockFetchRequest) -> int:
        return self._addresses[id(request)]

    def write_block(self) -> Optional[Event]:
        """Emit one output block.

        Returns an event the caller must wait on when the target disk's
        buffer is full (backpressure), or ``None`` when the write was
        absorbed without stalling.
        """
        disk = self._cursor
        self._cursor = (self._cursor + 1) % len(self.drives)

        request = BlockFetchRequest(
            self.sim,
            run=disk,  # identifies the output stream, not an input run
            first_block=self._next_address[disk],
            count=1,
            kind=FetchKind.PREFETCH,
        )
        self._addresses[id(request)] = self._next_address[disk]
        self._next_address[disk] += 1
        outstanding = self._outstanding[disk]
        outstanding.append(request)
        request.completed.add_callback(
            lambda _e, d=disk, r=request: self._finished(d, r)
        )
        self.drives[disk].submit(request)
        self.stats.blocks_written += 1

        if len(outstanding) > self.buffer_blocks:
            self.stats.stalls += 1
            return outstanding[0].completed
        return None

    def _finished(self, disk: int, request: BlockFetchRequest) -> None:
        self._outstanding[disk].remove(request)
        self._addresses.pop(id(request), None)

    def drain_event(self) -> Optional[Event]:
        """An event firing when every queued write has completed."""
        from repro.sim.events import AllOf

        pending = [
            request.completed
            for per_disk in self._outstanding
            for request in per_disk
        ]
        if not pending:
            return None
        return AllOf(self.sim, pending)
