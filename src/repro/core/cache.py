"""The RAM block cache.

Space accounting uses *reserve-at-issue* semantics: a slot is claimed
the moment a fetch is queued at a disk (so concurrent fetches can never
oversubscribe the cache) and released the moment a block is depleted by
the merge.  The cache also keeps per-run bookkeeping -- how many blocks
are cached, how many are in flight, which block is depleted next --
and lets the CPU process wait for the arrival of a specific in-flight
block.

Because all blocks of a run live on one disk and the disk services its
queue FIFO, a run's blocks always arrive in index order; the per-run
state therefore reduces to a handful of counters rather than explicit
block sets.  Invariants are asserted in :meth:`BlockCache.check`
(exercised heavily by the property-based tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class CacheAccountingError(RuntimeError):
    """An operation violated the cache space or ordering invariants."""


@dataclass
class RunCacheState:
    """Cache bookkeeping for one run.

    Block indices of a run form four contiguous zones, left to right:
    ``[0, next_deplete)`` already merged, ``[next_deplete,
    next_deplete + cached)`` resident, then ``in_flight`` blocks on
    their way from disk, then ``[next_fetch, total_blocks)`` still on
    disk.
    """

    run: int
    total_blocks: int
    cached: int = 0
    in_flight: int = 0
    next_deplete: int = 0
    next_fetch: int = 0

    @property
    def depleted(self) -> int:
        return self.next_deplete

    @property
    def on_disk(self) -> int:
        """Blocks not yet requested from the disk."""
        return self.total_blocks - self.next_fetch

    @property
    def unmerged(self) -> int:
        """Blocks of this run the merge has not consumed yet."""
        return self.total_blocks - self.next_deplete

    @property
    def finished(self) -> bool:
        return self.unmerged == 0

    def check(self) -> None:
        if not (0 <= self.cached and 0 <= self.in_flight):
            raise CacheAccountingError(f"negative counters in run {self.run}: {self}")
        if self.next_deplete + self.cached + self.in_flight != self.next_fetch:
            raise CacheAccountingError(f"zone mismatch in run {self.run}: {self}")
        if self.next_fetch > self.total_blocks:
            raise CacheAccountingError(f"over-fetched run {self.run}: {self}")


class BlockCache:
    """Fixed-capacity block cache shared by all runs."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: int,
        runs: int,
        blocks_per_run: int,
        record_timeline: bool = False,
    ) -> None:
        if capacity < 1:
            raise CacheAccountingError("cache capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._free = capacity
        self.runs = [RunCacheState(run, blocks_per_run) for run in range(runs)]
        self._waiters: dict[tuple[int, int], Event] = {}
        # Statistics.
        self.min_free = capacity
        self._occupancy_weighted_ms = 0.0
        self._last_change_ms = sim.now
        self.peak_occupancy = 0
        self.timeline: list[tuple[float, float]] | None = (
            [(sim.now, 0.0)] if record_timeline else None
        )

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def free(self) -> int:
        return self._free

    @property
    def occupied_or_reserved(self) -> int:
        return self.capacity - self._free

    def can_reserve(self, blocks: int) -> bool:
        return blocks <= self._free

    def reserve(self, run: int, blocks: int) -> None:
        """Claim space for ``blocks`` in-flight blocks of ``run``."""
        if blocks < 1:
            raise CacheAccountingError("must reserve at least one block")
        if blocks > self._free:
            raise CacheAccountingError(
                f"reserve({blocks}) exceeds free space {self._free}"
            )
        state = self.runs[run]
        if state.next_fetch + blocks > state.total_blocks:
            raise CacheAccountingError(
                f"run {run} has only {state.on_disk} blocks left on disk, "
                f"cannot fetch {blocks}"
            )
        self._account()
        self._free -= blocks
        state.in_flight += blocks
        state.next_fetch += blocks
        self.min_free = min(self.min_free, self._free)
        self.peak_occupancy = max(self.peak_occupancy, self.occupied_or_reserved)
        self._note()

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    def preload(self, run: int, blocks: int) -> None:
        """Install the initial resident blocks of ``run`` at no I/O cost."""
        self.reserve(run, blocks)
        state = self.runs[run]
        state.in_flight -= blocks
        state.cached += blocks

    def block_arrived(self, run: int, block_index: int) -> None:
        """A fetched block landed in memory."""
        state = self.runs[run]
        expected = state.next_deplete + state.cached
        if block_index != expected:
            raise CacheAccountingError(
                f"run {run}: block {block_index} arrived out of order "
                f"(expected {expected})"
            )
        if state.in_flight <= 0:
            raise CacheAccountingError(f"run {run}: arrival with nothing in flight")
        self._account()
        state.in_flight -= 1
        state.cached += 1
        waiter = self._waiters.pop((run, block_index), None)
        if waiter is not None:
            waiter.succeed((run, block_index))

    def deplete(self, run: int) -> int:
        """Consume the leading resident block of ``run``; frees one slot.

        Returns the index of the depleted block.
        """
        state = self.runs[run]
        if state.cached < 1:
            raise CacheAccountingError(f"run {run} has no resident block to deplete")
        self._account()
        index = state.next_deplete
        state.cached -= 1
        state.next_deplete += 1
        self._free += 1
        self._note()
        return index

    def arrival_event(self, run: int, block_index: int) -> Event:
        """An event firing when ``block_index`` of ``run`` arrives.

        The block must already be in flight; arrival order per run is
        monotone so at most one distinct waiter per (run, block) exists.
        """
        state = self.runs[run]
        in_flight_range = (
            state.next_deplete + state.cached,
            state.next_deplete + state.cached + state.in_flight,
        )
        if not in_flight_range[0] <= block_index < in_flight_range[1]:
            raise CacheAccountingError(
                f"run {run}: block {block_index} is not in flight "
                f"(in-flight range {in_flight_range})"
            )
        key = (run, block_index)
        event = self._waiters.get(key)
        if event is None:
            # Created through the kernel factory so an optimized kernel
            # (repro.sim.fast) can supply its fast event variant.
            event = self.sim.event()
            self._waiters[key] = event
        return event

    # ------------------------------------------------------------------
    # Statistics and invariants
    # ------------------------------------------------------------------
    def _note(self) -> None:
        if self.timeline is not None:
            self.timeline.append((self.sim.now, float(self.occupied_or_reserved)))

    def _account(self) -> None:
        now = self.sim.now
        self._occupancy_weighted_ms += self.occupied_or_reserved * (
            now - self._last_change_ms
        )
        self._last_change_ms = now

    def mean_occupancy(self) -> float:
        """Time-weighted mean of occupied+reserved slots so far."""
        self._account()
        elapsed = self._last_change_ms
        if elapsed <= 0:
            return float(self.occupied_or_reserved)
        return self._occupancy_weighted_ms / elapsed

    def check(self) -> None:
        """Validate every invariant; raises on violation."""
        total_held = 0
        for state in self.runs:
            state.check()
            total_held += state.cached + state.in_flight
        if total_held + self._free != self.capacity:
            raise CacheAccountingError(
                f"space leak: held {total_held} + free {self._free} != "
                f"capacity {self.capacity}"
            )
        if self._free < 0:
            raise CacheAccountingError("negative free space")
