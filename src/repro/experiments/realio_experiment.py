"""Sim-vs-real validation as a registered experiment.

``ext-realio`` is the repository's closing of the loop the paper could
not: the paper *simulates* the claim that inter-run (forecasting)
prefetching beats intra-run prefetching; this experiment *executes*
both strategies on real files through :mod:`repro.realio`, calibrates
effective disk constants from the measured reads, re-simulates under
the fitted profile, and tables measured against predicted values.

The storage underneath is whatever backs the temp filesystem, throttled
by the backend's per-block emulation knob so the comparison is
I/O-bound even on a page cache; the calibration row of the output shows
the fitted (S, R, T) actually used for the prediction.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments.config import ExperimentResult, Scale, Table, register
from repro.realio import generate_dataset, run_validation

#: Dataset geometry: small enough that the full experiment (two
#: strategies x trials, plus the simulator re-runs) stays in seconds.
RUNS = 6
DISKS = 2

#: Emulated per-block device time (ms); see RealIOConfig.
THROTTLE_MS = 0.2


@register(
    "ext-realio",
    "Sim-vs-real validation of strategy ordering (extension)",
    "extension of Section 4; cf. Rahn/Sanders/Singler (real multi-disk "
    "sorting)",
    "Run intra-run and inter-run prefetching on real files through the "
    "repro.realio backend, fit effective (S, R, T) from measured reads, "
    "re-simulate under the fitted constants, and check that predicted "
    "strategy orderings hold in measurement.",
)
def ext_realio(scale: Scale) -> ExperimentResult:
    blocks_per_run = max(8, min(32, scale.blocks_per_run // 8))
    with tempfile.TemporaryDirectory(prefix="repro-ext-realio-") as tmp:
        dataset = generate_dataset(
            Path(tmp),
            num_runs=RUNS,
            num_disks=DISKS,
            blocks_per_run=blocks_per_run,
            seed=scale.base_seed,
        )
        report = run_validation(
            dataset,
            prefetch_depth=4,
            trials=scale.trials,
            base_seed=scale.base_seed,
            throttle_ms_per_block=THROTTLE_MS,
        )

    comparison = Table(
        title=(
            f"Measured (real backend) vs predicted (calibrated simulator), "
            f"k={RUNS} D={DISKS} {blocks_per_run} blocks/run, "
            f"{scale.trials} trial(s)"
        ),
        headers=[
            "strategy", "stall meas (ms)", "stall pred (ms)",
            "total meas (ms)", "total pred (ms)",
            "demand meas", "demand pred",
        ],
        rows=[
            [
                outcome.strategy.value,
                outcome.measured_stall_ms,
                outcome.predicted_stall_ms,
                outcome.measured_total_ms,
                outcome.predicted_total_ms,
                outcome.measured_demand_situations,
                outcome.predicted_demand_situations,
            ]
            for outcome in report.outcomes
        ],
    )
    fit = report.calibration.calibration
    calibration = Table(
        title="Calibrated effective disk constants (fit to measured reads)",
        headers=["constant", "fitted", "paper"],
        rows=[
            ["S (ms/cylinder)", fit.seek_ms_per_cylinder, 0.03],
            ["R (ms)", fit.avg_rotational_latency_ms, 8.33],
            ["T (ms/block)", fit.transfer_ms_per_block, 2.05],
        ],
    )
    notes = [
        f"stall-time ordering agreement: {report.stall_ordering_agrees} "
        "(primary check: stall time is what prefetching removes)",
        f"demand-situation ordering agreement: "
        f"{report.demand_ordering_agrees} (structural: both executors run "
        "the identical planner logic)",
        f"total-time ordering agreement: {report.total_ordering_agrees} "
        "(informational: noisy on page-cache-fast storage)",
        f"verdict: the calibrated simulator and the real backend "
        f"{'AGREE' if report.agrees else 'DISAGREE'} on strategy ordering",
        f"device emulation: {THROTTLE_MS:g} ms/block throttle over the "
        "temp filesystem; the fitted constants describe that effective "
        "device, not a 1992 drive",
    ]
    result = ExperimentResult(
        experiment_id="ext-realio",
        title="Sim-vs-real validation of strategy ordering (extension)",
        tables=[comparison, calibration],
        notes=notes,
    )
    if not report.agrees:
        result.error = "real backend and calibrated simulator disagree"
    return result
