"""ASCII chart rendering for experiment reports.

The paper's artifacts are figures; the harness reproduces them as data
tables plus, via this module, terminal-friendly line charts so a report
can be *read* the way the figure is.  Pure text, no dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

#: Glyphs assigned to successive series.
MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One named curve: points are (x, y) pairs."""

    label: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def of(cls, label: str, xs: Sequence[float], ys: Sequence[float]) -> "Series":
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        return cls(label=label, points=tuple(zip(xs, ys)))


def render_chart(
    series: Sequence[Series],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    y_floor: Optional[float] = 0.0,
) -> str:
    """Render series as an ASCII scatter/line chart.

    ``y_floor`` pins the bottom of the y axis (0 by default so
    magnitudes are honest); pass ``None`` to fit the data.
    """
    if not series or all(not s.points for s in series):
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small")

    xs = [x for s in series for x, _y in s.points]
    ys = [y for s in series for _x, y in s.points]
    x_low, x_high = min(xs), max(xs)
    y_low = min(ys) if y_floor is None else min(y_floor, min(ys))
    y_high = max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][column] = marker

    for index, one in enumerate(series):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in one.points:
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    gutter = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(" " * gutter + "  " + axis)
    if x_label or y_label:
        lines.append(" " * gutter + f"  x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {one.label}" for i, one in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def chart_from_table(table, x_header: str, y_headers: Sequence[str],
                     title: str = "", **kwargs) -> str:
    """Build a chart from a :class:`~repro.experiments.config.Table`.

    Non-numeric cells (e.g. the ``-`` used for infeasible cache sizes)
    are skipped.
    """
    x_index = table.headers.index(x_header)
    series = []
    for header in y_headers:
        y_index = table.headers.index(header)
        points = [
            (float(row[x_index]), float(row[y_index]))
            for row in table.rows
            if _numeric(row[x_index]) and _numeric(row[y_index])
        ]
        series.append(Series(label=header, points=tuple(points)))
    return render_chart(series, title=title or table.title, **kwargs)


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
