"""The companion-TR Markov analysis as a registered experiment.

``tab-markov`` reports, for ``D`` disks with one run per disk and
``N = 1`` (the TR's setting): the synchronous-chain average I/O
parallelism of the conservative and greedy almost-full-cache policies
across cache sizes, next to the *timed* simulation's average disk
concurrency and total time for the same configurations.

Reproduction note: the paper summarizes the TR as showing conservative
parallelism "superior ... for all reasonable values of cache size and
number of disks".  In our timed reproduction greedy partial prefetching
is never slower at ``N = 1`` -- the conservative policy's advantage does
not manifest in wall-clock terms here (both policies converge as the
cache grows, and at very tight caches greedy's partial rounds keep more
disks busy).  The table below makes that comparison explicit;
EXPERIMENTS.md discusses it.
"""

from __future__ import annotations

from repro.analysis.markov import average_parallelism
from repro.core.parameters import (
    CachePolicy,
    PrefetchStrategy,
    SimulationConfig,
)
from repro.core.simulator import MergeSimulation
from repro.experiments.config import ExperimentResult, Scale, Table, register

DISKS = 4
CACHES = [6, 8, 10, 12, 16, 20]


def _timed(scale: Scale, capacity: int, policy: CachePolicy):
    config = SimulationConfig(
        num_runs=DISKS,
        num_disks=DISKS,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=1,
        cache_capacity=capacity,
        cache_policy=policy,
        blocks_per_run=scale.blocks_per_run,
        trials=scale.trials,
        base_seed=scale.base_seed,
    )
    return MergeSimulation(config).run()


@register(
    "tab-markov",
    "Markov analysis of almost-full-cache policies",
    "Section 2 / companion TR (Pai, Schaffer, Varman)",
    "D disks with one run per disk, N=1: exact synchronous-chain "
    "parallelism for conservative vs greedy, with timed simulation "
    "cross-check.",
)
def tab_markov(scale: Scale) -> ExperimentResult:
    caches = scale.thin(CACHES)
    rows = []
    for capacity in caches:
        conservative = average_parallelism(
            DISKS, capacity, CachePolicy.CONSERVATIVE
        )
        greedy = average_parallelism(DISKS, capacity, CachePolicy.GREEDY)
        sim_cons = _timed(scale, capacity, CachePolicy.CONSERVATIVE)
        sim_greedy = _timed(scale, capacity, CachePolicy.GREEDY)
        rows.append(
            [
                capacity,
                conservative.average_parallelism,
                greedy.average_parallelism,
                sim_cons.average_concurrency.mean,
                sim_greedy.average_concurrency.mean,
                sim_cons.total_time_s.mean,
                sim_greedy.total_time_s.mean,
            ]
        )
    table = Table(
        title=(
            f"D={DISKS} disks, one run per disk, N=1: chain parallelism "
            f"and timed simulation ({scale.blocks_per_run} blocks/run)"
        ),
        headers=[
            "cache",
            "chain cons.",
            "chain greedy",
            "sim conc cons.",
            "sim conc greedy",
            "time cons. (s)",
            "time greedy (s)",
        ],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="tab-markov",
        title="Almost-full-cache policy: Markov chain vs timed simulation",
        tables=[table],
        notes=[
            "both policies converge to D-parallelism as the cache grows",
            "reproduction divergence: in wall-clock terms greedy is never "
            "slower here at N=1, unlike the companion TR's parallelism "
            "ordering the paper cites; the paper's conservative default is "
            "kept throughout for fidelity",
        ],
    )
