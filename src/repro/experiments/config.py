"""Experiment descriptors, result containers, and the registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class Scale:
    """How big to run an experiment.

    ``full()`` matches the paper (1000-block runs, 5 trials, dense
    sweeps); ``quick()`` shrinks everything for CI and benchmarks while
    keeping the qualitative shape (who wins, where curves flatten).
    """

    trials: int
    blocks_per_run: int
    sweep_density: float  # 1.0 = paper-density sweeps, <1 thins them out
    base_seed: int = 1992

    @classmethod
    def full(cls) -> "Scale":
        return cls(trials=5, blocks_per_run=1000, sweep_density=1.0)

    @classmethod
    def quick(cls) -> "Scale":
        return cls(trials=2, blocks_per_run=200, sweep_density=0.5)

    def thin(self, values: Sequence) -> list:
        """Thin a sweep list according to ``sweep_density``.

        Always keeps the first and last values.
        """
        if self.sweep_density >= 1.0 or len(values) <= 2:
            return list(values)
        step = max(1, round(1.0 / self.sweep_density))
        kept = list(values[::step])
        if values[-1] not in kept:
            kept.append(values[-1])
        return kept


@dataclass
class Table:
    """One formatted result table."""

    title: str
    headers: list[str]
    rows: list[list[object]]

    def render(self) -> str:
        cells = [[self._fmt(value) for value in row] for row in self.rows]
        widths = [
            max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
            for i, header in enumerate(self.headers)
        ]
        lines = [self.title]
        lines.append(
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(self.headers))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)


@dataclass
class ExperimentResult:
    """Everything an experiment produced.

    ``error`` is set (and the payload left empty) when the experiment
    raised instead of completing — the batch runner returns such
    partial results rather than aborting the whole batch.
    """

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.error is not None:
            parts.append(f"ERROR: {self.error}")
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        for chart in self.charts:
            parts.append("")
            parts.append(chart)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered, reproducible experiment."""

    experiment_id: str
    title: str
    paper_reference: str
    description: str
    runner: Callable[[Scale], ExperimentResult]

    def run(self, scale: Optional[Scale] = None) -> ExperimentResult:
        return self.runner(scale or Scale.full())


_REGISTRY: dict[str, Experiment] = {}


def register(
    experiment_id: str,
    title: str,
    paper_reference: str,
    description: str,
) -> Callable[[Callable[[Scale], ExperimentResult]], Callable[[Scale], ExperimentResult]]:
    """Decorator registering an experiment runner under ``experiment_id``."""

    def decorate(runner: Callable[[Scale], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            description=description,
            runner=runner,
        )
        return runner

    return decorate


def register_alias(alias: str, experiment_id: str) -> None:
    """Expose an existing experiment under a second id."""
    base = _REGISTRY[experiment_id]
    if alias in _REGISTRY:
        raise ValueError(f"duplicate experiment id {alias!r}")
    _REGISTRY[alias] = Experiment(
        experiment_id=alias,
        title=base.title,
        paper_reference=base.paper_reference,
        description=f"(alias of {experiment_id}) {base.description}",
        runner=base.runner,
    )


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def all_experiments() -> list[Experiment]:
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]
