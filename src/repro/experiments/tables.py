"""The paper's in-text numerical results, as estimate-vs-simulation tables.

The ICDE paper reports its analytical validation inline rather than in
numbered tables; each experiment here regenerates one such cluster of
numbers.  The ``paper`` column is the value printed in the paper (valid
at full scale only: 1000-block runs, 5 trials).
"""

from __future__ import annotations

from repro.analysis import interrun, urn_game
from repro.analysis.predictions import predict
from repro.analysis.seek_model import SeekDistanceModel
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.experiments.config import ExperimentResult, Scale, Table, register
from repro.workloads.depletion import DepletionTrace


def _config(scale: Scale, **kwargs) -> SimulationConfig:
    return SimulationConfig(
        blocks_per_run=scale.blocks_per_run,
        trials=scale.trials,
        base_seed=scale.base_seed,
        **kwargs,
    )


def _est_vs_sim_row(label: str, config: SimulationConfig, paper: object) -> list[object]:
    estimate = predict(config)
    simulated = MergeSimulation(config).run()
    return [
        label,
        estimate.total_s,
        simulated.total_time_s.mean,
        simulated.total_time_s.std,
        paper,
    ]


_EST_SIM_HEADERS = ["configuration", "estimate (s)", "simulated (s)", "std", "paper (s)"]


@register(
    "tab-seek",
    "Seek-distance distribution under random depletion",
    "Section 3.1 (Kwan-Baer extension)",
    "P(x=i) and E(x) = (k^2-1)/3k ~ k/3, against an empirical depletion "
    "trace.",
)
def tab_seek(scale: Scale) -> ExperimentResult:
    rows = []
    for k in (25, 50):
        model = SeekDistanceModel(k)
        trace = DepletionTrace.random(k, scale.blocks_per_run, seed=scale.base_seed)
        moves = trace.move_distances()
        # Only the steady state (all runs alive) matches the model;
        # the tail where runs finish shortens distances slightly.
        empirical = sum(moves) / len(moves)
        rows.append(
            [
                k,
                model.expected_moves(),
                model.expected_moves_approx(),
                empirical,
                sum(model.pmf(i) for i in model.support()),
            ]
        )
    table = Table(
        title="Expected seek moves per request (runs)",
        headers=["k", "E(x) exact", "k/3", "empirical", "pmf total"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="tab-seek",
        title="Seek-distance model",
        tables=[table],
        notes=["pmf must sum to 1; empirical mean sits slightly below the "
               "model because finished runs shrink the alive set"],
    )


@register(
    "tab-single",
    "No prefetching, single disk",
    "Section 3.1 (values 357.2s / 910s)",
    "Kwan-Baer baseline: estimate tau = m(k/3)S + R + T vs simulation.",
)
def tab_single(scale: Scale) -> ExperimentResult:
    rows = [
        _est_vs_sim_row(
            "k=25 D=1",
            _config(scale, num_runs=25, num_disks=1, strategy=PrefetchStrategy.NONE),
            357.2,
        ),
        _est_vs_sim_row(
            "k=50 D=1",
            _config(scale, num_runs=50, num_disks=1, strategy=PrefetchStrategy.NONE),
            909.7,
        ),
    ]
    return ExperimentResult(
        experiment_id="tab-single",
        title="No prefetching, single disk",
        tables=[Table("Total merge time", _EST_SIM_HEADERS, rows)],
    )


@register(
    "tab-intra-1d",
    "Intra-run prefetching, single disk",
    "Section 3.1 (81.8s / 183.2s at N=10; bounds 51.2s / 102.4s)",
    "Estimate tau = m(k/3N)S + R/N + T vs simulation for N in {10, 30}.",
)
def tab_intra_1d(scale: Scale) -> ExperimentResult:
    rows = []
    paper = {(25, 10): 81.8, (25, 30): 61.5, (50, 10): 183.2, (50, 30): 129.4}
    for k in (25, 50):
        for n in (10, 30):
            rows.append(
                _est_vs_sim_row(
                    f"k={k} N={n}",
                    _config(
                        scale,
                        num_runs=k,
                        num_disks=1,
                        strategy=PrefetchStrategy.INTRA_RUN,
                        prefetch_depth=n,
                    ),
                    paper[(k, n)],
                )
            )
    bounds = Table(
        title="Single-disk transfer-time lower bound (full scale)",
        headers=["k", "bound (s)"],
        rows=[[k, interrun.lower_bound_total_s(k, 1, _config(scale, num_runs=k, num_disks=1).disk)] for k in (25, 50)],
    )
    return ExperimentResult(
        experiment_id="tab-intra-1d",
        title="Intra-run prefetching, single disk",
        tables=[Table("Total merge time", _EST_SIM_HEADERS, rows), bounds],
        notes=["the asymptote (bound) is not reached even at N=30, as the "
               "paper observes"],
    )


@register(
    "tab-multi-nopf",
    "No prefetching, multiple disks",
    "Section 3.2 (279.0s for k=25 D=5; 558.1s for k=50 D=10)",
    "Seek-distance reduction only: tau = m(k/3D)S + R + T vs simulation.",
)
def tab_multi_nopf(scale: Scale) -> ExperimentResult:
    rows = [
        _est_vs_sim_row(
            "k=25 D=5",
            _config(scale, num_runs=25, num_disks=5, strategy=PrefetchStrategy.NONE),
            279.0,
        ),
        _est_vs_sim_row(
            "k=50 D=10",
            _config(scale, num_runs=50, num_disks=10, strategy=PrefetchStrategy.NONE),
            558.1,
        ),
    ]
    return ExperimentResult(
        experiment_id="tab-multi-nopf",
        title="No prefetching, multiple disks",
        tables=[Table("Total merge time", _EST_SIM_HEADERS, rows)],
        notes=["no overlap occurs: the gain over one disk is purely the "
               "shorter average seek (k/D runs per disk)"],
    )


@register(
    "tab-urn",
    "Urn-game concurrency for unsynchronized intra-run prefetching",
    "Section 3.2 (overlaps 2.51 / 3.66 / 5.92; 23.4s and 32.2s asymptotes)",
    "Exact E(L) = sum Q_j vs the closed form sqrt(pi D/2) - 1/3, plus "
    "measured disk concurrency and total time at N=30.",
)
def tab_urn(scale: Scale) -> ExperimentResult:
    analytic_rows = []
    for d in (5, 10, 25):
        analytic_rows.append(
            [
                d,
                urn_game.expected_concurrency(d),
                urn_game.expected_concurrency_closed_form(d),
                d,
            ]
        )
    analytic = Table(
        title="Urn game: expected concurrent disks",
        headers=["D", "E(L) exact", "sqrt(piD/2)-1/3", "best possible"],
        rows=analytic_rows,
    )

    measured_rows = []
    for k, d, paper_time in ((25, 5, 23.4), (50, 10, 32.2)):
        config = _config(
            scale,
            num_runs=k,
            num_disks=d,
            strategy=PrefetchStrategy.INTRA_RUN,
            prefetch_depth=30,
        )
        sync_total = predict(
            _config(
                scale,
                num_runs=k,
                num_disks=d,
                strategy=PrefetchStrategy.INTRA_RUN,
                prefetch_depth=30,
                synchronized=True,
            )
        ).total_s
        estimate = sync_total / urn_game.expected_concurrency(d)
        result = MergeSimulation(config).run()
        measured_rows.append(
            [
                f"k={k} D={d} N=30",
                estimate,
                result.total_time_s.mean,
                result.average_concurrency.mean,
                urn_game.expected_concurrency(d),
                paper_time,
            ]
        )
    measured = Table(
        title="Unsynchronized intra-run at N=30",
        headers=[
            "configuration",
            "estimate (s)",
            "simulated (s)",
            "measured conc.",
            "urn E(L)",
            "paper (s)",
        ],
        rows=measured_rows,
    )
    return ExperimentResult(
        experiment_id="tab-urn",
        title="Urn-game concurrency",
        tables=[analytic, measured],
        notes=[
            "concurrency grows only as sqrt(D): the central negative "
            "result for intra-run prefetching alone",
            "paper notes its simulated N=30 times (24.8s, 35s) exceed the "
            "asymptotic estimates because N=30 is below asymptotic range",
        ],
    )


@register(
    "tab-inter-sync",
    "Synchronized inter-run prefetching",
    "Section 3.2 (tau = 0.703ms, total 17.6s for k=25 D=5 N=10)",
    "Estimate mkS/(3ND^2) + 2R/(N(D+1)) + T/D vs simulation.",
)
def tab_inter_sync(scale: Scale) -> ExperimentResult:
    config = _config(
        scale,
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        cache_capacity=1200,
        synchronized=True,
    )
    rows = [_est_vs_sim_row("k=25 D=5 N=10 C=1200", config, 17.6)]
    estimate = predict(config)
    return ExperimentResult(
        experiment_id="tab-inter-sync",
        title="Synchronized inter-run prefetching",
        tables=[Table("Total merge time", _EST_SIM_HEADERS, rows)],
        notes=[f"per-block estimate tau = {estimate.block_ms:.3f} ms "
               "(paper: 0.703 ms at full scale)"],
    )


@register(
    "tab-bounds",
    "Transfer-time lower bounds and large-N inter-run behaviour",
    "Section 3.2 (bounds 10.25s / 20.5s at D=5; N=50 sims 12.2s / 20.8s)",
    "The 1/D transfer bound, approached by inter-run prefetching with "
    "large N and cache.",
)
def tab_bounds(scale: Scale) -> ExperimentResult:
    disk = _config(scale, num_runs=25, num_disks=5).disk
    bound_rows = [
        ["k=25 D=1", interrun.lower_bound_total_s(25, 1, disk), 51.2],
        ["k=50 D=1", interrun.lower_bound_total_s(50, 1, disk), 102.4],
        ["k=25 D=5", interrun.lower_bound_total_s(25, 5, disk), 10.25],
        ["k=50 D=5", interrun.lower_bound_total_s(50, 5, disk), 20.5],
        ["k=50 D=10", interrun.lower_bound_total_s(50, 10, disk), 10.25],
    ]
    bounds = Table(
        title="Transfer-time lower bounds (full scale)",
        headers=["configuration", "bound (s)", "paper (s)"],
        rows=bound_rows,
    )

    sim_rows = []
    for k, paper in ((25, 12.2), (50, 20.8)):
        config = _config(
            scale,
            num_runs=k,
            num_disks=5,
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=50,
            cache_capacity=k * 50 * 4,
        )
        result = MergeSimulation(config).run()
        sim_rows.append(
            [
                f"k={k} D=5 N=50",
                result.total_time_s.mean,
                result.success_ratio.mean,
                paper,
            ]
        )
    sims = Table(
        title="Unsynchronized inter-run at N=50 (large cache)",
        headers=["configuration", "simulated (s)", "success ratio", "paper (s)"],
        rows=sim_rows,
    )
    return ExperimentResult(
        experiment_id="tab-bounds",
        title="Lower bounds and large-N inter-run prefetching",
        tables=[bounds, sims],
        notes=["inter-run prefetching approaches the 1/D bound; intra-run "
               "alone cannot (urn-game sqrt(D) ceiling)"],
    )
