"""The paper's figures, regenerated.

* Figure 3.2 (a/b/c): total merge time vs ``N`` for intra-run ("Demand
  Run Only") and inter-run ("All Disks One Run") prefetching,
  unsynchronized.
* Figure 3.3: the effect of a finite-speed CPU.
* Figures 3.5 and 3.6: execution time and success ratio vs cache size
  for inter-run prefetching (one experiment per configuration emits
  both measures; ``fig-3.6*`` ids are aliases).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.metrics import AggregateMetrics
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.experiments.config import (
    ExperimentResult,
    Scale,
    Table,
    register,
    register_alias,
)
from repro.experiments.plotting import chart_from_table

#: N values swept in Figure 3.2 (x axis 0..30).
N_SWEEP = [1, 2, 3, 5, 8, 10, 15, 20, 25, 30]

#: CPU speeds swept in Figure 3.3 (ms to merge one block, x axis 0..0.7).
CPU_SWEEP = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]


def run_config(scale: Scale, **kwargs) -> AggregateMetrics:
    """Run one configuration at the given scale."""
    config = SimulationConfig(
        blocks_per_run=scale.blocks_per_run,
        trials=scale.trials,
        base_seed=scale.base_seed,
        **kwargs,
    )
    return MergeSimulation(config).run()


def _intra(scale: Scale, k: int, d: int, n: int, **kw) -> AggregateMetrics:
    return run_config(
        scale,
        num_runs=k,
        num_disks=d,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=n,
        **kw,
    )


def _inter(
    scale: Scale,
    k: int,
    d: int,
    n: int,
    cache: Optional[int] = None,
    **kw,
) -> AggregateMetrics:
    return run_config(
        scale,
        num_runs=k,
        num_disks=d,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=n,
        cache_capacity=cache,
        **kw,
    )


def _n_sweep_table(
    scale: Scale,
    k: int,
    curves: Sequence[tuple[str, str, int]],
) -> Table:
    """Sweep N for several (label, strategy, D) curves.

    ``strategy`` is ``"intra"`` or ``"inter"``; inter-run uses the
    generous default cache (success ratio near 1), as in Figure 3.2.
    """
    sweep = scale.thin(N_SWEEP)
    headers = ["N"] + [label for label, _strategy, _d in curves]
    rows: list[list[object]] = []
    for n in sweep:
        row: list[object] = [n]
        for _label, strategy, d in curves:
            if strategy == "intra":
                result = _intra(scale, k, d, n)
            else:
                result = _inter(scale, k, d, n)
            row.append(result.total_time_s.mean)
        rows.append(row)
    return Table(
        title=f"Total merge time (s) vs N, k={k} ({scale.blocks_per_run} blocks/run)",
        headers=headers,
        rows=rows,
    )


@register(
    "fig-3.2a",
    "Fetching N blocks, 25 runs",
    "Figure 3.2(a)",
    "Total time vs N for k=25: intra-run on 1 and 5 disks, inter-run on "
    "5 disks; unsynchronized prefetching.",
)
def fig_32a(scale: Scale) -> ExperimentResult:
    table = _n_sweep_table(
        scale,
        k=25,
        curves=[
            ("DemandRunOnly D=1", "intra", 1),
            ("DemandRunOnly D=5", "intra", 5),
            ("AllDisksOneRun D=5", "inter", 5),
        ],
    )
    return ExperimentResult(
        experiment_id="fig-3.2a",
        title="Fetching N blocks (25 runs)",
        tables=[table],
        charts=[chart_from_table(table, "N", table.headers[1:],
                                 x_label="N", y_label="total time (s)")],
        notes=[
            "paper anchors (full scale): D=1 N=1 357.2s, N=10 81.8s, "
            "N=30 ~61.5s; D=5 N=1 279.0s; single-disk lower bound 51.2s; "
            "D=5 inter-run approaches 10.25s as N grows",
        ],
    )


@register(
    "fig-3.2b",
    "Fetching N blocks, 50 runs",
    "Figure 3.2(b)",
    "Total time vs N for k=50: intra-run on 1 and 10 disks, inter-run on "
    "5 and 10 disks; unsynchronized prefetching.",
)
def fig_32b(scale: Scale) -> ExperimentResult:
    table = _n_sweep_table(
        scale,
        k=50,
        curves=[
            ("DemandRunOnly D=1", "intra", 1),
            ("DemandRunOnly D=10", "intra", 10),
            ("AllDisksOneRun D=5", "inter", 5),
            ("AllDisksOneRun D=10", "inter", 10),
        ],
    )
    return ExperimentResult(
        experiment_id="fig-3.2b",
        title="Fetching N blocks (50 runs)",
        tables=[table],
        charts=[chart_from_table(table, "N", table.headers[1:],
                                 x_label="N", y_label="total time (s)")],
        notes=[
            "paper anchors (full scale): D=1 N=1 910s; D=10 N=1 558.1s, "
            "N=30 ~35s (asymptote 117.7/3.66=32.2s); lower bounds 102.4s "
            "(1 disk), 20.5s (5 disks), 10.25s (10 disks)",
        ],
    )


@register(
    "fig-3.2c",
    "Fetching N blocks, expanded view (5 disks)",
    "Figure 3.2(c)",
    "Expanded view: both strategies on 5 disks for k=25 and k=50.",
)
def fig_32c(scale: Scale) -> ExperimentResult:
    sweep = scale.thin([n for n in N_SWEEP if n >= 5])
    rows: list[list[object]] = []
    for n in sweep:
        rows.append(
            [
                n,
                _inter(scale, 25, 5, n).total_time_s.mean,
                _inter(scale, 50, 5, n).total_time_s.mean,
                _intra(scale, 25, 5, n).total_time_s.mean,
                _intra(scale, 50, 5, n).total_time_s.mean,
            ]
        )
    table = Table(
        title=f"Total merge time (s) vs N, D=5 ({scale.blocks_per_run} blocks/run)",
        headers=[
            "N",
            "AllDisksOneRun k=25",
            "AllDisksOneRun k=50",
            "DemandRunOnly k=25",
            "DemandRunOnly k=50",
        ],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="fig-3.2c",
        title="Fetching N blocks: expanded view (5 disks, 25 and 50 runs)",
        tables=[table],
        charts=[chart_from_table(table, "N", table.headers[1:],
                                 x_label="N", y_label="total time (s)")],
        notes=[
            "paper: inter-run sits well below intra-run across the range; "
            "at N=30 intra-run k=25 D=5 is ~24.8s vs the urn-game "
            "prediction 23.4s",
        ],
    )


@register(
    "fig-3.3",
    "Effect of a finite-speed CPU",
    "Figure 3.3",
    "Total execution time vs per-block merge CPU time for k=25, D=5, "
    "N=10: {intra, inter} x {synchronized, unsynchronized}.",
)
def fig_33(scale: Scale) -> ExperimentResult:
    sweep = scale.thin(CPU_SWEEP)
    rows: list[list[object]] = []
    for cpu in sweep:
        rows.append(
            [
                cpu,
                _inter(scale, 25, 5, 10, cpu_ms_per_block=cpu).total_time_s.mean,
                _inter(
                    scale, 25, 5, 10, cpu_ms_per_block=cpu, synchronized=True
                ).total_time_s.mean,
                _intra(scale, 25, 5, 10, cpu_ms_per_block=cpu).total_time_s.mean,
                _intra(
                    scale, 25, 5, 10, cpu_ms_per_block=cpu, synchronized=True
                ).total_time_s.mean,
            ]
        )
    table = Table(
        title=(
            "Total execution time (s) vs CPU ms/block, k=25 D=5 N=10 "
            f"({scale.blocks_per_run} blocks/run)"
        ),
        headers=[
            "cpu_ms",
            "AllDisksOneRun unsync",
            "AllDisksOneRun sync",
            "DemandRunOnly unsync",
            "DemandRunOnly sync",
        ],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="fig-3.3",
        title="Effect of Finite-Speed CPU (25 runs, 5 disks)",
        tables=[table],
        charts=[chart_from_table(table, "cpu_ms", table.headers[1:],
                                 x_label="ms to merge one block",
                                 y_label="total time (s)")],
        notes=[
            "paper: inter-run with N=10 outperforms intra-run over the "
            "entire CPU-speed range; at the fastest CPU the synchronized "
            "inter-run time is ~17.6s",
        ],
    )


# ----------------------------------------------------------------------
# Figures 3.5 (execution time vs cache size) and 3.6 (success ratio).
# ----------------------------------------------------------------------

_CACHE_SWEEPS = {
    (25, 5): [25, 50, 100, 150, 200, 250, 300, 400, 500, 600, 800, 1000, 1200],
    (50, 5): [50, 100, 200, 300, 400, 500, 600, 800, 1000, 1200, 1400, 1600],
    (50, 10): [50, 100, 250, 500, 750, 1000, 1500, 2000, 2500, 3000, 3500],
}

_CACHE_N_VALUES = [1, 5, 10]


def _cache_sweep(scale: Scale, k: int, d: int) -> Table:
    caches = scale.thin(_CACHE_SWEEPS[(k, d)])
    headers = ["cache"]
    for n in _CACHE_N_VALUES:
        headers += [f"time N={n}", f"sr N={n}"]
    rows: list[list[object]] = []
    for cache in caches:
        row: list[object] = [cache]
        for n in _CACHE_N_VALUES:
            if cache < k * n:
                row += ["-", "-"]
                continue
            result = _inter(scale, k, d, n, cache=cache)
            row += [result.total_time_s.mean, result.success_ratio.mean]
        rows.append(row)
    return Table(
        title=(
            f"Inter-run prefetching vs cache size, k={k} D={d} "
            f"({scale.blocks_per_run} blocks/run; time in s)"
        ),
        headers=headers,
        rows=rows,
    )


def _make_cache_experiment(k: int, d: int, fig_id: str, letter: str):
    @register(
        f"fig-3.5{letter}",
        f"Cache size sweep, {k} runs, {d} disks",
        f"Figures 3.5({letter}) and 3.6({letter})",
        f"Execution time and success ratio vs cache size for inter-run "
        f"prefetching, k={k}, D={d}, N in {{1, 5, 10}}; unsynchronized.",
    )
    def runner(scale: Scale) -> ExperimentResult:
        table = _cache_sweep(scale, k, d)
        lower_bound = 1000 * k * 2.05 / d / 1000.0
        time_headers = [f"time N={n}" for n in _CACHE_N_VALUES]
        ratio_headers = [f"sr N={n}" for n in _CACHE_N_VALUES]
        charts = [
            chart_from_table(
                table, "cache", time_headers,
                title=f"Figure 3.5({letter}): execution time vs cache size",
                x_label="cache (blocks)", y_label="time (s)",
            ),
            chart_from_table(
                table, "cache", ratio_headers,
                title=f"Figure 3.6({letter}): success ratio vs cache size",
                x_label="cache (blocks)", y_label="success ratio",
            ),
        ]
        return ExperimentResult(
            experiment_id=fig_id,
            title=f"Execution time and success ratio vs cache size ({k} runs, {d} disks)",
            tables=[table],
            charts=charts,
            notes=[
                "time columns reproduce Figure 3.5, success-ratio columns "
                "Figure 3.6; larger N needs a larger cache for the same "
                "success ratio but a lower asymptotic time",
                f"transfer-time lower bound at full scale: {lower_bound:.2f}s",
            ],
        )

    register_alias(f"fig-3.6{letter}", f"fig-3.5{letter}")
    return runner


_make_cache_experiment(25, 5, "fig-3.5a", "a")
_make_cache_experiment(50, 5, "fig-3.5b", "b")
_make_cache_experiment(50, 10, "fig-3.5c", "c")
