"""Experiment harness: one registered experiment per paper artifact.

Every figure and in-text result of the paper's evaluation section is an
:class:`~repro.experiments.config.Experiment` with a stable id
(``fig-3.2a``, ``tab-urn``, ...) that regenerates the corresponding
rows/series, annotated with the paper's values where it prints any.
Ablation experiments (``ablation-*``) cover the design choices the
paper adopts but does not sweep.

Run from Python::

    from repro.experiments import get_experiment, Scale
    result = get_experiment("fig-3.2a").run(Scale.quick())
    print(result.render())

or from the command line: ``python -m repro run fig-3.2a --quick``.
"""

from repro.experiments.config import (
    Experiment,
    ExperimentResult,
    Scale,
    Table,
    all_experiments,
    get_experiment,
)

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: E402,F401
    ablations,
    degradation,
    figures,
    markov_experiment,
    realio_experiment,
    tables,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "Scale",
    "Table",
    "all_experiments",
    "get_experiment",
]
