"""Graceful-degradation curves under injected drive faults.

The paper assumes perfectly reliable drives; this extension measures
how the two prefetching strategies degrade when one drive of the input
array misbehaves (see :mod:`repro.faults`):

* **fail-slow**: drive 0's seek/rotation/transfer times multiplied by
  a severity factor for the whole merge;
* **transient read errors**: each service attempt on drive 0 fails
  with a given probability and is retried under the default backoff
  policy.

Severity 1.0x / probability 0.0 rows run a *behaviourally empty* fault
plan, which is byte-identical to the fault-free baseline -- the curves
therefore start exactly at the paper's numbers.  Inter-run prefetching
additionally drops degraded drives from prefetch-victim selection, so
its curve shows the resilience policy, not just the raw slowdown.
"""

from __future__ import annotations

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.experiments.config import ExperimentResult, Scale, Table, register
from repro.experiments.plotting import chart_from_table
from repro.faults.plan import FaultPlan, RetryPolicy, fail_slow_plan, transient_plan

#: Fail-slow severity factors swept (1.0 = healthy baseline).
SLOWDOWN_FACTORS = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0]

#: Per-attempt transient failure probabilities swept.
FAULT_RATES = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3]

#: Retry budget for the transient sweep.  At full scale drive 0 serves
#: ~25k attempts across trials; the worst rate (0.3) with the default
#: 8-attempt budget would exhaust ~25k * 0.3^8 ~ 1.6 requests and abort
#: the run.  20 attempts pushes that below 1e-5 so the curve measures
#: degradation, not abandonment.
_TRANSIENT_RETRY = RetryPolicy(max_attempts=20)

_STRATEGIES = (
    ("intra-run", PrefetchStrategy.INTRA_RUN),
    ("inter-run", PrefetchStrategy.INTER_RUN),
)


def _config(scale: Scale, strategy: PrefetchStrategy, plan: FaultPlan) -> SimulationConfig:
    return SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=strategy,
        prefetch_depth=10,
        blocks_per_run=scale.blocks_per_run,
        trials=scale.trials,
        base_seed=scale.base_seed,
        fault_plan=plan,
    )


def _time_s(scale: Scale, strategy: PrefetchStrategy, plan: FaultPlan):
    result = MergeSimulation(_config(scale, strategy, plan)).run()
    fault_stall_s = sum(
        m.fault_stall_ms for m in result.trials
    ) / len(result.trials) / 1000.0
    return result.total_time_s.mean, fault_stall_s


@register(
    "ext-degradation",
    "Merge time vs fault severity (fail-slow and transient errors)",
    "Extension; the paper assumes fault-free drives throughout",
    "k=25 D=5 N=10, drive 0 faulted: merge time of both prefetching "
    "strategies as the fail-slow factor and the transient error rate "
    "grow.  Zero-severity rows reproduce the fault-free baseline "
    "exactly.",
)
def ext_degradation(scale: Scale) -> ExperimentResult:
    slow_rows = []
    for factor in scale.thin(SLOWDOWN_FACTORS):
        # factor 1.0 -> an empty plan: identical to no injection.
        plan = (
            FaultPlan()
            if factor == 1.0
            else fail_slow_plan(drive=0, factor=factor)
        )
        row: list[object] = [factor]
        for _, strategy in _STRATEGIES:
            time_s, fault_stall_s = _time_s(scale, strategy, plan)
            row += [time_s, fault_stall_s]
        slow_rows.append(row)
    slow_table = Table(
        title="fail-slow drive 0 (time in s)",
        headers=[
            "factor",
            "intra-run time",
            "intra-run fault stall",
            "inter-run time",
            "inter-run fault stall",
        ],
        rows=slow_rows,
    )

    transient_rows = []
    for rate in scale.thin(FAULT_RATES):
        plan = (
            FaultPlan()
            if rate == 0.0
            else transient_plan(rate, drives=(0,), retry=_TRANSIENT_RETRY)
        )
        row = [rate]
        for _, strategy in _STRATEGIES:
            time_s, fault_stall_s = _time_s(scale, strategy, plan)
            row += [time_s, fault_stall_s]
        transient_rows.append(row)
    transient_table = Table(
        title="transient read errors on drive 0 (time in s)",
        headers=[
            "probability",
            "intra-run time",
            "intra-run fault stall",
            "inter-run time",
            "inter-run fault stall",
        ],
        rows=transient_rows,
    )

    charts = [
        chart_from_table(
            slow_table,
            "factor",
            ["intra-run time", "inter-run time"],
            title="merge time vs fail-slow factor (drive 0 of 5)",
        ),
        chart_from_table(
            transient_table,
            "probability",
            ["intra-run time", "inter-run time"],
            title="merge time vs transient error probability (drive 0 of 5)",
        ),
    ]
    return ExperimentResult(
        experiment_id="ext-degradation",
        title="Degradation under drive faults",
        tables=[slow_table, transient_table],
        charts=charts,
        notes=[
            "severity 1.0x / probability 0.0 rows are byte-identical to "
            "the fault-free baseline (empty fault plan)",
            "inter-run prefetching drops degraded drives from victim "
            "selection; the demand disk is always served",
        ],
    )
