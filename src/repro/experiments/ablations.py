"""Ablations of design choices the paper adopts without sweeping.

* ``ablation-cache-policy``: conservative vs greedy handling of an
  almost-full cache (the paper picks conservative based on its
  companion Markov analysis; we measure the difference directly).
* ``ablation-selector``: random vs head-position/urgency heuristics for
  choosing the prefetch run on non-demand disks (the thesis found the
  heuristics marginal).
* ``ablation-depletion-model``: the Kwan-Baer random-depletion model vs
  the *real* block-depletion trace of a record-level merge over several
  key distributions.
* ``ablation-streaming``: letting back-to-back sequential fetches skip
  positioning costs (relaxing the model's per-fetch R charge).
* ``ablation-k100``: the k=100 configuration the authors simulated but
  omitted for space.
"""

from __future__ import annotations

from repro.core.parameters import (
    CachePolicy,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.disks.drive import QueueDiscipline
from repro.core.simulator import MergeSimulation
from repro.experiments.config import ExperimentResult, Scale, Table, register
from repro.mergesort.external import ExternalMergesort, trace_driven_metrics
from repro.mergesort.records import make_records
from repro.workloads import generators


def _config(scale: Scale, **kwargs) -> SimulationConfig:
    return SimulationConfig(
        blocks_per_run=scale.blocks_per_run,
        trials=scale.trials,
        base_seed=scale.base_seed,
        **kwargs,
    )


@register(
    "ablation-cache-policy",
    "Conservative vs greedy almost-full-cache policy",
    "Section 2 (choice justified by the companion Markov analysis)",
    "Inter-run prefetching, k=25 D=5 N=10, over cache sizes where the "
    "policies diverge.",
)
def ablation_cache_policy(scale: Scale) -> ExperimentResult:
    caches = scale.thin([250, 300, 350, 400, 500, 600, 800])
    rows = []
    for cache in caches:
        row: list[object] = [cache]
        for policy in (CachePolicy.CONSERVATIVE, CachePolicy.GREEDY):
            result = MergeSimulation(
                _config(
                    scale,
                    num_runs=25,
                    num_disks=5,
                    strategy=PrefetchStrategy.INTER_RUN,
                    prefetch_depth=10,
                    cache_capacity=cache,
                    cache_policy=policy,
                )
            ).run()
            row += [result.total_time_s.mean, result.success_ratio.mean]
        rows.append(row)
    table = Table(
        title="k=25 D=5 N=10 inter-run, by cache policy (time in s)",
        headers=[
            "cache",
            "conservative time",
            "conservative sr",
            "greedy time",
            "greedy sr",
        ],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ablation-cache-policy",
        title="Almost-full-cache policy",
        tables=[table],
        notes=["the Markov analysis predicts conservative achieves higher "
               "average I/O parallelism at constrained cache sizes"],
    )


@register(
    "ablation-selector",
    "Prefetch-victim selection heuristics",
    "Section 2 (heuristics 'insufficient to warrant' the bookkeeping)",
    "Inter-run prefetching, k=25 D=5 N=10, at a constrained and a "
    "generous cache size, across all selectors.",
)
def ablation_selector(scale: Scale) -> ExperimentResult:
    rows = []
    for selector in VictimSelector:
        row: list[object] = [selector.value]
        for cache in (300, 800):
            result = MergeSimulation(
                _config(
                    scale,
                    num_runs=25,
                    num_disks=5,
                    strategy=PrefetchStrategy.INTER_RUN,
                    prefetch_depth=10,
                    cache_capacity=cache,
                    victim_selector=selector,
                )
            ).run()
            row += [result.total_time_s.mean, result.success_ratio.mean]
        rows.append(row)
    table = Table(
        title="k=25 D=5 N=10 inter-run, by victim selector (time in s)",
        headers=["selector", "time C=300", "sr C=300", "time C=800", "sr C=800"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ablation-selector",
        title="Prefetch-victim selection",
        tables=[table],
        notes=["the paper adopts RANDOM; gains from smarter selectors "
               "should be marginal, matching the thesis finding"],
    )


@register(
    "ablation-depletion-model",
    "Random-depletion model vs real merge traces",
    "Section 2.2 (the block-depletion model assumption)",
    "Drive the I/O simulator with the real depletion trace of a "
    "record-level merge and compare against the random model.",
)
def ablation_depletion_model(scale: Scale) -> ExperimentResult:
    k = 10
    blocks_per_run = min(scale.blocks_per_run, 100)
    records_per_block = 16
    memory_records = blocks_per_run * records_per_block
    total_records = k * memory_records

    workloads = {
        "uniform": generators.uniform_keys(total_records, seed=scale.base_seed),
        "gaussian": generators.gaussian_keys(total_records, seed=scale.base_seed),
        "zipf": generators.zipf_keys(total_records, seed=scale.base_seed),
        "nearly-sorted": generators.nearly_sorted_keys(
            total_records, seed=scale.base_seed
        ),
    }

    def merge_config() -> SimulationConfig:
        return SimulationConfig(
            num_runs=k,
            num_disks=5,
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=5,
            cache_capacity=k * 5 * 4,
            blocks_per_run=blocks_per_run,
            trials=scale.trials,
            base_seed=scale.base_seed,
        )

    random_model = MergeSimulation(merge_config()).run()
    rows: list[list[object]] = [
        ["random model", random_model.total_time_s.mean, "-"]
    ]
    sorter = ExternalMergesort(
        memory_records=memory_records, records_per_block=records_per_block
    )
    for name, keys in workloads.items():
        stats = sorter.sort(make_records(keys))
        metrics = trace_driven_metrics(stats, merge_config())
        delta = (
            100.0
            * (metrics.total_time_s - random_model.total_time_s.mean)
            / random_model.total_time_s.mean
        )
        rows.append([f"real merge: {name}", metrics.total_time_s, f"{delta:+.1f}%"])
    table = Table(
        title=(
            f"Inter-run k={k} D=5 N=5, {blocks_per_run} blocks/run: total "
            "time under each depletion source (s)"
        ),
        headers=["depletion source", "time (s)", "vs random model"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ablation-depletion-model",
        title="Depletion-model validation",
        tables=[table],
        notes=[
            "independent uniformly distributed runs deplete in a nearly "
            "random interleave, validating the Kwan-Baer model; skewed or "
            "correlated keys (nearly-sorted) deplete runs sequentially and "
            "diverge from it",
        ],
    )


@register(
    "ablation-streaming",
    "Sequential streaming across consecutive fetches",
    "Section 2.1 (the per-fetch R charge in the analysis)",
    "Relax the model so a fetch continuing exactly where the previous "
    "one ended skips seek and rotation, for intra-run prefetching.",
)
def ablation_streaming(scale: Scale) -> ExperimentResult:
    rows = []
    for n in scale.thin([1, 5, 10, 20, 30]):
        row: list[object] = [n]
        for streaming in (False, True):
            result = MergeSimulation(
                _config(
                    scale,
                    num_runs=25,
                    num_disks=5,
                    strategy=PrefetchStrategy.INTRA_RUN,
                    prefetch_depth=n,
                    stream_across_requests=streaming,
                )
            ).run()
            row.append(result.total_time_s.mean)
        rows.append(row)
    table = Table(
        title="k=25 D=5 intra-run: paper model vs streaming model (time in s)",
        headers=["N", "per-fetch R (paper)", "streaming allowed"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ablation-streaming",
        title="Streaming across fetches",
        tables=[table],
        notes=["with k/D runs interleaving on each disk, consecutive fetches "
               "rarely continue sequentially, so the paper's per-fetch R "
               "charge is a good approximation"],
    )


@register(
    "ablation-queue-discipline",
    "FIFO vs shortest-seek-first disk scheduling",
    "extension (the paper models FIFO queues only)",
    "Both strategies under FIFO and SSTF request ordering at each disk; "
    "SSTF reorders prefetches by head proximity, demand fetches first.",
)
def ablation_queue_discipline(scale: Scale) -> ExperimentResult:
    rows = []
    for strategy, depth, label in (
        (PrefetchStrategy.NONE, 1, "no prefetch D=5"),
        (PrefetchStrategy.INTRA_RUN, 10, "intra-run N=10 D=5"),
        (PrefetchStrategy.INTER_RUN, 10, "inter-run N=10 D=5"),
    ):
        row: list[object] = [label]
        for discipline in QueueDiscipline:
            result = MergeSimulation(
                _config(
                    scale,
                    num_runs=25,
                    num_disks=5,
                    strategy=strategy,
                    prefetch_depth=depth,
                    queue_discipline=discipline,
                )
            ).run()
            row.append(result.total_time_s.mean)
        rows.append(row)
    table = Table(
        title="k=25 D=5: total time by disk-queue discipline (s)",
        headers=["configuration", "fifo", "sstf"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ablation-queue-discipline",
        title="Disk-queue discipline",
        tables=[table],
        notes=[
            "with at most one outstanding fetch group per disk in the "
            "demand-driven strategies, queues are short and SSTF has "
            "little to reorder -- seek reduction comes from data layout, "
            "not scheduling",
        ],
    )


@register(
    "ext-write-traffic",
    "Write traffic to a separate disk array",
    "extension (the paper routes writes to separate disks and ignores them)",
    "Model the output stream: W write disks, round-robin, bounded "
    "buffers.  Sweeps W to find the array size at which writes leave "
    "the critical path, testing the paper's ignore-writes assumption.",
)
def ext_write_traffic(scale: Scale) -> ExperimentResult:
    base = dict(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
    )
    ignored = MergeSimulation(_config(scale, **base)).run()
    rows: list[object] = [
        ["ignored (paper)", ignored.total_time_s.mean, 0.0, "-"]
    ]
    for write_disks in scale.thin([1, 2, 3, 5, 8]):
        result = MergeSimulation(
            _config(scale, write_disks=write_disks, **base)
        ).run()
        stall = sum(m.write_stall_ms for m in result.trials) / len(result.trials)
        overhead = (
            100.0
            * (result.total_time_s.mean - ignored.total_time_s.mean)
            / ignored.total_time_s.mean
        )
        rows.append(
            [f"W={write_disks}", result.total_time_s.mean, stall / 1000.0,
             f"{overhead:+.0f}%"]
        )
    table = Table(
        title=(
            "k=25 D=5 inter-run N=10: total time with modeled writes "
            f"({scale.blocks_per_run} blocks/run)"
        ),
        headers=["write array", "time (s)", "write stall (s)", "overhead"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ext-write-traffic",
        title="Write traffic: sizing the output array",
        tables=[table],
        notes=[
            "with W < D equal disks the merge is write-bound "
            "(time ~ k*blocks*T/W); the paper's ignore-writes assumption "
            "is justified once the write array matches the read array's "
            "aggregate bandwidth",
        ],
    )


@register(
    "ext-skewed-depletion",
    "Robustness to non-uniform depletion",
    "extension (the Kwan-Baer model assumes uniform run choice)",
    "Drive the simulator with Zipf-skewed depletion sequences of "
    "increasing skew and compare strategies: how sensitive is each to "
    "the uniformity assumption?",
)
def ext_skewed_depletion(scale: Scale) -> ExperimentResult:
    from repro.core.merge_sim import MergeTrial
    from repro.workloads.depletion import skewed_depletion_sequence

    k, d = 20, 5
    rows = []
    for alpha in (0.0, 0.5, 1.0, 2.0):
        row: list[object] = [alpha]
        for strategy, depth, selector in (
            (PrefetchStrategy.INTRA_RUN, 10, VictimSelector.RANDOM),
            (PrefetchStrategy.INTER_RUN, 10, VictimSelector.RANDOM),
            (PrefetchStrategy.INTER_RUN, 10, VictimSelector.MOST_DEPLETED),
        ):
            config = SimulationConfig(
                num_runs=k,
                num_disks=d,
                strategy=strategy,
                prefetch_depth=depth,
                victim_selector=selector,
                blocks_per_run=scale.blocks_per_run,
                trials=scale.trials,
                base_seed=scale.base_seed,
            )
            times = []
            for trial in range(scale.trials):
                source = skewed_depletion_sequence(
                    k, scale.blocks_per_run,
                    seed=scale.base_seed + 100 + trial, alpha=alpha,
                )
                metrics = MergeTrial(
                    config, seed=scale.base_seed + trial,
                    depletion_source=source,
                ).run()
                times.append(metrics.total_time_s)
            row.append(sum(times) / len(times))
        rows.append(row)
    table = Table(
        title=(
            f"k={k} D={d} N=10, Zipf-skewed depletion "
            f"({scale.blocks_per_run} blocks/run; time in s; alpha=0 is "
            "the paper's uniform model)"
        ),
        headers=["alpha", "intra-run", "inter-run random", "inter-run most-depleted"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ext-skewed-depletion",
        title="Robustness to non-uniform depletion",
        tables=[table],
        notes=[
            "the uniformity assumption is load-bearing for inter-run "
            "prefetching with *random* victims: under skew, prefetches "
            "for cold runs occupy disk service time and cache that the "
            "hot runs need, and inter-run falls behind intra-run (which "
            "only ever fetches the demand run and degrades mildly)",
            "the urgency-aware MOST_DEPLETED selector restores most of "
            "inter-run's advantage: victim choice, marginal under the "
            "paper's uniform model, becomes first-order under skew",
        ],
    )


@register(
    "ext-adaptive-depth",
    "Adaptive prefetch depth",
    "extension (the paper notes the cache-size / N trade-off; this "
    "closes the loop automatically)",
    "Inter-run prefetching with per-fetch depth N' = clamp(free/D, 1, "
    "N): every fetch keeps all disks busy at whatever amortization the "
    "cache affords, vs the paper's fixed-N all-or-nothing policy.",
)
def ext_adaptive_depth(scale: Scale) -> ExperimentResult:
    caches = scale.thin([250, 300, 400, 500, 600, 800, 1000])
    rows = []
    for cache in caches:
        row: list[object] = [cache]
        for adaptive in (False, True):
            result = MergeSimulation(
                _config(
                    scale,
                    num_runs=25,
                    num_disks=5,
                    strategy=PrefetchStrategy.INTER_RUN,
                    prefetch_depth=10,
                    cache_capacity=cache,
                    adaptive_depth=adaptive,
                )
            ).run()
            row += [result.total_time_s.mean, result.average_concurrency.mean]
        rows.append(row)
    table = Table(
        title=(
            "k=25 D=5 inter-run, N(max)=10: fixed vs adaptive depth "
            f"({scale.blocks_per_run} blocks/run; time in s)"
        ),
        headers=["cache", "fixed time", "fixed conc", "adaptive time",
                 "adaptive conc"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ext-adaptive-depth",
        title="Adaptive prefetch depth",
        tables=[table],
        notes=[
            "adaptive depth dominates at constrained caches (shallow "
            "full-width prefetches beat occasional deep ones) and "
            "converges to the fixed policy once the cache affords N "
            "everywhere -- it removes the need to tune N per cache size",
        ],
    )


@register(
    "ext-pass-planning",
    "Prefetch depth vs merge passes under a fixed cache",
    "extension (single-pass scope in the paper; Aggarwal-Vitter accounting)",
    "For a fixed cache budget, deeper intra-run prefetching lowers the "
    "per-pass time but shrinks the supported fan-in, possibly forcing "
    "extra passes.  Analytic sweep of the trade-off.",
)
def ext_pass_planning(scale: Scale) -> ExperimentResult:
    from repro.analysis.passes import estimate_sort_time_s, fan_in_for_cache
    from repro.core.parameters import PAPER_DISK

    k, cache, disks = 100, 250, 5
    rows = []
    best: tuple[float, int] | None = None
    for depth in (1, 2, 5, 10, 25, 50, 125):
        fan_in = fan_in_for_cache(cache, depth)
        if fan_in < 2:
            rows.append([depth, fan_in, "-", "-"])
            continue
        plan, total = estimate_sort_time_s(
            initial_runs=k,
            blocks_per_run=scale.blocks_per_run,
            cache_blocks=cache,
            prefetch_depth=depth,
            num_disks=disks,
            disk=PAPER_DISK,
        )
        rows.append([depth, fan_in, plan.num_passes, total])
        if best is None or total < best[0]:
            best = (total, depth)
    table = Table(
        title=(
            f"k={k} runs of {scale.blocks_per_run} blocks, cache={cache}, "
            f"D={disks}: whole-sort estimate by prefetch depth"
        ),
        headers=["N", "fan-in", "passes", "est. time (s)"],
        rows=rows,
    )
    notes = [
        "per-pass time falls with N (eq 4) while the pass count rises "
        "once fan-in drops below the run count: the optimum balances "
        "amortization against extra passes",
    ]
    if best is not None:
        notes.append(f"best depth for this budget: N={best[1]} "
                     f"({best[0]:.1f}s)")
    return ExperimentResult(
        experiment_id="ext-pass-planning",
        title="Prefetch depth vs merge passes",
        tables=[table],
        notes=notes,
    )


@register(
    "ablation-k100",
    "The k=100 configuration",
    "Section 2.2 ('results for k=100 are not presented for space')",
    "Both strategies at k=100 on 5 and 10 disks, N=10.",
)
def ablation_k100(scale: Scale) -> ExperimentResult:
    rows = []
    for d in (5, 10):
        for strategy, label in (
            (PrefetchStrategy.INTRA_RUN, "DemandRunOnly"),
            (PrefetchStrategy.INTER_RUN, "AllDisksOneRun"),
        ):
            result = MergeSimulation(
                _config(
                    scale,
                    num_runs=100,
                    num_disks=d,
                    strategy=strategy,
                    prefetch_depth=10,
                )
            ).run()
            rows.append(
                [f"{label} D={d}", result.total_time_s.mean,
                 result.average_concurrency.mean]
            )
    table = Table(
        title=f"k=100, N=10 ({scale.blocks_per_run} blocks/run)",
        headers=["configuration", "time (s)", "avg disk concurrency"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="ablation-k100",
        title="k=100 configuration",
        tables=[table],
        notes=["the qualitative picture of k=25/50 persists at higher merge "
               "order"],
    )
