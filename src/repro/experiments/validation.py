"""Automated reproduction verdicts.

EXPERIMENTS.md narrates paper-vs-measured; this module *checks* it.
:data:`PAPER_EXPECTATIONS` is the machine-readable list of every value
the paper prints, each tied to a simulation configuration and a
tolerance; :func:`validate` runs them and returns verdicts.  The CLI
exposes this as ``python -m repro validate`` (full scale, ~3 minutes)
so the headline claim of this repository is one command to audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.metrics import AggregateMetrics
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation


@dataclass(frozen=True)
class Expectation:
    """One paper value and how to measure it."""

    label: str
    paper_value: float
    tolerance: float  # relative
    config: SimulationConfig
    metric: Callable[[AggregateMetrics], float]
    source: str


@dataclass(frozen=True)
class Verdict:
    label: str
    paper_value: float
    measured: float
    relative_error: float
    ok: bool
    source: str


def _time(result: AggregateMetrics) -> float:
    return result.total_time_s.mean


def _concurrency(result: AggregateMetrics) -> float:
    return result.average_concurrency.mean


def _config(**kwargs) -> SimulationConfig:
    defaults = dict(trials=3, base_seed=1992)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


#: Every simulation-checkable number printed in the paper's prose.
PAPER_EXPECTATIONS: tuple[Expectation, ...] = (
    Expectation(
        "no prefetch, k=25, 1 disk", 357.2, 0.02,
        _config(num_runs=25, num_disks=1), _time, "section 3.1",
    ),
    Expectation(
        "no prefetch, k=50, 1 disk", 909.7, 0.02,
        _config(num_runs=50, num_disks=1), _time, "section 3.1",
    ),
    Expectation(
        "intra-run N=10, k=25, 1 disk", 81.8, 0.02,
        _config(num_runs=25, num_disks=1,
                strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=10),
        _time, "section 3.1",
    ),
    Expectation(
        "intra-run N=10, k=50, 1 disk", 183.2, 0.02,
        _config(num_runs=50, num_disks=1,
                strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=10),
        _time, "section 3.1",
    ),
    Expectation(
        "no prefetch, k=25, 5 disks", 279.0, 0.02,
        _config(num_runs=25, num_disks=5), _time, "section 3.2",
    ),
    Expectation(
        "no prefetch, k=50, 10 disks", 558.1, 0.02,
        _config(num_runs=50, num_disks=10), _time, "section 3.2",
    ),
    Expectation(
        "unsync intra-run N=30, k=25, 5 disks (paper sim 24.8s)", 24.8, 0.05,
        _config(num_runs=25, num_disks=5,
                strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=30),
        _time, "section 3.2",
    ),
    Expectation(
        "sync inter-run N=10, k=25, 5 disks", 17.6, 0.03,
        _config(num_runs=25, num_disks=5,
                strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=10,
                cache_capacity=1200, synchronized=True),
        _time, "section 3.2",
    ),
    Expectation(
        "unsync inter-run N=50, k=25, 5 disks (paper sim 12.2s)", 12.2, 0.15,
        _config(num_runs=25, num_disks=5,
                strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=50,
                cache_capacity=5000),
        _time, "section 3.2 (large-N tail; paper's cache unstated)",
    ),
    Expectation(
        "urn-game concurrency, D=5 (intra-run N=30)", 2.51, 0.12,
        _config(num_runs=25, num_disks=5,
                strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=30),
        _concurrency, "section 3.2 (asymptotic; N=30 is pre-asymptotic)",
    ),
)


def validate(
    expectations: Sequence[Expectation] = PAPER_EXPECTATIONS,
    blocks_per_run: Optional[int] = None,
) -> list[Verdict]:
    """Measure every expectation; ``blocks_per_run`` of None = paper scale.

    Reduced scales are useful for smoke tests but only paper scale
    (1000) is comparable to the paper's printed values.
    """
    verdicts = []
    for expectation in expectations:
        config = expectation.config
        if blocks_per_run is not None:
            config = SimulationConfig(
                **{**config.__dict__, "blocks_per_run": blocks_per_run}
            )
        measured = expectation.metric(MergeSimulation(config).run())
        relative = abs(measured - expectation.paper_value) / expectation.paper_value
        verdicts.append(
            Verdict(
                label=expectation.label,
                paper_value=expectation.paper_value,
                measured=measured,
                relative_error=relative,
                ok=relative <= expectation.tolerance,
                source=expectation.source,
            )
        )
    return verdicts


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    lines = []
    for verdict in verdicts:
        status = "ok " if verdict.ok else "FAIL"
        lines.append(
            f"[{status}] {verdict.label:55s} paper {verdict.paper_value:7.2f}"
            f"  measured {verdict.measured:7.2f}  ({verdict.relative_error:+.1%})"
        )
    passed = sum(1 for verdict in verdicts if verdict.ok)
    lines.append(f"\n{passed}/{len(verdicts)} paper values reproduced")
    return "\n".join(lines)
