"""Machine-readable export of experiment results.

Each :class:`~repro.experiments.config.ExperimentResult` can be written
as JSON (one file per experiment, tables + notes) and each table as CSV
-- so downstream plotting (gnuplot, pandas, a spreadsheet) can regrow
the paper's figures from the same data the ASCII reports show.
"""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path
from typing import Iterable

from repro.experiments.config import ExperimentResult, Table


def _slug(text: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")
    return slug or "untitled"


def table_to_csv(table: Table, path: Path) -> Path:
    """Write one table as CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.headers)
        writer.writerows(table.rows)
    return path


def result_to_json(result: ExperimentResult, path: Path) -> Path:
    """Write a whole experiment result as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "tables": [
            {"title": t.title, "headers": t.headers, "rows": t.rows}
            for t in result.tables
        ],
        "notes": result.notes,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    return path


def export_results(
    results: Iterable[ExperimentResult],
    directory: Path,
) -> list[Path]:
    """Write JSON + per-table CSVs for every result; returns all paths."""
    directory = Path(directory)
    written: list[Path] = []
    for result in results:
        base = _slug(result.experiment_id)
        written.append(result_to_json(result, directory / f"{base}.json"))
        for index, table in enumerate(result.tables):
            name = f"{base}-{index}-{_slug(table.title)[:40]}.csv"
            written.append(table_to_csv(table, directory / name))
    return written


def load_result_json(path: Path) -> dict:
    """Read back an exported JSON result (for tooling and tests)."""
    with open(path) as handle:
        return json.load(handle)
