"""Batch experiment execution and report writing."""

from __future__ import annotations

import sys
import time
from typing import Iterable, Optional, TextIO

from repro.experiments.config import (
    ExperimentResult,
    Scale,
    all_experiments,
    get_experiment,
)


def run_experiments(
    experiment_ids: Iterable[str],
    scale: Optional[Scale] = None,
    stream: Optional[TextIO] = None,
) -> list[ExperimentResult]:
    """Run experiments in order, streaming each report as it finishes."""
    out = stream or sys.stdout
    scale = scale or Scale.full()
    results = []
    for experiment_id in experiment_ids:
        experiment = get_experiment(experiment_id)
        start = time.perf_counter()
        result = experiment.run(scale)
        elapsed = time.perf_counter() - start
        results.append(result)
        print(result.render(), file=out)
        print(f"[{experiment_id} finished in {elapsed:.1f}s]\n", file=out)
        out.flush()
    return results


def default_experiment_ids(include_ablations: bool = True) -> list[str]:
    """Every primary experiment id (aliases excluded)."""
    ids = []
    for experiment in all_experiments():
        if experiment.description.startswith("(alias of"):
            continue
        if not include_ablations and experiment.experiment_id.startswith("ablation-"):
            continue
        ids.append(experiment.experiment_id)
    return ids
