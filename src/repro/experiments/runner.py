"""Batch experiment execution and report writing.

One failing experiment no longer aborts the batch: its error is
reported (with the experiment id), an :class:`ExperimentResult` carrying
``error`` joins the returned list, and the remaining experiments still
run.  Passing a :class:`~repro.sweep.engine.SweepEngine` routes every
simulation the experiments perform through the engine's result cache
and worker pool (see :class:`repro.api.RunContext`).
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import TYPE_CHECKING, Iterable, Optional, TextIO

from repro.experiments.config import (
    ExperimentResult,
    Scale,
    all_experiments,
    get_experiment,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.engine import SweepEngine


def run_experiments(
    experiment_ids: Iterable[str],
    scale: Optional[Scale] = None,
    stream: Optional[TextIO] = None,
    engine: Optional["SweepEngine"] = None,
    kernel: Optional[str] = None,
) -> list[ExperimentResult]:
    """Run experiments in order, streaming each report as it finishes.

    Every requested experiment yields exactly one entry in the returned
    list.  An experiment that raises produces a result with ``error``
    set (check :attr:`ExperimentResult.ok`) instead of aborting the
    remaining ones.  With ``engine``, all simulations fan out through
    the sweep engine's cache and worker pool.  With ``kernel``, every
    simulation runs on the named kernel (see
    :class:`repro.api.RunContext`) — results are
    identical either way; only wall-clock time changes.
    """
    from repro.api import configure

    out = stream or sys.stdout
    scale = scale or Scale.full()
    results = []
    backend = engine.backend() if engine is not None else contextlib.nullcontext()
    override = (
        configure(kernel=kernel) if kernel is not None else contextlib.nullcontext()
    )
    with backend, override:
        for experiment_id in experiment_ids:
            start = time.perf_counter()
            try:
                experiment = get_experiment(experiment_id)
                result = experiment.run(scale)
            except Exception as exc:
                elapsed = time.perf_counter() - start
                result = ExperimentResult(
                    experiment_id=experiment_id,
                    title="(failed)",
                    error=f"{type(exc).__name__}: {exc}",
                )
                results.append(result)
                print(
                    f"[{experiment_id} FAILED after {elapsed:.1f}s: "
                    f"{result.error}]\n",
                    file=out,
                )
                out.flush()
                continue
            elapsed = time.perf_counter() - start
            results.append(result)
            print(result.render(), file=out)
            print(f"[{experiment_id} finished in {elapsed:.1f}s]\n", file=out)
            out.flush()
    return results


def failed_experiment_ids(results: Iterable[ExperimentResult]) -> list[str]:
    """Ids of the results that carry an error."""
    return [result.experiment_id for result in results if not result.ok]


def default_experiment_ids(include_ablations: bool = True) -> list[str]:
    """Every primary experiment id (aliases excluded)."""
    ids = []
    for experiment in all_experiments():
        if experiment.description.startswith("(alias of"):
            continue
        if not include_ablations and experiment.experiment_id.startswith("ablation-"):
            continue
        ids.append(experiment.experiment_id)
    return ids
