"""repro.bench: performance benchmarking with canonical reports.

Declarative scenarios (:mod:`repro.bench.scenarios`) run through one
shared measurement harness (:mod:`repro.bench.harness`) and serialize
to ``BENCH_<scenario>.json`` files that the comparator
(:mod:`repro.bench.compare`) diffs across commits.  CLI:
``repro bench run | compare | list``; see docs/BENCHMARKS.md.
"""

from repro.bench.compare import (
    ComparisonRow,
    compare_reports,
    missing_baseline_variants,
    regressions,
    render_comparison,
)
from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    Measurement,
    VariantResult,
    bench_filename,
    measure,
    peak_rss_kb,
    percentile,
    provenance,
    run_scenario,
    timed_call,
    validate_report,
)
from repro.bench.scenarios import (
    SCENARIOS,
    BenchScenario,
    get_scenario,
    scenario_config,
    scenario_names,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchReport",
    "BenchScenario",
    "ComparisonRow",
    "Measurement",
    "SCENARIOS",
    "VariantResult",
    "bench_filename",
    "compare_reports",
    "get_scenario",
    "measure",
    "missing_baseline_variants",
    "peak_rss_kb",
    "percentile",
    "provenance",
    "regressions",
    "render_comparison",
    "run_scenario",
    "scenario_config",
    "scenario_names",
    "timed_call",
    "validate_report",
]
