"""Declarative benchmark scenarios.

A :class:`BenchScenario` names a fixed workload — simulator merge, sweep
campaign, or analytical solve — with pinned seeds and scale, so the
numbers in a ``BENCH_<scenario>.json`` mean the same thing on every
commit.  Simulator scenarios run once per registered kernel (the
:mod:`repro.sim.kernel` registry: ``reference``, ``fast``, ``batch``,
plus anything registered later); pure-analysis scenarios are
kernel-independent and record a single variant.

``workload_events`` is the scenario's nominal unit count used for the
events-per-second throughput figure: merged blocks for simulator
scenarios (``num_runs * blocks_per_run * trials`` per cell), chain
solves for the Markov scenario.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.faults.plan import transient_plan
from repro.sim.kernel import kernel_names

#: A zero-argument workload; its return value is discarded.
Workload = Callable[[], object]


@dataclasses.dataclass(frozen=True)
class BenchScenario:
    """One named, fully pinned benchmark workload."""

    name: str
    description: str
    #: Nominal unit count for throughput (see module docstring).
    workload_events: int
    #: ``build(kernel)`` returns the callable to time on that kernel.
    build: Callable[[str], Workload]
    #: Kernels to measure; single-element for kernel-independent work.
    #: Defaults to every kernel registered at import time, so a newly
    #: registered kernel is benchmarked everywhere automatically.
    kernels: Tuple[str, ...] = tuple(kernel_names())
    #: Default timed repetitions / untimed warmup calls.
    repeats: int = 5
    warmup: int = 1
    #: The pinned simulation config, for scenarios that are one merge
    #: configuration (lets ``repro run <scenario>`` replay the exact
    #: workload outside the timing harness; None for composite
    #: workloads like sweeps and pure analysis).
    config: Optional[SimulationConfig] = None


def _merge_build(config: SimulationConfig) -> Callable[[str], Workload]:
    """Workload factory for one merge configuration."""

    def build(kernel: str) -> Workload:
        from repro.core.simulator import MergeSimulation

        variant = dataclasses.replace(config, kernel=kernel)

        def workload():
            return MergeSimulation(variant).run()

        return workload

    return build


def _merge_events(config_kwargs: dict) -> int:
    return (
        config_kwargs["num_runs"]
        * config_kwargs["blocks_per_run"]
        * config_kwargs.get("trials", 1)
    )


def _merge_scenario(
    name: str,
    description: str,
    repeats: int = 5,
    warmup: int = 1,
    **config_kwargs,
) -> BenchScenario:
    config = SimulationConfig(**config_kwargs)
    return BenchScenario(
        name=name,
        description=description,
        workload_events=_merge_events(config_kwargs),
        build=_merge_build(config),
        repeats=repeats,
        warmup=warmup,
        config=config,
    )


def _sweep_build(kernel: str) -> Workload:
    """A small uncached in-process sweep (engine overhead + simulator)."""
    from repro.sweep import NullProgress, SweepEngine, SweepSpec

    spec = SweepSpec(
        name="bench-sweep-small",
        base={
            "num_runs": 6,
            "strategy": "intra-run",
            "blocks_per_run": 60,
            "kernel": kernel,
        },
        grid={"num_disks": [1, 2], "prefetch_depth": [2, 4]},
        trials=1,
        base_seed=1992,
    )

    def workload():
        engine = SweepEngine(store=None, workers=1, progress=NullProgress())
        return engine.run_spec(spec)

    return workload


#: Grid shape of the sweep-batch scenario: 4 x 4 x 4 = 64 cells,
#: 4 trials each (so per-cell batches are real groups, not singletons).
_SWEEP_BATCH_DISKS = [1, 2, 3, 4]
_SWEEP_BATCH_DEPTHS = [2, 3, 4, 5]
_SWEEP_BATCH_RUNS = [6, 8, 10, 12]
_SWEEP_BATCH_TRIALS = 4
_SWEEP_BATCH_BLOCKS = 40


def _sweep_batch_build(kernel: str) -> Workload:
    """Batched vs per-trial execution of a 64-cell uncached sweep.

    Both variants run the identical campaign through the inline sweep
    engine with no result store.  The ``fast`` variant executes one
    worker call per trial; the ``batch`` variant groups each cell's
    trials into a single :func:`repro.sweep.worker.execute_batch` call
    that the flattened interpreter runs in one pass — the measured gap
    is the batch tier's whole advantage (flat execution plus amortized
    per-config setup and per-job dispatch).
    """
    from repro.sweep import NullProgress, SweepEngine, SweepSpec

    spec = SweepSpec(
        name="bench-sweep-batch",
        base={
            "strategy": "intra-run",
            "blocks_per_run": _SWEEP_BATCH_BLOCKS,
            "kernel": kernel,
        },
        grid={
            "num_disks": _SWEEP_BATCH_DISKS,
            "prefetch_depth": _SWEEP_BATCH_DEPTHS,
            "num_runs": _SWEEP_BATCH_RUNS,
        },
        trials=_SWEEP_BATCH_TRIALS,
        base_seed=1992,
    )

    def workload():
        engine = SweepEngine(store=None, workers=1, progress=NullProgress())
        return engine.run_spec(spec)

    return workload


_SWEEP_BATCH_EVENTS = (
    len(_SWEEP_BATCH_DISKS)
    * len(_SWEEP_BATCH_DEPTHS)
    * sum(_SWEEP_BATCH_RUNS)
    * _SWEEP_BATCH_BLOCKS
    * _SWEEP_BATCH_TRIALS
)


#: Cache-hit requests per timed call of the serve-cache workload.
_SERVE_CACHE_REQUESTS = 25

#: The serve-cache scenario's live server, reused across builds in one
#: process so repeated bench runs never accumulate listener threads.
_SERVE_HANDLE: list = []


def _serve_cache_build(kernel: str) -> Workload:
    """Cache-hit latency and request throughput through the HTTP path.

    Starts a real :class:`~repro.serve.server.SimulationServer` on an
    ephemeral port with a private store, warms the cache with one
    computed request, then times rounds of pure cache-hit requests —
    the parse → lookup → respond path with zero simulation.  Hits never
    run a kernel, so the scenario records a single kernel-independent
    variant.
    """
    import tempfile

    from repro.serve import NO_RETRY, ServeClient, ServeConfig
    from repro.serve.server import SimulationServer, start_in_thread

    del kernel  # cache hits never reach a simulation kernel
    while _SERVE_HANDLE:
        _SERVE_HANDLE.pop().stop()
    config = ServeConfig(
        port=0, workers=0, cache_dir=tempfile.mkdtemp(prefix="repro-bench-")
    )
    handle = start_in_thread(SimulationServer(config))
    _SERVE_HANDLE.append(handle)
    host, port = handle.address
    client = ServeClient(host, port, retry=NO_RETRY)
    request = {"num_runs": 6, "num_disks": 2, "strategy": "intra-run",
               "prefetch_depth": 4, "blocks_per_run": 60}
    warmed = client.simulate(request, trials=1, seed=1992)
    assert warmed["cache"]["misses"] == 1  # the one and only computation

    def workload():
        for _ in range(_SERVE_CACHE_REQUESTS):
            answer = client.simulate(request, trials=1, seed=1992)
            if answer["cache"]["hits"] != 1:
                raise RuntimeError("serve-cache workload missed the cache")
        return answer

    return workload


def _dist_sweep_spec():
    from repro.sweep import SweepSpec

    return SweepSpec(
        name="bench-dist-sweep",
        base={
            "num_runs": 6,
            "strategy": "intra-run",
            "blocks_per_run": 60,
        },
        grid={"num_disks": [1, 2], "prefetch_depth": [2, 4]},
        trials=1,
        base_seed=1992,
    )


def _dist_sweep_build(kernel: str) -> Workload:
    """Campaign-execution overhead: in-process engine vs coordination.

    Both variants run the *same* 4-cell campaign into a fresh private
    store per call (so neither ever hits its own cache).  The
    ``single-host`` variant is the plain :class:`SweepEngine`; the
    ``dist-2-workers`` variant stands up a real coordinator on an
    ephemeral port plus two worker threads, so its delta over
    single-host is the full price of distribution — leasing, job
    serialization, HTTP round trips, streamed merge.
    """
    import tempfile
    import threading

    from repro.sweep import NullProgress, SweepEngine
    from repro.sweep.store import ResultStore

    spec = _dist_sweep_spec()

    if kernel == "single-host":

        def workload():
            store = ResultStore(tempfile.mkdtemp(prefix="repro-bench-dist-"))
            engine = SweepEngine(store=store, workers=1,
                                 progress=NullProgress())
            return engine.run_spec(spec)

        return workload

    from repro.dist import Coordinator, CoordinatorConfig, DistWorker
    from repro.dist.coordinator import start_coordinator_in_thread

    def workload():
        cache = tempfile.mkdtemp(prefix="repro-bench-dist-")
        coordinator = Coordinator(
            spec,
            CoordinatorConfig(port=0, shard_size=1, cache_dir=cache,
                              exit_when_done=True),
        )
        handle = start_coordinator_in_thread(coordinator)
        host, port = handle.address
        workers = [
            DistWorker(host, port, worker_id=f"bench-w{n}", poll_s=0.01)
            for n in range(2)
        ]
        threads = [threading.Thread(target=w.run) for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        handle.join()
        return coordinator.aggregator.result()

    return workload


#: The realio-sort scenario's dataset geometry (kept tiny so the
#: scenario is tmpfs/page-cache resident and CI-stable).
_REALIO_RUNS = 6
_REALIO_DISKS = 2
_REALIO_BLOCKS = 32

#: Lazily generated dataset shared by both strategy variants within a
#: process (generation is deterministic, so reuse is safe).
_REALIO_DATASET: list = []


def _realio_dataset():
    import tempfile
    from pathlib import Path

    from repro.realio import generate_dataset

    if not _REALIO_DATASET:
        root = Path(tempfile.mkdtemp(prefix="repro-bench-realio-"))
        _REALIO_DATASET.append(generate_dataset(
            root,
            num_runs=_REALIO_RUNS,
            num_disks=_REALIO_DISKS,
            blocks_per_run=_REALIO_BLOCKS,
            seed=1992,
        ))
    return _REALIO_DATASET[0]


def _realio_sort_build(kernel: str) -> Workload:
    """A real-file k-way merge through the realio backend.

    The "kernel" axis names the prefetch strategy — both variants
    execute identical record traffic against the same files, so their
    delta isolates the strategy's effect on real (page-cache-backed)
    I/O scheduling rather than simulated time.
    """
    from repro.core.parameters import PrefetchStrategy
    from repro.realio import RealIOConfig, run_real_merge

    dataset = _realio_dataset()
    config = RealIOConfig(
        strategy=PrefetchStrategy(kernel), prefetch_depth=4
    )

    def workload():
        outcome = run_real_merge(dataset, config, trials=1, base_seed=1992)
        if not outcome.sorted_ok:
            raise RuntimeError("realio-sort produced unsorted output")
        return outcome

    return workload


def _markov_build(kernel: str) -> Workload:
    """Stationary-distribution solves of the companion-TR Markov chain."""
    del kernel  # pure analysis: no simulation kernel involved

    def workload():
        from repro.analysis.markov import policy_comparison

        return policy_comparison(3, (6, 8, 10, 12))

    return workload


_MARKOV_CAPACITIES = 4  # capacities swept by the workload above

SCENARIOS: dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in [
        _merge_scenario(
            "merge-d5",
            "inter-run prefetch, k=10 runs on D=5 disks, N=10, "
            "400 blocks/run, 2 trials",
            num_runs=10,
            num_disks=5,
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=10,
            blocks_per_run=400,
            trials=2,
            base_seed=1992,
        ),
        _merge_scenario(
            "merge-d1",
            "intra-run prefetch on a single disk, k=8, N=6, "
            "300 blocks/run, 2 trials",
            num_runs=8,
            num_disks=1,
            strategy=PrefetchStrategy.INTRA_RUN,
            prefetch_depth=6,
            blocks_per_run=300,
            trials=2,
            base_seed=1992,
        ),
        _merge_scenario(
            "merge-faults-d5",
            "inter-run prefetch under 5% transient faults on drive 0, "
            "k=10, D=5, N=10, 200 blocks/run, 2 trials",
            num_runs=10,
            num_disks=5,
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=10,
            blocks_per_run=200,
            trials=2,
            base_seed=1992,
            fault_plan=transient_plan(0.05),
        ),
        _merge_scenario(
            "smoke-d2",
            "tiny CI smoke workload: k=6, D=2, intra-run N=4, "
            "60 blocks/run, 1 trial",
            repeats=3,
            num_runs=6,
            num_disks=2,
            strategy=PrefetchStrategy.INTRA_RUN,
            prefetch_depth=4,
            blocks_per_run=60,
            trials=1,
            base_seed=1992,
        ),
        BenchScenario(
            name="sweep-small",
            description="uncached 4-cell sweep through the sweep engine "
            "(k=6, D in {1,2}, N in {2,4}, 60 blocks/run)",
            workload_events=4 * 6 * 60,
            build=_sweep_build,
            repeats=3,
        ),
        BenchScenario(
            name="sweep-batch",
            description="uncached 64-cell, 4-trial sweep through the "
            "inline sweep engine: per-trial jobs on the fast kernel vs "
            "per-cell batches on the flattened batch kernel",
            workload_events=_SWEEP_BATCH_EVENTS,
            build=_sweep_batch_build,
            kernels=("fast", "batch"),
            repeats=3,
        ),
        BenchScenario(
            name="serve-cache",
            description="HTTP cache-hit round trips against a live "
            "repro.serve instance: 25 single-trial requests per call, "
            "all answered from the content-addressed store",
            workload_events=_SERVE_CACHE_REQUESTS,
            build=_serve_cache_build,
            kernels=("reference",),
            repeats=5,
            warmup=1,
        ),
        BenchScenario(
            name="dist-sweep",
            description="the same uncached 4-cell campaign via the "
            "in-process sweep engine vs a live coordinator + 2 worker "
            "threads over HTTP (lease, execute, stream, merge)",
            workload_events=4 * 6 * 60,
            build=_dist_sweep_build,
            kernels=("single-host", "dist-2-workers"),
            repeats=3,
        ),
        BenchScenario(
            name="realio-sort",
            description="real-file k-way merge through the repro.realio "
            "backend: k=6 runs of 32 blocks on 2 disk directories "
            "(tmpfs-backed), intra-run vs inter-run prefetching",
            workload_events=_REALIO_RUNS * _REALIO_BLOCKS,
            build=_realio_sort_build,
            kernels=("intra-run", "inter-run"),
            repeats=3,
        ),
        BenchScenario(
            name="analysis-markov",
            description="companion-TR Markov chain: conservative vs greedy "
            "parallelism, D=3, caches 6..12",
            workload_events=2 * _MARKOV_CAPACITIES,
            build=_markov_build,
            kernels=("reference",),
            repeats=3,
        ),
    ]
}


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> BenchScenario:
    """Look up a scenario; raises ValueError listing valid names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench scenario {name!r}: "
            f"choose one of {', '.join(scenario_names())}"
        ) from None


def scenario_config(name: str) -> SimulationConfig:
    """The pinned config of a single-configuration scenario.

    Raises ValueError for unknown scenarios and for composite ones
    (sweeps, pure analysis) that have no single config to replay.
    """
    scenario = get_scenario(name)
    if scenario.config is None:
        raise ValueError(
            f"bench scenario {name!r} is not a single merge "
            "configuration and cannot be replayed with 'repro run'"
        )
    return scenario.config
