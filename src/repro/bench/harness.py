"""Measurement harness: timed repeats, percentiles, canonical reports.

This is the single measurement path for all repo benchmarking: the
``repro bench`` CLI, the ``make bench`` target, and the pytest-benchmark
suite under ``benchmarks/`` all time workloads through
:func:`timed_call` / :func:`measure`, so numbers from any of them are
comparable.

A benchmark run produces a :class:`BenchReport` — one scenario, one
:class:`VariantResult` per simulation kernel — serialized to a canonical
``BENCH_<scenario>.json`` file (schema documented in
``docs/BENCHMARKS.md`` and enforced by :func:`validate_report`).
Reports are diffable across commits with
:func:`repro.bench.compare.compare_reports`.

Methodology:

* ``warmup`` untimed calls absorb import costs, allocator warm-up and
  branch-predictor training, then ``repeats`` timed calls sample the
  steady state with :func:`time.perf_counter_ns`.
* The headline statistic is the **median** (robust against scheduler
  noise); p10/p90 bound the spread; the raw samples are kept in the
  report so later analysis can recompute anything.
* ``events_per_sec`` divides the scenario's nominal workload size (for
  merge scenarios: blocks merged across all trials) by the median.
* ``peak_rss_kb`` is the process-lifetime peak resident set after the
  measurement (``ru_maxrss``) — an upper bound on the workload's
  footprint, comparable between runs of the same scenario list.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional

#: Bump whenever the BENCH_*.json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def timed_call(fn: Callable[[], Any]) -> tuple[Any, int]:
    """Run ``fn`` once under the canonical timer.

    Returns ``(result, elapsed_ns)``.  Every benchmark measurement in
    the repository goes through here.
    """
    start = time.perf_counter_ns()
    result = fn()
    return result, time.perf_counter_ns() - start


def percentile(samples: list[int], fraction: float) -> float:
    """Linear-interpolated percentile of ``samples`` (0 <= fraction <= 1)."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def peak_rss_kb() -> int:
    """Process-lifetime peak resident set size in KiB (Linux units)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def provenance() -> dict:
    """Where the numbers came from: interpreter, platform, wall clock."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "argv": list(sys.argv),
        "unix_time": time.time(),
    }


@dataclasses.dataclass
class Measurement:
    """Raw timing samples of one workload variant."""

    samples_ns: list[int]
    warmup: int

    @property
    def median_ns(self) -> float:
        return percentile(self.samples_ns, 0.5)

    @property
    def p10_ns(self) -> float:
        return percentile(self.samples_ns, 0.1)

    @property
    def p90_ns(self) -> float:
        return percentile(self.samples_ns, 0.9)


def measure(fn: Callable[[], Any], repeats: int = 5, warmup: int = 1) -> Measurement:
    """Warm up, then time ``repeats`` calls of ``fn``."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        _, elapsed_ns = timed_call(fn)
        samples.append(elapsed_ns)
    return Measurement(samples_ns=samples, warmup=warmup)


@dataclasses.dataclass
class VariantResult:
    """One kernel's measurement within a scenario."""

    kernel: str
    repeats: int
    warmup: int
    median_ns: float
    p10_ns: float
    p90_ns: float
    samples_ns: list[int]
    events_per_sec: float
    peak_rss_kb: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VariantResult":
        return cls(**data)


@dataclasses.dataclass
class BenchReport:
    """Canonical result of benchmarking one scenario."""

    scenario: str
    description: str
    workload_events: int
    variants: dict[str, VariantResult]
    speedup: Optional[float]
    provenance: dict
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "scenario": self.scenario,
            "description": self.description,
            "workload_events": self.workload_events,
            "variants": {
                name: variant.to_dict()
                for name, variant in sorted(self.variants.items())
            },
            "speedup": self.speedup,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        errors = validate_report(data)
        if errors:
            raise ValueError(
                "invalid bench report: " + "; ".join(errors)
            )
        return cls(
            schema_version=data["schema_version"],
            scenario=data["scenario"],
            description=data["description"],
            workload_events=data["workload_events"],
            variants={
                name: VariantResult.from_dict(variant)
                for name, variant in data["variants"].items()
            },
            speedup=data["speedup"],
            provenance=data["provenance"],
        )

    def write(self, path: str | Path) -> Path:
        """Serialize to ``path`` (canonical indented JSON, sorted keys)."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def render(self) -> str:
        """Human-readable one-scenario summary."""
        lines = [
            f"scenario {self.scenario}: {self.description}",
            f"  workload: {self.workload_events} events",
        ]
        for name in sorted(self.variants):
            variant = self.variants[name]
            lines.append(
                f"  {name:10s} median {variant.median_ns / 1e6:9.2f} ms  "
                f"[p10 {variant.p10_ns / 1e6:.2f}, p90 {variant.p90_ns / 1e6:.2f}]  "
                f"{variant.events_per_sec:10.0f} events/s  "
                f"rss {variant.peak_rss_kb} KiB"
            )
        if self.speedup is not None:
            if "reference" in self.variants:
                pair = "fast is {:.2f}x reference"
            else:
                pair = "batch is {:.2f}x fast"
            lines.append("  speedup   " + pair.format(self.speedup))
        return "\n".join(lines)


#: Field -> required type for the report top level; the contract
#: docs/BENCHMARKS.md documents and CI relies on.
_REPORT_FIELDS: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "scenario": str,
    "description": str,
    "workload_events": int,
    "variants": dict,
    "speedup": (int, float, type(None)),
    "provenance": dict,
}

_VARIANT_FIELDS: dict[str, type | tuple[type, ...]] = {
    "kernel": str,
    "repeats": int,
    "warmup": int,
    "median_ns": (int, float),
    "p10_ns": (int, float),
    "p90_ns": (int, float),
    "samples_ns": list,
    "events_per_sec": (int, float),
    "peak_rss_kb": int,
}


def validate_report(data: Any) -> list[str]:
    """Schema-check a decoded BENCH_*.json payload; returns error strings."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    for field, expected in _REPORT_FIELDS.items():
        if field not in data:
            errors.append(f"missing field {field!r}")
        elif not isinstance(data[field], expected):
            errors.append(
                f"field {field!r} has type {type(data[field]).__name__}"
            )
    if errors:
        return errors
    if data["schema_version"] != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version {data['schema_version']} != {BENCH_SCHEMA_VERSION}"
        )
    if not data["variants"]:
        errors.append("no variants recorded")
    for name, variant in data["variants"].items():
        if not isinstance(variant, dict):
            errors.append(f"variant {name!r} is not an object")
            continue
        for field, expected in _VARIANT_FIELDS.items():
            if field not in variant:
                errors.append(f"variant {name!r} missing field {field!r}")
            elif not isinstance(variant[field], expected):
                errors.append(
                    f"variant {name!r} field {field!r} has type "
                    f"{type(variant[field]).__name__}"
                )
        if variant.get("kernel") != name:
            errors.append(f"variant {name!r} kernel field mismatch")
        samples = variant.get("samples_ns")
        if isinstance(samples, list) and not all(
            isinstance(sample, int) and sample >= 0 for sample in samples
        ):
            errors.append(f"variant {name!r} has non-integer samples")
    return errors


def bench_filename(scenario_name: str) -> str:
    """Canonical report filename for a scenario."""
    return f"BENCH_{scenario_name}.json"


def run_scenario(
    scenario,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> BenchReport:
    """Benchmark every kernel variant of one scenario.

    ``scenario`` is a :class:`repro.bench.scenarios.BenchScenario`;
    ``repeats`` / ``warmup`` override the scenario defaults.
    """
    repeats = scenario.repeats if repeats is None else repeats
    warmup = scenario.warmup if warmup is None else warmup
    variants: dict[str, VariantResult] = {}
    for kernel in scenario.kernels:
        workload = scenario.build(kernel)
        measurement = measure(workload, repeats=repeats, warmup=warmup)
        median_s = measurement.median_ns / 1e9
        variants[kernel] = VariantResult(
            kernel=kernel,
            repeats=repeats,
            warmup=warmup,
            median_ns=measurement.median_ns,
            p10_ns=measurement.p10_ns,
            p90_ns=measurement.p90_ns,
            samples_ns=measurement.samples_ns,
            events_per_sec=scenario.workload_events / median_s,
            peak_rss_kb=peak_rss_kb(),
        )
    speedup = None
    if "reference" in variants and "fast" in variants:
        speedup = variants["reference"].median_ns / variants["fast"].median_ns
    elif "fast" in variants and "batch" in variants:
        # Sweep-style scenarios without a reference variant: the
        # headline is the batch tier's gain over per-trial fast.
        speedup = variants["fast"].median_ns / variants["batch"].median_ns
    return BenchReport(
        scenario=scenario.name,
        description=scenario.description,
        workload_events=scenario.workload_events,
        variants=variants,
        speedup=speedup,
        provenance=provenance(),
    )
