"""Regression detection between two BENCH_*.json reports.

``compare_reports`` diffs a *current* report against a *baseline* of the
same scenario, per kernel variant, on the median: a variant regresses
when ``current_median / baseline_median > 1 + threshold``.  Faster is
never a failure.  CI runs this against the committed baselines with a
deliberately generous threshold, so only order-of-magnitude regressions
(algorithmic accidents, not runner noise) fail the build.
"""

from __future__ import annotations

import dataclasses

from repro.bench.harness import BenchReport


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One kernel variant's baseline-vs-current verdict."""

    scenario: str
    kernel: str
    baseline_median_ns: float
    current_median_ns: float
    threshold: float

    @property
    def ratio(self) -> float:
        return self.current_median_ns / self.baseline_median_ns

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.threshold

    def render(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"[{verdict:9s}] {self.scenario}/{self.kernel}: "
            f"{self.baseline_median_ns / 1e6:.2f} ms -> "
            f"{self.current_median_ns / 1e6:.2f} ms "
            f"({self.ratio:.2f}x, limit {1.0 + self.threshold:.2f}x)"
        )


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    threshold: float = 0.25,
) -> list[ComparisonRow]:
    """Per-variant comparison rows; raises on mismatched reports.

    Both reports must describe the same scenario, and every baseline
    variant must be present in the current report (a dropped kernel is
    a comparison error, not a silent pass).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if baseline.scenario != current.scenario:
        raise ValueError(
            f"scenario mismatch: baseline {baseline.scenario!r} vs "
            f"current {current.scenario!r}"
        )
    rows = []
    for kernel in sorted(baseline.variants):
        if kernel not in current.variants:
            raise ValueError(
                f"current report is missing variant {kernel!r} present "
                "in the baseline"
            )
        rows.append(
            ComparisonRow(
                scenario=baseline.scenario,
                kernel=kernel,
                baseline_median_ns=baseline.variants[kernel].median_ns,
                current_median_ns=current.variants[kernel].median_ns,
                threshold=threshold,
            )
        )
    return rows


def missing_baseline_variants(
    baseline: BenchReport, current: BenchReport
) -> list[str]:
    """Current-report variants that have no baseline to compare against.

    A newly registered kernel shows up in fresh reports before anyone
    refreshes the committed baselines; that is progress, not a
    regression, so these variants are *listed* for the operator rather
    than raised (the inverse case — a baseline variant missing from the
    current report — stays an error in :func:`compare_reports`).
    """
    return sorted(set(current.variants) - set(baseline.variants))


def regressions(rows: list[ComparisonRow]) -> list[ComparisonRow]:
    """The subset of rows that exceeded the threshold."""
    return [row for row in rows if row.regressed]


def render_comparison(rows: list[ComparisonRow]) -> str:
    """Multi-line human-readable comparison."""
    return "\n".join(row.render() for row in rows)
