"""Records: the unit of sorting.

The paper's configuration packs 64 records into each 4096-byte block,
i.e. 64-byte records.  A :class:`Record` carries an integer sort key
plus an opaque payload tag; ordering is by ``(key, tag)`` so sorts are
total and stability is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: Bytes per record in the paper's setup (4096-byte block / 64 records).
RECORD_BYTES = 64

#: Records per 4096-byte block.
RECORDS_PER_BLOCK = 64


@dataclass(frozen=True, order=True)
class Record:
    """A sortable record.

    Attributes:
        key: the sort key.
        tag: a unique sequence number assigned at creation; breaks key
            ties deterministically and lets tests verify permutations.
    """

    key: int
    tag: int = 0

    def __repr__(self) -> str:
        return f"Record({self.key}, #{self.tag})"


def make_records(keys: Iterable[int]) -> list[Record]:
    """Wrap raw keys into records with sequential tags."""
    return [Record(key=key, tag=tag) for tag, key in enumerate(keys)]


def is_sorted(records: Sequence[Record]) -> bool:
    """True when ``records`` is non-decreasing."""
    return all(records[i] <= records[i + 1] for i in range(len(records) - 1))


def verify_sorted_permutation(
    original: Sequence[Record],
    result: Sequence[Record],
) -> None:
    """Raise ``AssertionError`` unless ``result`` sorts ``original``."""
    if len(original) != len(result):
        raise AssertionError(
            f"length changed: {len(original)} -> {len(result)} records"
        )
    if not is_sorted(result):
        raise AssertionError("output is not sorted")
    if sorted(original) != list(result):
        raise AssertionError("output is not a permutation of the input")
