"""Run formation: turning unsorted input into sorted runs.

Two classical methods:

* **Memory-load sorting** (the paper's implicit model): read one
  memory-load of records, sort it, write it out as a run.  Every run
  except possibly the last has exactly ``memory_records`` records --
  matching the paper's equal-length-runs assumption.
* **Replacement selection** (Knuth vol. 3): a selection tree produces
  runs averaging *twice* the memory size on random input, at the cost
  of variable run lengths.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.mergesort.records import Record


def form_runs_memory_sort(
    records: Sequence[Record],
    memory_records: int,
) -> list[list[Record]]:
    """Split ``records`` into memory-loads and sort each."""
    if memory_records < 1:
        raise ValueError("memory must hold at least one record")
    runs = []
    for start in range(0, len(records), memory_records):
        load = sorted(records[start : start + memory_records])
        runs.append(load)
    return runs


def form_runs_replacement_selection(
    records: Sequence[Record],
    memory_records: int,
) -> list[list[Record]]:
    """Form runs by replacement selection.

    A min-heap of ``(run_number, record)`` pairs: the smallest record
    eligible for the current run is emitted; an incoming record smaller
    than the last emitted one is deferred to the next run.  Expected
    run length on random input is ``2 * memory_records``.
    """
    if memory_records < 1:
        raise ValueError("memory must hold at least one record")
    source = iter(records)
    heap: list[tuple[int, Record]] = []
    for record in records[:memory_records]:
        heap.append((0, record))
    consumed = min(memory_records, len(records))
    source = iter(records[consumed:])
    heapq.heapify(heap)

    runs: list[list[Record]] = []
    current_run = 0
    current: list[Record] = []
    while heap:
        run_number, record = heapq.heappop(heap)
        if run_number != current_run:
            if current:
                runs.append(current)
            current = []
            current_run = run_number
        current.append(record)
        try:
            incoming = next(source)
        except StopIteration:
            continue
        if incoming < record:
            heapq.heappush(heap, (current_run + 1, incoming))
        else:
            heapq.heappush(heap, (current_run, incoming))
    if current:
        runs.append(current)
    return runs


def check_runs(runs: Sequence[Sequence[Record]]) -> None:
    """Raise ``AssertionError`` unless every run is sorted."""
    for index, run in enumerate(runs):
        for i in range(len(run) - 1):
            if run[i + 1] < run[i]:
                raise AssertionError(f"run {index} unsorted at position {i}")
