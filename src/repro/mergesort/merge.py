"""Block-structured k-way merging with depletion tracing.

The bridge between the real mergesort and the paper's I/O model: runs
are viewed as sequences of fixed-size blocks, and the merge records the
order in which run blocks are *depleted* (their last record consumed).
That depletion trace is exactly the process the paper models as uniform
random choice -- feeding it into the simulator instead validates the
model on real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mergesort.records import RECORDS_PER_BLOCK, Record
from repro.mergesort.tournament import LoserTree


@dataclass(frozen=True)
class BlockedRun:
    """A sorted run split into fixed-size blocks."""

    records: tuple[Record, ...]
    records_per_block: int = RECORDS_PER_BLOCK

    def __post_init__(self) -> None:
        if self.records_per_block < 1:
            raise ValueError("records_per_block must be >= 1")
        for i in range(len(self.records) - 1):
            if self.records[i + 1] < self.records[i]:
                raise ValueError(f"run unsorted at position {i}")

    @property
    def num_blocks(self) -> int:
        """Blocks covered (last one may be partial)."""
        records = len(self.records)
        return -(-records // self.records_per_block) if records else 0

    def block(self, index: int) -> tuple[Record, ...]:
        start = index * self.records_per_block
        if not 0 <= start < len(self.records):
            raise IndexError(f"block {index} out of range")
        return self.records[start : start + self.records_per_block]

    @classmethod
    def from_records(
        cls,
        records: Sequence[Record],
        records_per_block: int = RECORDS_PER_BLOCK,
    ) -> "BlockedRun":
        return cls(tuple(records), records_per_block)


@dataclass
class MergeResult:
    """Output of a traced k-way merge.

    Attributes:
        records: the merged (sorted) record stream.
        depletion_trace: run index per depleted block, in depletion
            order; its length is the total number of blocks.
        blocks_per_run: block count of each input run.
    """

    records: list[Record]
    depletion_trace: list[int]
    blocks_per_run: list[int]

    @property
    def total_blocks(self) -> int:
        return len(self.depletion_trace)

    def depletions_of(self, run: int) -> int:
        return sum(1 for r in self.depletion_trace if r == run)


def merge_runs(runs: Sequence[BlockedRun]) -> MergeResult:
    """Merge ``runs`` with a loser tree, recording block depletions."""
    if not runs:
        raise ValueError("need at least one run")
    remaining_in_block = [
        min(run.records_per_block, len(run.records)) if run.records else 0
        for run in runs
    ]
    remaining_total = [len(run.records) for run in runs]
    trace: list[int] = []

    def on_pop(run_index: int) -> None:
        remaining_in_block[run_index] -= 1
        remaining_total[run_index] -= 1
        if remaining_in_block[run_index] == 0:
            trace.append(run_index)
            run = runs[run_index]
            remaining_in_block[run_index] = min(
                run.records_per_block, remaining_total[run_index]
            )

    tree = LoserTree([run.records for run in runs], on_pop=on_pop)
    merged = list(tree)
    return MergeResult(
        records=merged,
        depletion_trace=trace,
        blocks_per_run=[run.num_blocks for run in runs],
    )
