"""The full external-mergesort pipeline.

Combines run formation and (possibly multi-pass) k-way merging into a
complete sort, and connects the *final* merge pass to the I/O simulator:
its real block-depletion trace can replace the paper's random-depletion
model (``trace_driven_metrics``), which is how we validate that model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.merge_sim import MergeTrial
from repro.core.metrics import MergeMetrics
from repro.core.parameters import SimulationConfig
from repro.mergesort.merge import BlockedRun, MergeResult, merge_runs
from repro.mergesort.records import RECORDS_PER_BLOCK, Record, verify_sorted_permutation
from repro.mergesort.runs import form_runs_memory_sort, form_runs_replacement_selection


@dataclass
class SortStatistics:
    """What one external sort did."""

    records: int
    initial_runs: int
    merge_passes: int
    final_fan_in: int
    output: list[Record] = field(repr=False)
    final_merge: MergeResult = field(repr=False)

    @property
    def final_depletion_trace(self) -> list[int]:
        """Block-depletion order of the last merge pass."""
        return self.final_merge.depletion_trace


class ExternalMergesort:
    """A configurable external mergesort.

    Attributes:
        memory_records: records that fit in memory during run formation.
        records_per_block: block packing (64 in the paper).
        max_fan_in: merge order limit; more runs than this triggers
            extra merge passes.
        replacement_selection: use replacement selection (runs average
            twice the memory size, variable length) instead of
            memory-load sorting (equal-length runs, the paper's model).
    """

    def __init__(
        self,
        memory_records: int,
        records_per_block: int = RECORDS_PER_BLOCK,
        max_fan_in: Optional[int] = None,
        replacement_selection: bool = False,
    ) -> None:
        if memory_records < 1:
            raise ValueError("memory must hold at least one record")
        if records_per_block < 1:
            raise ValueError("records_per_block must be >= 1")
        if max_fan_in is not None and max_fan_in < 2:
            raise ValueError("max_fan_in must be >= 2")
        self.memory_records = memory_records
        self.records_per_block = records_per_block
        self.max_fan_in = max_fan_in
        self.replacement_selection = replacement_selection

    def sort(self, records: Sequence[Record], verify: bool = True) -> SortStatistics:
        """Sort ``records``; returns output plus pipeline statistics."""
        if not records:
            raise ValueError("nothing to sort")
        if self.replacement_selection:
            raw_runs = form_runs_replacement_selection(records, self.memory_records)
        else:
            raw_runs = form_runs_memory_sort(records, self.memory_records)
        runs = [
            BlockedRun.from_records(run, self.records_per_block) for run in raw_runs
        ]
        initial_runs = len(runs)

        passes = 0
        result: MergeResult
        while True:
            passes += 1
            if self.max_fan_in is None or len(runs) <= self.max_fan_in:
                result = merge_runs(runs)
                break
            runs = self._partial_pass(runs)
        final_fan_in = len(result.blocks_per_run)

        if verify:
            verify_sorted_permutation(list(records), result.records)
        return SortStatistics(
            records=len(records),
            initial_runs=initial_runs,
            merge_passes=passes,
            final_fan_in=final_fan_in,
            output=result.records,
            final_merge=result,
        )

    def _partial_pass(self, runs: list[BlockedRun]) -> list[BlockedRun]:
        """Merge groups of ``max_fan_in`` runs into longer runs."""
        assert self.max_fan_in is not None
        merged: list[BlockedRun] = []
        for start in range(0, len(runs), self.max_fan_in):
            group = runs[start : start + self.max_fan_in]
            if len(group) == 1:
                merged.append(group[0])
                continue
            result = merge_runs(group)
            merged.append(
                BlockedRun.from_records(result.records, self.records_per_block)
            )
        return merged


def trace_driven_metrics(
    stats: SortStatistics,
    config: SimulationConfig,
    trial: int = 0,
) -> MergeMetrics:
    """Simulate the final merge pass's I/O using its *real* trace.

    ``config`` must describe the same merge shape the sort produced:
    equal-length runs of ``config.blocks_per_run`` blocks and
    ``config.num_runs`` runs.  Raises ``ValueError`` on mismatch --
    use memory-load run formation with ``memory_records = blocks_per_run
    * records_per_block`` and an exact multiple of that many records.
    """
    blocks = stats.final_merge.blocks_per_run
    if len(blocks) != config.num_runs:
        raise ValueError(
            f"sort produced {len(blocks)} final runs, config expects "
            f"{config.num_runs}"
        )
    if any(b != config.blocks_per_run for b in blocks):
        raise ValueError(
            f"run lengths {sorted(set(blocks))} do not all equal the "
            f"configured {config.blocks_per_run} blocks"
        )
    source = iter(stats.final_depletion_trace)
    return MergeTrial(
        config,
        seed=config.base_seed + trial,
        depletion_source=source,
    ).run()
