"""A real, record-level external mergesort.

The paper (following Kwan & Baer) models the merge's block consumption
as a *random depletion* process rather than merging actual data.  This
package implements the real thing -- run formation, loser-tree k-way
merging, multi-pass external sorting -- both as a usable library and to
*validate* the random-depletion model: the merge here emits the exact
sequence in which run blocks are exhausted, which can drive the I/O
simulator in place of the random model
(see ``repro.workloads.depletion`` and the ``ablation-depletion-model``
experiment).
"""

from repro.mergesort.external import ExternalMergesort, SortStatistics
from repro.mergesort.merge import BlockedRun, MergeResult, merge_runs
from repro.mergesort.records import Record, make_records
from repro.mergesort.runs import (
    form_runs_memory_sort,
    form_runs_replacement_selection,
)
from repro.mergesort.tournament import LoserTree

__all__ = [
    "BlockedRun",
    "ExternalMergesort",
    "LoserTree",
    "MergeResult",
    "Record",
    "SortStatistics",
    "form_runs_memory_sort",
    "form_runs_replacement_selection",
    "make_records",
    "merge_runs",
]
