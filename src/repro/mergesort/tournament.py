"""A loser tree (tournament tree) for k-way merging.

The classic selection structure from Knuth vol. 3: an array of ``k``
internal nodes each remembering the *loser* of its match, with the
overall winner kept aside.  Replacing the winner and replaying its path
to the root costs ``ceil(log2 k)`` comparisons, independent of how the
other leaves are distributed -- the standard engine for high-fan-in
external merges.

Leaves are iterators; an exhausted iterator is replaced by a sentinel
that compares greater than every real item.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional


class _Sentinel:
    """Compares greater than everything (including other sentinels)."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return not isinstance(other, _Sentinel)

    def __repr__(self) -> str:
        return "<exhausted>"


_SENTINEL = _Sentinel()


class LoserTree:
    """K-way merge engine over ``sources`` (iterables of sorted items).

    Iterate over the tree to receive the merged stream.  The optional
    ``on_pop(source_index)`` callback fires for every produced item and
    is how the external-merge layer tracks block depletions.
    """

    def __init__(
        self,
        sources: Iterable[Iterable],
        on_pop: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._iterators: list[Iterator] = [iter(source) for source in sources]
        self._k = len(self._iterators)
        if self._k == 0:
            raise ValueError("need at least one source")
        self._on_pop = on_pop
        # leaves[i] is the current head item of source i (or sentinel).
        self._leaves: list[object] = []
        self._exhausted = 0
        for iterator in self._iterators:
            self._leaves.append(self._pull(iterator))
        # losers[1..k-1] are internal nodes; losers[0] holds the winner.
        self._losers: list[int] = [0] * self._k
        self._build()

    def _pull(self, iterator: Iterator) -> object:
        try:
            return next(iterator)
        except StopIteration:
            self._exhausted += 1
            return _SENTINEL

    def _build(self) -> None:
        """Initialize the loser nodes by playing all matches bottom-up."""
        k = self._k
        winners: list[int] = [0] * (2 * k)
        # Leaves occupy virtual positions k .. 2k-1.
        for i in range(k, 2 * k):
            winners[i] = i - k
        for node in range(k - 1, 0, -1):
            left, right = winners[2 * node], winners[2 * node + 1]
            # "left <= right" phrased as "not right < left" so sentinel
            # comparisons resolve through _Sentinel's operators.
            if not self._leaves[right] < self._leaves[left]:
                winners[node], self._losers[node] = left, right
            else:
                winners[node], self._losers[node] = right, left
        self._losers[0] = winners[1] if k > 1 else 0

    def __iter__(self) -> "LoserTree":
        return self

    def __next__(self) -> object:
        winner = self._losers[0]
        item = self._leaves[winner]
        if isinstance(item, _Sentinel):
            raise StopIteration
        if self._on_pop is not None:
            self._on_pop(winner)
        # Refill the winning leaf and replay its path to the root.
        self._leaves[winner] = self._pull(self._iterators[winner])
        node = (winner + self._k) // 2
        current = winner
        while node > 0:
            loser = self._losers[node]
            if self._leaves[loser] < self._leaves[current]:
                self._losers[node], current = current, loser
            node //= 2
        self._losers[0] = current
        return item

    @property
    def fan_in(self) -> int:
        return self._k


def heap_merge(sources: Iterable[Iterable]) -> Iterator:
    """Reference k-way merge via ``heapq`` (for differential testing)."""
    import heapq

    exhausted = object()  # next() sentinel: avoids swallowing StopIteration
    iterators = [iter(source) for source in sources]
    heap = []
    for index, iterator in enumerate(iterators):
        first = next(iterator, exhausted)
        if first is not exhausted:
            heap.append((first, index))
    heapq.heapify(heap)
    while heap:
        item, index = heapq.heappop(heap)
        yield item
        following = next(iterators[index], exhausted)
        if following is not exhausted:
            heapq.heappush(heap, (following, index))
