"""The run-context API: one ambient scope for *how* simulations run.

Historically the repo grew three parallel ambient mechanisms, each a
module global plus a setter plus a context manager in
:mod:`repro.core.simulator`:

* ``simulation_backend`` — route :meth:`MergeSimulation.run` through
  the sweep engine's cache and worker pool,
* ``fault_plan_override`` — subject plan-free configs to a fault
  schedule,
* ``kernel_override`` — execute on a named (result-equivalent) kernel.

:class:`RunContext` composes all three, plus tracing, behind a single
scope::

    from repro.api import configure

    with configure(kernel="fast", trace=True) as ctx:
        result = MergeSimulation(config).run()
    ctx.trace.export_chrome("merge.json")

Every option distinguishes *unset* (inherit the enclosing scope) from
an explicit ``None`` (clear for this scope), so contexts nest the way
lexical scopes do.  The old setters and context managers still work as
deprecated shims that delegate here.

This module is import-light on purpose: :mod:`repro.core.simulator`
and :mod:`repro.core.merge_sim` read the ambient state from here, so
importing anything from ``repro.core`` at module level would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from repro.obs.collector import TraceSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import AggregateMetrics
    from repro.core.parameters import SimulationConfig
    from repro.faults.plan import FaultPlan

    SimulationBackend = Callable[["SimulationConfig"], "AggregateMetrics"]


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UNSET"


UNSET = _Unset()

#: The ambient option names, in the order RunContext accepts them.
_FIELDS = ("backend", "fault_plan", "kernel", "trace")

#: Ambient state shared by every RunContext (module-level, like the
#: three globals it replaces).  Values are ``None`` when inactive.
_state: dict[str, Any] = {name: None for name in _FIELDS}


def current_backend() -> Optional["SimulationBackend"]:
    """The ambient simulation backend, if any."""
    return _state["backend"]


def current_fault_plan() -> Optional["FaultPlan"]:
    """The ambient fault plan applied to plan-free configs, if any."""
    return _state["fault_plan"]


def current_kernel() -> Optional[str]:
    """The ambient kernel-name override, if any."""
    return _state["kernel"]


def current_trace() -> Optional[TraceSession]:
    """The ambient trace session, if tracing is on.

    This is *the* tracing switch: simulation code holds the returned
    session (or ``None``) and guards every emission with
    ``if trace is not None``.
    """
    return _state["trace"]


def _set(name: str, value: Any) -> Any:
    """Install one ambient value, returning the previous one."""
    previous = _state[name]
    _state[name] = value
    return previous


def set_option(name: str, value: Any) -> Any:
    """Unscoped install of one ambient option; returns the previous value.

    Prefer :class:`RunContext` — this exists for the deprecated
    ``set_*`` shims in :mod:`repro.core.simulator`, which promised
    set-and-return-previous semantics.
    """
    if name not in _FIELDS:
        raise ValueError(
            f"unknown run option {name!r} (known: {', '.join(_FIELDS)})"
        )
    return _set(name, value)


class RunContext:
    """One scoped bundle of ambient run options.

    Options left unset inherit from the enclosing scope; options set to
    ``None`` are cleared inside the scope.  ``trace=True`` creates a
    fresh :class:`~repro.obs.collector.TraceSession` (available as
    :attr:`trace` during and after the scope); an existing session can
    be passed to accumulate several runs into one trace.

    ``sanitize=True`` additionally switches on the runtime concurrency
    sanitizer (:mod:`repro.lint.sanitizer`) for the duration of the
    scope.  Unlike the other options it is not ambient state to read
    back — it instruments shared-state classes process-wide while at
    least one sanitizing scope is open.

    Reusable and reentrant: each ``with`` entry snapshots exactly the
    fields this context sets and restores them on exit.
    """

    __slots__ = ("_options", "_saved", "_sanitize")

    def __init__(
        self,
        *,
        backend: Union["SimulationBackend", None, _Unset] = UNSET,
        fault_plan: Union["FaultPlan", None, _Unset] = UNSET,
        kernel: Union[str, None, _Unset] = UNSET,
        trace: Union[TraceSession, bool, None, _Unset] = UNSET,
        sanitize: bool = False,
    ) -> None:
        if trace is True:
            trace = TraceSession()
        elif trace is False:
            trace = None
        self._options: dict[str, Any] = {}
        for name, value in (
            ("backend", backend),
            ("fault_plan", fault_plan),
            ("kernel", kernel),
            ("trace", trace),
        ):
            if not isinstance(value, _Unset):
                self._options[name] = value
        self._saved: list[dict[str, Any]] = []
        self._sanitize = bool(sanitize)

    @property
    def trace(self) -> Optional[TraceSession]:
        """The trace session this context installs (or ``None``)."""
        return self._options.get("trace")

    @property
    def kernel(self) -> Optional[str]:
        """The kernel override this context installs (or ``None``)."""
        return self._options.get("kernel")

    def __enter__(self) -> "RunContext":
        self._saved.append(
            {name: _set(name, value) for name, value in self._options.items()}
        )
        if self._sanitize:
            # Function-scoped import: repro.lint sits above this module
            # in the layer DAG, and the sanitizer is opt-in anyway.
            from repro.lint import sanitizer

            sanitizer.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        for name, value in self._saved.pop().items():
            _set(name, value)
        if self._sanitize:
            from repro.lint import sanitizer

            sanitizer.disable()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rendered = ", ".join(
            f"{name}={value!r}" for name, value in self._options.items()
        )
        return f"RunContext({rendered})"


def configure(
    *,
    backend: Union["SimulationBackend", None, _Unset] = UNSET,
    fault_plan: Union["FaultPlan", None, _Unset] = UNSET,
    kernel: Union[str, None, _Unset] = UNSET,
    trace: Union[TraceSession, bool, None, _Unset] = UNSET,
    sanitize: bool = False,
) -> RunContext:
    """Build a :class:`RunContext` — the idiomatic spelling.

    ``with configure(kernel="fast"): ...`` reads better at call sites
    than naming the class; the two are interchangeable.
    """
    return RunContext(
        backend=backend, fault_plan=fault_plan, kernel=kernel, trace=trace,
        sanitize=sanitize,
    )
