"""The run API: ambient run options plus the batch trial entry point.

Historically the repo grew three parallel ambient mechanisms, each a
module global plus a setter plus a context manager in
:mod:`repro.core.simulator`:

* ``simulation_backend`` — route :meth:`MergeSimulation.run` through
  the sweep engine's cache and worker pool,
* ``fault_plan_override`` — subject plan-free configs to a fault
  schedule,
* ``kernel_override`` — execute on a named (result-equivalent) kernel.

:class:`RunContext` composes all three, plus tracing, behind a single
scope::

    from repro.api import configure

    with configure(kernel="fast", trace=True) as ctx:
        result = MergeSimulation(config).run()
    ctx.trace.export_chrome("merge.json")

Every option distinguishes *unset* (inherit the enclosing scope) from
an explicit ``None`` (clear for this scope), so contexts nest the way
lexical scopes do.

:func:`run_trials` is the one trial-execution path: it applies the
ambient options, enforces per-trial wall-clock budgets, and dispatches
whole batches to kernels that register a batch runner (the ``batch``
tier).  ``MergeSimulation.run_trial``/``run``, the sweep engine's
:func:`~repro.sweep.worker.execute_job`, and through it the serve and
dist workers are all thin wrappers over it.

This module is import-light on purpose: :mod:`repro.core.simulator`
and :mod:`repro.core.merge_sim` read the ambient state from here, so
importing anything from ``repro.core`` at module level would cycle
(``run_trials`` imports it lazily inside the call).
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterator,
    Optional,
    Sequence,
    Union,
)

from repro.obs.collector import TraceSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import AggregateMetrics, MergeMetrics
    from repro.core.parameters import SimulationConfig
    from repro.faults.plan import FaultPlan

    SimulationBackend = Callable[["SimulationConfig"], "AggregateMetrics"]


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UNSET"


UNSET = _Unset()

#: The ambient option names, in the order RunContext accepts them.
_FIELDS = ("backend", "fault_plan", "kernel", "trace")

#: Ambient state shared by every RunContext (module-level, like the
#: three globals it replaces).  Values are ``None`` when inactive.
_state: dict[str, Any] = {name: None for name in _FIELDS}


def current_backend() -> Optional["SimulationBackend"]:
    """The ambient simulation backend, if any."""
    return _state["backend"]


def current_fault_plan() -> Optional["FaultPlan"]:
    """The ambient fault plan applied to plan-free configs, if any."""
    return _state["fault_plan"]


def current_kernel() -> Optional[str]:
    """The ambient kernel-name override, if any."""
    return _state["kernel"]


def current_trace() -> Optional[TraceSession]:
    """The ambient trace session, if tracing is on.

    This is *the* tracing switch: simulation code holds the returned
    session (or ``None``) and guards every emission with
    ``if trace is not None``.
    """
    return _state["trace"]


def _set(name: str, value: Any) -> Any:
    """Install one ambient value, returning the previous one."""
    previous = _state[name]
    _state[name] = value
    return previous


def set_option(name: str, value: Any) -> Any:
    """Unscoped install of one ambient option; returns the previous value.

    Prefer :class:`RunContext` — this exists for embedders that need
    set-and-return-previous semantics without a lexical scope (e.g.
    per-task option juggling in async servers).
    """
    if name not in _FIELDS:
        raise ValueError(
            f"unknown run option {name!r} (known: {', '.join(_FIELDS)})"
        )
    return _set(name, value)


class RunContext:
    """One scoped bundle of ambient run options.

    Options left unset inherit from the enclosing scope; options set to
    ``None`` are cleared inside the scope.  ``trace=True`` creates a
    fresh :class:`~repro.obs.collector.TraceSession` (available as
    :attr:`trace` during and after the scope); an existing session can
    be passed to accumulate several runs into one trace.

    ``sanitize=True`` additionally switches on the runtime concurrency
    sanitizer (:mod:`repro.lint.sanitizer`) for the duration of the
    scope.  Unlike the other options it is not ambient state to read
    back — it instruments shared-state classes process-wide while at
    least one sanitizing scope is open.

    Reusable and reentrant: each ``with`` entry snapshots exactly the
    fields this context sets and restores them on exit.
    """

    __slots__ = ("_options", "_saved", "_sanitize")

    def __init__(
        self,
        *,
        backend: Union["SimulationBackend", None, _Unset] = UNSET,
        fault_plan: Union["FaultPlan", None, _Unset] = UNSET,
        kernel: Union[str, None, _Unset] = UNSET,
        trace: Union[TraceSession, bool, None, _Unset] = UNSET,
        sanitize: bool = False,
    ) -> None:
        if trace is True:
            trace = TraceSession()
        elif trace is False:
            trace = None
        self._options: dict[str, Any] = {}
        for name, value in (
            ("backend", backend),
            ("fault_plan", fault_plan),
            ("kernel", kernel),
            ("trace", trace),
        ):
            if not isinstance(value, _Unset):
                self._options[name] = value
        self._saved: list[dict[str, Any]] = []
        self._sanitize = bool(sanitize)

    @property
    def trace(self) -> Optional[TraceSession]:
        """The trace session this context installs (or ``None``)."""
        return self._options.get("trace")

    @property
    def kernel(self) -> Optional[str]:
        """The kernel override this context installs (or ``None``)."""
        return self._options.get("kernel")

    def __enter__(self) -> "RunContext":
        self._saved.append(
            {name: _set(name, value) for name, value in self._options.items()}
        )
        if self._sanitize:
            # Function-scoped import: repro.lint sits above this module
            # in the layer DAG, and the sanitizer is opt-in anyway.
            from repro.lint import sanitizer

            sanitizer.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        for name, value in self._saved.pop().items():
            _set(name, value)
        if self._sanitize:
            from repro.lint import sanitizer

            sanitizer.disable()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rendered = ", ".join(
            f"{name}={value!r}" for name, value in self._options.items()
        )
        return f"RunContext({rendered})"


def configure(
    *,
    backend: Union["SimulationBackend", None, _Unset] = UNSET,
    fault_plan: Union["FaultPlan", None, _Unset] = UNSET,
    kernel: Union[str, None, _Unset] = UNSET,
    trace: Union[TraceSession, bool, None, _Unset] = UNSET,
    sanitize: bool = False,
) -> RunContext:
    """Build a :class:`RunContext` — the idiomatic spelling.

    ``with configure(kernel="fast"): ...`` reads better at call sites
    than naming the class; the two are interchangeable.
    """
    return RunContext(
        backend=backend, fault_plan=fault_plan, kernel=kernel, trace=trace,
        sanitize=sanitize,
    )


# ----------------------------------------------------------------------
# Batch trial execution
# ----------------------------------------------------------------------
class TrialTimeoutError(RuntimeError):
    """A trial exceeded its per-trial wall-clock budget."""


#: Whether this platform has SIGALRM at all (POSIX).  Off it, trials
#: run without a wall-clock guard.
HAVE_SIGALRM = hasattr(signal, "SIGALRM")


def timeouts_enforceable() -> bool:
    """Can :func:`run_trials` enforce wall-clock budgets right now?

    SIGALRM is POSIX-only and may only be armed from the main thread;
    anywhere else trials run unguarded (callers can record the fact —
    see the sweep worker's ``timeout_enforced`` result field).
    """
    return HAVE_SIGALRM and (
        threading.current_thread() is threading.main_thread()
    )


def _alarm_handler(signum, frame):  # pragma: no cover - fires mid-trial
    raise TrialTimeoutError("trial exceeded its timeout")


def _timed_out(exc: BaseException) -> bool:
    """Did ``exc`` (or anything in its cause chain) come from the guard?

    The alarm fires mid-trial, so the raised :class:`TrialTimeoutError`
    usually surfaces wrapped — e.g. inside a
    :class:`~repro.sim.process.ProcessFailure` when the delivery lands
    in a simulation process generator.
    """
    seen: set[int] = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        if isinstance(current, TrialTimeoutError):
            return True
        seen.add(id(current))
        current = current.__cause__ or current.__context__
    return False


@contextlib.contextmanager
def _trial_guard(timeout_s: Optional[float]):
    """Arm a per-trial SIGALRM budget for the enclosed trial.

    Re-armed on an interval (not one-shot): a single alarm can be lost
    when delivery lands inside a context that swallows the raise (GC
    callbacks, C extensions), which would silently drop the guard.
    No-op when budgets cannot be enforced here.
    """
    if not timeout_s or not timeouts_enforceable():
        yield
        return
    previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, timeout_s, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)


def run_trials(
    configs: Sequence["SimulationConfig"],
    *,
    trials: Optional[Sequence[int]] = None,
    depletion_sources: Optional[Sequence[Optional[Iterator[int]]]] = None,
    timeout_s: Optional[float] = None,
    batch_efficiency_floor: float = 0.5,
) -> "list[MergeMetrics]":
    """Execute a batch of seeded trials; the one trial-execution path.

    Each entry of ``configs`` runs one trial — entry ``i`` is seeded
    ``configs[i].base_seed + trials[i]`` (``trials`` defaults to all
    zeros).  Results return in input order.  Single trials are simply
    batches of one, so every caller shares one implementation of:

    * **RunContext inheritance** — the ambient ``fault_plan`` and
      ``kernel`` are applied to each config exactly as
      ``MergeSimulation`` applies them;
    * **timeouts** — ``timeout_s`` arms a per-trial SIGALRM budget
      (each trial gets the full budget); an exhausted trial raises
      :class:`TrialTimeoutError`.  Unenforceable environments (no
      SIGALRM, non-main thread) run unguarded — check
      :func:`timeouts_enforceable`;
    * **obs emission** — with an ambient trace session installed,
      trials run per-trial on their event kernel so the trace stays
      complete (the flattened batch tier emits no trace);
    * **batch dispatch** — trials whose effective kernel registers a
      batch runner (``kernel="batch"``) are grouped by config and
      handed to it wholesale; the runner masks out trials it cannot
      execute natively and falls back to the fast kernel for them,
      steered by ``batch_efficiency_floor`` (minimum fraction of a
      group the flattened path must cover natively to stay batched).

    Keyword-only by design: new execution capabilities land here, not
    on the thin ``simulate_merge``/``run_trial`` wrappers.
    """
    # Lazy core imports: this module must stay import-light (the core
    # modules read ambient state from here at import time).
    from repro.core.merge_sim import MergeTrial
    from repro.sim.kernel import get_kernel

    import dataclasses

    n = len(configs)
    if trials is None:
        trials = [0] * n
    if len(trials) != n:
        raise ValueError(
            f"trials has {len(trials)} entries for {n} config(s)"
        )
    if depletion_sources is None:
        depletion_sources = [None] * n
    if len(depletion_sources) != n:
        raise ValueError(
            f"depletion_sources has {len(depletion_sources)} entries "
            f"for {n} config(s)"
        )

    ambient_plan = current_fault_plan()
    ambient_kernel = current_kernel()
    effective: list["SimulationConfig"] = []
    for config in configs:
        if ambient_plan is not None and config.fault_plan is None:
            config = dataclasses.replace(config, fault_plan=ambient_plan)
        if ambient_kernel is not None and config.kernel != ambient_kernel:
            config = dataclasses.replace(config, kernel=ambient_kernel)
        effective.append(config)

    results: list[Optional["MergeMetrics"]] = [None] * n
    tracing = current_trace() is not None

    # Group batchable trials by (identical) config; everything else
    # runs per-trial on its event kernel.
    serial: list[int] = []
    groups: list[tuple["SimulationConfig", list[int]]] = []
    for i, config in enumerate(effective):
        spec = get_kernel(config.kernel)
        if (
            spec.batch_runner is None
            or tracing
            or depletion_sources[i] is not None
        ):
            serial.append(i)
            continue
        for other, members in groups:
            if other == config:
                members.append(i)
                break
        else:
            groups.append((config, [i]))

    for config, members in groups:
        runner = get_kernel(config.kernel).batch_runner()
        seeds = [config.base_seed + trials[i] for i in members]
        batch = runner(
            config,
            seeds,
            guard=lambda: _trial_guard(timeout_s),
            efficiency_floor=batch_efficiency_floor,
        )
        for i, metrics in zip(members, batch):
            results[i] = metrics

    for i in serial:
        config = effective[i]
        try:
            with _trial_guard(timeout_s):
                results[i] = MergeTrial(
                    config,
                    seed=config.base_seed + trials[i],
                    depletion_source=depletion_sources[i],
                ).run()
        except TrialTimeoutError:
            raise
        except Exception as exc:
            if _timed_out(exc):
                raise TrialTimeoutError(
                    "trial exceeded its timeout"
                ) from None
            raise

    return results  # type: ignore[return-value]
