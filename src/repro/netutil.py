"""Shared asyncio HTTP/1.1 plumbing for the repo's JSON services.

Both network subsystems — :mod:`repro.serve` (the simulation front
door) and :mod:`repro.dist` (the distributed sweep coordinator) —
speak the same deliberately minimal HTTP/1.1 dialect: one request per
connection (request line, headers, ``Content-Length`` body), JSON
bodies both ways, ``Connection: close`` responses.  This module owns
that dialect so the two servers share one implementation instead of
two drifting copies; it is pure plumbing and must stay free of wall
clocks, routing policy, and anything simulation-specific.

Extracted verbatim from ``serve/server.py`` (PR 6); the serve e2e
suite pins the behaviour.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Optional

#: Reason phrases for every status the repo's services emit.
REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    410: "Gone", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: How long a header+body read may take before the connection is dropped.
READ_TIMEOUT_S = 30.0

#: Exceptions that mean "the peer went away or sent garbage": there is
#: nobody left to answer, so handlers just drop the connection.
REQUEST_READ_ERRORS = (
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    ConnectionError,
    ValueError,
)

#: A parsed request: ``(method, target, headers, body)``; ``body`` is
#: ``None`` when Content-Length exceeded the caller's limit (413).
ParsedRequest = tuple[str, str, dict, Optional[bytes]]


async def read_http_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> Optional[ParsedRequest]:
    """Read one HTTP/1.1 request off ``reader``.

    Returns ``None`` on an empty request line (peer connected and went
    away), raises ``ValueError`` on a malformed request line, and
    signals an oversized body by returning ``body=None`` so the caller
    can answer 413 instead of buffering the payload.
    """
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) != 3:
        raise ValueError("malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > max_body_bytes:
        return method, target, headers, None  # signals 413 downstream
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def write_json_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    extra_headers: Optional[dict] = None,
) -> None:
    """Serialize ``payload`` as the whole JSON answer and close-drain."""
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
    with contextlib.suppress(ConnectionError):
        await writer.drain()


def method_not_allowed(allowed: str) -> tuple[int, dict, dict]:
    """The uniform 405 answer: ``(status, body, extra_headers)``."""
    return 405, {"error": "method-not-allowed",
                 "detail": f"use {allowed}"}, {"Allow": allowed}
