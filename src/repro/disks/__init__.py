"""Disk subsystem model.

Models the paper's I/O substrate: ``D`` independently operating drives,
each holding ``k/D`` sorted runs laid out contiguously in cylinders.
Service time for a request decomposes into the three components the
paper charges -- linear seek (``S`` ms per cylinder), rotational latency
(sampled uniformly over one revolution, mean ``R``), and per-block
transfer (``T``) -- with contiguous blocks inside one fetch streamed at
transfer rate.
"""

from repro.disks.drive import DiskDrive, DriveStats, QueueDiscipline
from repro.disks.geometry import DiskGeometry
from repro.disks.layout import RunLayout
from repro.disks.request import BlockFetchRequest, FetchKind

__all__ = [
    "BlockFetchRequest",
    "DiskDrive",
    "DiskGeometry",
    "DriveStats",
    "FetchKind",
    "QueueDiscipline",
    "RunLayout",
]
