"""Placement of sorted runs across the disk array.

The paper distributes the ``k`` runs equally over the ``D`` input disks
and stores each run contiguously: run slot ``s`` of a disk occupies the
block range ``[s * blocks_per_run, (s + 1) * blocks_per_run)``, i.e.
``m = blocks_per_run / blocks_per_cylinder`` cylinders (15.625 for the
paper's 1000-block runs and 64-block cylinders).

Runs are assigned to disks round-robin (run ``r`` lives on disk
``r mod D``); under the random-depletion model any balanced assignment
is statistically equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disks.geometry import DiskGeometry


@dataclass(frozen=True)
class RunLayout:
    """Maps ``(run, block-in-run)`` to ``(disk, block address, cylinder)``.

    Attributes:
        num_runs: total runs ``k``.
        num_disks: input disks ``D``.
        blocks_per_run: blocks in each run (1000 in the paper).
        geometry: per-drive geometry (all drives identical).
    """

    num_runs: int
    num_disks: int
    blocks_per_run: int
    geometry: DiskGeometry = field(default_factory=DiskGeometry)

    def __post_init__(self) -> None:
        if self.num_runs < 1:
            raise ValueError("need at least one run")
        if self.num_disks < 1:
            raise ValueError("need at least one disk")
        if self.blocks_per_run < 1:
            raise ValueError("runs must contain at least one block")
        needed = self.max_runs_per_disk * self.blocks_per_run
        if needed > self.geometry.capacity_blocks:
            raise ValueError(
                f"disk too small: {self.max_runs_per_disk} runs of "
                f"{self.blocks_per_run} blocks need {needed} blocks, disk "
                f"holds {self.geometry.capacity_blocks}"
            )

    @property
    def max_runs_per_disk(self) -> int:
        """ceil(k / D): the most runs any one disk holds."""
        return -(-self.num_runs // self.num_disks)

    @property
    def run_cylinders(self) -> float:
        """``m``: length of one run in cylinders (may be fractional)."""
        return self.blocks_per_run / self.geometry.blocks_per_cylinder

    def disk_of_run(self, run: int) -> int:
        """The disk storing ``run``."""
        self._check_run(run)
        return run % self.num_disks

    def slot_of_run(self, run: int) -> int:
        """Position of ``run`` among the runs of its disk (0-based)."""
        self._check_run(run)
        return run // self.num_disks

    def runs_on_disk(self, disk: int) -> list[int]:
        """All runs stored on ``disk``, in slot order."""
        if not 0 <= disk < self.num_disks:
            raise ValueError(f"disk {disk} out of range")
        return list(range(disk, self.num_runs, self.num_disks))

    def block_address(self, run: int, block_index: int) -> int:
        """Linear block address (on the run's disk) of a block of a run."""
        self._check_run(run)
        if not 0 <= block_index < self.blocks_per_run:
            raise ValueError(
                f"block {block_index} outside run of {self.blocks_per_run} blocks"
            )
        return self.slot_of_run(run) * self.blocks_per_run + block_index

    def cylinder_of(self, run: int, block_index: int) -> int:
        """Cylinder (on the run's disk) of a block of a run."""
        return self.geometry.cylinder_of(self.block_address(run, block_index))

    def _check_run(self, run: int) -> None:
        if not 0 <= run < self.num_runs:
            raise ValueError(f"run {run} out of range (k={self.num_runs})")
