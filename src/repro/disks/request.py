"""I/O request objects exchanged between the merge CPU and the drives.

One :class:`BlockFetchRequest` covers a *contiguous* range of blocks of
one run.  The drive services the blocks in order and fires one event per
block as it lands in memory, plus a completion event for the whole
request; the unsynchronized CPU waits only on the first (demand) block's
event while synchronized operation waits on the completion events.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class FetchKind(enum.Enum):
    """Why a fetch was issued."""

    DEMAND = "demand"
    PREFETCH = "prefetch"


class BlockFetchRequest:
    """A contiguous multi-block read of one run.

    Attributes:
        run: run identifier.
        first_block: index (within the run) of the first block fetched.
        count: number of contiguous blocks.
        kind: demand fetch or pure prefetch.
        block_events: one event per block, fired as that block arrives;
            ``block_events[i]`` corresponds to run block
            ``first_block + i``.
        completed: fires once every block of the request has arrived.
        issue_time: virtual time the request was queued.
    """

    __slots__ = (
        "run",
        "first_block",
        "count",
        "kind",
        "block_events",
        "completed",
        "issue_time",
        "start_service_time",
        "finish_time",
    )

    def __init__(
        self,
        sim: "Simulator",
        run: int,
        first_block: int,
        count: int,
        kind: FetchKind,
    ) -> None:
        if count < 1:
            raise ValueError("a fetch must cover at least one block")
        if first_block < 0:
            raise ValueError("first_block must be non-negative")
        self.run = run
        self.first_block = first_block
        self.count = count
        self.kind = kind
        # Via the kernel factory: an optimized kernel (repro.sim.fast)
        # supplies fast-trigger events for the per-block hot path.
        self.block_events = [sim.event() for _ in range(count)]
        self.completed = sim.event()
        self.issue_time = sim.now
        self.start_service_time: float | None = None
        self.finish_time: float | None = None

    @property
    def demand_event(self) -> Event:
        """Arrival event of the first block (the demand-fetch block)."""
        return self.block_events[0]

    @property
    def last_block(self) -> int:
        """Index within the run of the final block covered."""
        return self.first_block + self.count - 1

    def __repr__(self) -> str:
        return (
            f"BlockFetchRequest(run={self.run}, blocks="
            f"[{self.first_block}..{self.last_block}], kind={self.kind.value})"
        )
