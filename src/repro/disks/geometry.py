"""Physical disk geometry and block addressing.

The paper's drive (a DEC RA8x-class unit) has 16 heads, 32 sectors per
track and 512-byte sectors -- a 256 KiB cylinder.  To fetch 4096-byte
blocks the authors remodel the same cylinder capacity as 4 heads x 16
sectors x 4096-byte sectors, i.e. **64 blocks per cylinder**.  This
module captures that mapping: a linear block address space per disk,
with ``cylinder_of(block) = block // blocks_per_cylinder``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskGeometry:
    """Geometry of one drive, in block-addressable form.

    Attributes:
        heads: number of read/write heads (surfaces).
        sectors_per_track: sectors on one track.
        cylinders: number of cylinders (tracks per surface).
        bytes_per_sector: sector size in bytes.
        block_bytes: the unit of transfer used by the merge.
    """

    heads: int = 4
    sectors_per_track: int = 16
    cylinders: int = 825
    bytes_per_sector: int = 4096
    block_bytes: int = 4096

    def __post_init__(self) -> None:
        for name in ("heads", "sectors_per_track", "cylinders", "bytes_per_sector"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        cylinder_bytes = self.heads * self.sectors_per_track * self.bytes_per_sector
        if cylinder_bytes % self.block_bytes:
            raise ValueError(
                f"cylinder capacity {cylinder_bytes} B is not a whole number "
                f"of {self.block_bytes} B blocks"
            )

    @property
    def bytes_per_cylinder(self) -> int:
        return self.heads * self.sectors_per_track * self.bytes_per_sector

    @property
    def blocks_per_cylinder(self) -> int:
        return self.bytes_per_cylinder // self.block_bytes

    @property
    def capacity_blocks(self) -> int:
        return self.blocks_per_cylinder * self.cylinders

    @property
    def capacity_bytes(self) -> int:
        return self.bytes_per_cylinder * self.cylinders

    def cylinder_of(self, block_address: int) -> int:
        """Cylinder holding linear ``block_address``."""
        if not 0 <= block_address < self.capacity_blocks:
            raise ValueError(
                f"block address {block_address} outside disk "
                f"(capacity {self.capacity_blocks} blocks)"
            )
        return block_address // self.blocks_per_cylinder

    def seek_distance(self, from_block: int, to_block: int) -> int:
        """Cylinders crossed moving between two block addresses."""
        return abs(self.cylinder_of(to_block) - self.cylinder_of(from_block))


#: Geometry used throughout the paper: 256 KiB cylinders addressed as
#: 64 four-KiB blocks.  (The original sector-level view is 16 heads x
#: 32 sectors x 512 B.)
PAPER_GEOMETRY = DiskGeometry()

#: The same drive described at the sector level, for documentation and
#: equivalence tests.
PAPER_GEOMETRY_SECTOR_VIEW = DiskGeometry(
    heads=16,
    sectors_per_track=32,
    cylinders=825,
    bytes_per_sector=512,
    block_bytes=4096,
)
