"""The disk drive service process.

Each drive runs one simulation process that drains a FIFO request queue.
A request for ``n`` contiguous blocks is charged:

* **seek**: ``|target cylinder - head cylinder| * S`` milliseconds,
* **rotational latency**: one sample from ``Uniform(0, 2R)`` (mean
  ``R``, half a revolution -- the paper's convention), and
* **transfer**: ``n * T`` milliseconds, with one block-arrival event
  fired after each ``T``.

Contiguous blocks inside a single request stream at transfer rate; a new
request always pays seek (possibly over zero cylinders) plus a fresh
rotational latency, exactly as the paper's analytical model assumes
(``R/N`` per block under ``N``-block intra-run prefetching).  The
``stream_across_requests`` flag relaxes this for ablation studies: a
request that starts at the block address immediately following the
previous transfer is charged transfer time only.
"""

from __future__ import annotations

import enum
import random
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.disks.geometry import DiskGeometry
from repro.disks.request import BlockFetchRequest, FetchKind
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.parameters import DiskParameters
    from repro.sim.kernel import Simulator

BusyCallback = Callable[[int, bool], None]


class QueueDiscipline(enum.Enum):
    """Order in which a drive services its pending requests.

    ``FIFO`` is the paper's model (and the default).  ``SSTF``
    (shortest seek time first) picks the pending request whose target
    cylinder is closest to the head -- a scheduling ablation the paper
    does not explore.  Demand requests always preempt prefetches in the
    SSTF ordering so the merge cannot be starved by a stream of nearby
    prefetches.
    """

    FIFO = "fifo"
    SSTF = "sstf"


@dataclass
class DriveStats:
    """Per-drive service-time accounting (all times in milliseconds)."""

    requests: int = 0
    blocks: int = 0
    demand_requests: int = 0
    prefetch_requests: int = 0
    seek_ms: float = 0.0
    rotation_ms: float = 0.0
    transfer_ms: float = 0.0
    busy_ms: float = 0.0
    queue_wait_ms: float = 0.0
    sequential_requests: int = 0
    seek_cylinders: int = 0
    max_queue_length: int = 0
    samples: dict[str, float] = field(default_factory=dict)

    @property
    def service_ms(self) -> float:
        return self.seek_ms + self.rotation_ms + self.transfer_ms

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DriveStats":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    @property
    def mean_seek_cylinders(self) -> float:
        return self.seek_cylinders / self.requests if self.requests else 0.0


class DiskDrive:
    """One independently operating input drive.

    Requests are submitted with :meth:`submit` and serviced first-come
    first-served by an internal process.  Block-arrival and completion
    events on the request object signal progress to the issuer.
    """

    def __init__(
        self,
        sim: "Simulator",
        drive_id: int,
        geometry: DiskGeometry,
        parameters: "DiskParameters",
        rng: random.Random,
        on_busy_change: Optional[BusyCallback] = None,
        stream_across_requests: bool = False,
        address_of: Optional[Callable[[BlockFetchRequest], int]] = None,
        discipline: QueueDiscipline = QueueDiscipline.FIFO,
    ) -> None:
        self.sim = sim
        self.drive_id = drive_id
        self.geometry = geometry
        self.parameters = parameters
        self.rng = rng
        self.stats = DriveStats()
        self.stream_across_requests = stream_across_requests
        self.discipline = discipline
        self._address_of = address_of
        self._pending: list[BlockFetchRequest] = []
        self._wakeup: Optional[Event] = None
        self._on_busy_change = on_busy_change
        self._is_busy = False
        self._head_cylinder = 0
        self._next_sequential_address: Optional[int] = None
        self._process = sim.process(self._service_loop(), name=f"disk-{drive_id}")

    @property
    def process(self):
        """The drive's service process (waitable; carries failures)."""
        return self._process

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    @property
    def head_cylinder(self) -> int:
        return self._head_cylinder

    def submit(self, request: BlockFetchRequest) -> BlockFetchRequest:
        """Queue ``request`` for service; returns it for chaining."""
        self._pending.append(request)
        self.stats.max_queue_length = max(
            self.stats.max_queue_length, len(self._pending)
        )
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request

    # ------------------------------------------------------------------
    # Service process
    # ------------------------------------------------------------------
    def _service_loop(self) -> Generator:
        while True:
            while not self._pending:
                self._set_busy(False)
                self._wakeup = Event(self.sim)
                yield self._wakeup
                self._wakeup = None
            self._set_busy(True)
            request = self._pick_next()
            yield from self._service(request)

    def _pick_next(self) -> BlockFetchRequest:
        """Remove and return the next request per the discipline."""
        if self.discipline is QueueDiscipline.FIFO or len(self._pending) == 1:
            return self._pending.pop(0)
        # SSTF: demand requests first (oldest demand wins), then the
        # prefetch whose cylinder is nearest the head.  A run's blocks
        # must arrive in order, so only the *oldest* pending request of
        # each run is eligible for reordering.
        demand_positions = [
            i for i, r in enumerate(self._pending) if r.kind is FetchKind.DEMAND
        ]
        if demand_positions:
            return self._pending.pop(demand_positions[0])
        seen_runs: set[int] = set()
        eligible: list[int] = []
        for index, request in enumerate(self._pending):
            if request.run not in seen_runs:
                seen_runs.add(request.run)
                eligible.append(index)
        head = self._head_cylinder
        best = min(
            eligible,
            key=lambda i: abs(
                self.geometry.cylinder_of(self._resolve_address(self._pending[i]))
                - head
            ),
        )
        return self._pending.pop(best)

    def _service(self, request: BlockFetchRequest) -> Generator:
        sim = self.sim
        params = self.parameters
        start = sim.now
        request.start_service_time = start
        self.stats.queue_wait_ms += start - request.issue_time

        first_address = self._resolve_address(request)
        target_cylinder = self.geometry.cylinder_of(first_address)

        sequential = (
            self.stream_across_requests
            and self._next_sequential_address is not None
            and first_address == self._next_sequential_address
        )
        if sequential:
            seek_ms = 0.0
            rotation_ms = 0.0
            self.stats.sequential_requests += 1
        else:
            distance = abs(target_cylinder - self._head_cylinder)
            seek_ms = distance * params.seek_ms_per_cylinder
            rotation_ms = self.rng.uniform(0.0, params.rotation_period_ms)
            self.stats.seek_cylinders += distance

        positioning = seek_ms + rotation_ms
        if positioning > 0:
            yield sim.timeout(positioning)

        for offset, block_event in enumerate(request.block_events):
            yield sim.timeout(params.transfer_ms_per_block)
            block_event.succeed((request.run, request.first_block + offset))

        finish = sim.now
        request.finish_time = finish
        request.completed.succeed(request)

        last_address = first_address + request.count - 1
        self._head_cylinder = self.geometry.cylinder_of(last_address)
        self._next_sequential_address = last_address + 1

        stats = self.stats
        stats.requests += 1
        stats.blocks += request.count
        if request.kind is FetchKind.DEMAND:
            stats.demand_requests += 1
        else:
            stats.prefetch_requests += 1
        stats.seek_ms += seek_ms
        stats.rotation_ms += rotation_ms
        stats.transfer_ms += request.count * params.transfer_ms_per_block
        stats.busy_ms += finish - start

    def _resolve_address(self, request: BlockFetchRequest) -> int:
        if self._address_of is None:
            raise RuntimeError(
                "DiskDrive needs an address_of resolver to map requests to "
                "block addresses"
            )
        return self._address_of(request)

    def _set_busy(self, busy: bool) -> None:
        if busy == self._is_busy:
            return
        self._is_busy = busy
        if self._on_busy_change is not None:
            self._on_busy_change(self.drive_id, busy)
