"""The disk drive service process.

Each drive runs one simulation process that drains a FIFO request queue.
A request for ``n`` contiguous blocks is charged:

* **seek**: ``|target cylinder - head cylinder| * S`` milliseconds,
* **rotational latency**: one sample from ``Uniform(0, 2R)`` (mean
  ``R``, half a revolution -- the paper's convention), and
* **transfer**: ``n * T`` milliseconds, with one block-arrival event
  fired after each ``T``.

Contiguous blocks inside a single request stream at transfer rate; a new
request always pays seek (possibly over zero cylinders) plus a fresh
rotational latency, exactly as the paper's analytical model assumes
(``R/N`` per block under ``N``-block intra-run prefetching).  The
``stream_across_requests`` flag relaxes this for ablation studies: a
request that starts at the block address immediately following the
previous transfer is charged transfer time only.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import asdict, dataclass, field, fields
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.disks.geometry import DiskGeometry
from repro.disks.request import BlockFetchRequest, FetchKind
from repro.obs.events import EventKind
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.parameters import DiskParameters
    from repro.faults.injector import FaultInjector
    from repro.obs.collector import TrialTrace
    from repro.sim.kernel import Simulator

BusyCallback = Callable[[int, bool], None]


class QueueDiscipline(enum.Enum):
    """Order in which a drive services its pending requests.

    ``FIFO`` is the paper's model (and the default).  ``SSTF``
    (shortest seek time first) picks the pending request whose target
    cylinder is closest to the head -- a scheduling ablation the paper
    does not explore.  Demand requests always preempt prefetches in the
    SSTF ordering so the merge cannot be starved by a stream of nearby
    prefetches.
    """

    FIFO = "fifo"
    SSTF = "sstf"


@dataclass
class DriveStats:
    """Per-drive service-time accounting (all times in milliseconds).

    The fault counters stay zero unless a
    :class:`~repro.faults.injector.FaultInjector` is installed:
    ``faults`` counts failed service attempts, ``retries`` the backoff
    waits taken, ``retry_histogram`` maps attempts-needed-to-succeed
    (as a string key, for JSON) to request counts, and ``fault_ms``
    attributes the time lost to faults -- failed attempts, backoff,
    slowdown excess over healthy timing, and outage waits.
    """

    requests: int = 0
    blocks: int = 0
    demand_requests: int = 0
    prefetch_requests: int = 0
    seek_ms: float = 0.0
    rotation_ms: float = 0.0
    transfer_ms: float = 0.0
    busy_ms: float = 0.0
    queue_wait_ms: float = 0.0
    sequential_requests: int = 0
    seek_cylinders: int = 0
    max_queue_length: int = 0
    faults: int = 0
    retries: int = 0
    retry_backoff_ms: float = 0.0
    fault_ms: float = 0.0
    outage_wait_ms: float = 0.0
    requeues: int = 0
    retry_histogram: dict[str, int] = field(default_factory=dict)
    samples: dict[str, float] = field(default_factory=dict)

    @property
    def service_ms(self) -> float:
        return self.seek_ms + self.rotation_ms + self.transfer_ms

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DriveStats":
        """Inverse of :meth:`to_dict`.

        Unknown keys are ignored and missing keys take their field
        defaults, so snapshots written by other schema versions (older
        or newer) always load.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def mean_seek_cylinders(self) -> float:
        return self.seek_cylinders / self.requests if self.requests else 0.0


class DiskDrive:
    """One independently operating input drive.

    Requests are submitted with :meth:`submit` and serviced first-come
    first-served by an internal process.  Block-arrival and completion
    events on the request object signal progress to the issuer.
    """

    def __init__(
        self,
        sim: "Simulator",
        drive_id: int,
        geometry: DiskGeometry,
        parameters: "DiskParameters",
        rng: random.Random,
        on_busy_change: Optional[BusyCallback] = None,
        stream_across_requests: bool = False,
        address_of: Optional[Callable[[BlockFetchRequest], int]] = None,
        discipline: QueueDiscipline = QueueDiscipline.FIFO,
        injector: Optional["FaultInjector"] = None,
        trace: Optional["TrialTrace"] = None,
        track: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.drive_id = drive_id
        self.geometry = geometry
        self.parameters = parameters
        self.rng = rng
        self.trace = trace
        self.track = track if track is not None else f"disk-{drive_id}"
        self.stats = DriveStats()
        self.stream_across_requests = stream_across_requests
        self.discipline = discipline
        self.injector = injector
        self._address_of = address_of
        self._pending: list[BlockFetchRequest] = []
        self._wakeup: Optional[Event] = None
        self._on_busy_change = on_busy_change
        self._is_busy = False
        self._head_cylinder = 0
        self._next_sequential_address: Optional[int] = None
        self._process = sim.process(self._service_loop(), name=f"disk-{drive_id}")

    @property
    def process(self):
        """The drive's service process (waitable; carries failures)."""
        return self._process

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    @property
    def head_cylinder(self) -> int:
        return self._head_cylinder

    def submit(self, request: BlockFetchRequest) -> BlockFetchRequest:
        """Queue ``request`` for service; returns it for chaining."""
        self._pending.append(request)
        self.stats.max_queue_length = max(
            self.stats.max_queue_length, len(self._pending)
        )
        if self.trace is not None:
            self.trace.observe_queue_depth(self.track, len(self._pending))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request

    def escalate(self, request: BlockFetchRequest) -> bool:
        """Re-queue a still-pending request at the head of the queue.

        The demand-read-timeout response: a demand request that has
        waited too long jumps every queued prefetch on the same drive.
        Returns False (and does nothing) when the request is already in
        service or finished.
        """
        try:
            self._pending.remove(request)
        except ValueError:
            return False
        self._pending.insert(0, request)
        self.stats.requeues += 1
        return True

    # ------------------------------------------------------------------
    # Service process
    # ------------------------------------------------------------------
    def _service_loop(self) -> Generator:
        while True:
            while not self._pending:
                self._set_busy(False)
                self._wakeup = self.sim.event()
                yield self._wakeup
                self._wakeup = None
            self._set_busy(True)
            request = self._pick_next()
            yield from self._service(request)

    def _pick_next(self) -> BlockFetchRequest:
        """Remove and return the next request per the discipline."""
        if self.discipline is QueueDiscipline.FIFO or len(self._pending) == 1:
            return self._pending.pop(0)
        # SSTF: demand requests first (oldest demand wins), then the
        # prefetch whose cylinder is nearest the head.  A run's blocks
        # must arrive in order, so only the *oldest* pending request of
        # each run is eligible for reordering.
        demand_positions = [
            i for i, r in enumerate(self._pending) if r.kind is FetchKind.DEMAND
        ]
        if demand_positions:
            return self._pending.pop(demand_positions[0])
        seen_runs: set[int] = set()
        eligible: list[int] = []
        for index, request in enumerate(self._pending):
            if request.run not in seen_runs:
                seen_runs.add(request.run)
                eligible.append(index)
        head = self._head_cylinder
        best = min(
            eligible,
            key=lambda i: abs(
                self.geometry.cylinder_of(self._resolve_address(self._pending[i]))
                - head
            ),
        )
        return self._pending.pop(best)

    def _service(self, request: BlockFetchRequest) -> Generator:
        sim = self.sim
        params = self.parameters
        injector = self.injector
        stats = self.stats
        trace = self.trace
        start = sim.now
        request.start_service_time = start
        stats.queue_wait_ms += start - request.issue_time

        first_address = self._resolve_address(request)
        target_cylinder = self.geometry.cylinder_of(first_address)
        last_address = first_address + request.count - 1

        sequential = (
            self.stream_across_requests
            and self._next_sequential_address is not None
            and first_address == self._next_sequential_address
        )

        # Each loop iteration is one service *attempt*.  Without an
        # injector (or with an empty plan) the first attempt always
        # succeeds and this reduces exactly to the paper's model.
        attempt = 0
        while True:
            attempt += 1
            if injector is not None:
                yield from self._wait_out_outage(request)

            if sequential and attempt == 1:
                seek_ms = 0.0
                rotation_ms = 0.0
                stats.sequential_requests += 1
            else:
                distance = abs(target_cylinder - self._head_cylinder)
                seek_ms = distance * params.seek_ms_per_cylinder
                rotation_ms = self.rng.uniform(0.0, params.rotation_period_ms)
                stats.seek_cylinders += distance

            factor = (
                injector.slowdown_factor(self.drive_id, sim.now)
                if injector is not None
                else 1.0
            )
            seek_cost = seek_ms * factor
            rotation_cost = rotation_ms * factor
            positioning = seek_cost + rotation_cost
            if positioning > 0:
                if trace is not None:
                    position_start = sim.now
                    if seek_cost > 0:
                        trace.span(
                            EventKind.SEEK,
                            self.track,
                            position_start,
                            position_start + seek_cost,
                        )
                    if rotation_cost > 0:
                        trace.span(
                            EventKind.ROTATION,
                            self.track,
                            position_start + seek_cost,
                            position_start + positioning,
                        )
                yield sim.timeout(positioning)
            stats.seek_ms += seek_cost
            stats.rotation_ms += rotation_cost

            transfer_cost = params.transfer_ms_per_block * factor
            failed = (
                injector.attempt_fails(self.drive_id, sim.now)
                if injector is not None
                else False
            )
            if not failed:
                transfer_start = sim.now if trace is not None else 0.0
                for offset, block_event in enumerate(request.block_events):
                    yield sim.timeout(transfer_cost)
                    block_event.succeed(
                        (request.run, request.first_block + offset)
                    )
                if trace is not None:
                    trace.span(
                        EventKind.TRANSFER,
                        self.track,
                        transfer_start,
                        sim.now,
                        {"blocks": request.count},
                    )
                stats.transfer_ms += request.count * transfer_cost
                stats.fault_ms += (factor - 1.0) * (
                    seek_ms
                    + rotation_ms
                    + request.count * params.transfer_ms_per_block
                )
                if attempt > 1:
                    key = str(attempt)
                    stats.retry_histogram[key] = (
                        stats.retry_histogram.get(key, 0) + 1
                    )
                break

            # Transient read error: the transfer is attempted in full
            # and discarded, then the drive backs off and retries (the
            # head ends past the target, so the retry reseeks from
            # there and pays a fresh rotational latency).
            failed_start = sim.now if trace is not None else 0.0
            yield sim.timeout(request.count * transfer_cost)
            if trace is not None:
                trace.span(
                    EventKind.TRANSFER,
                    self.track,
                    failed_start,
                    sim.now,
                    {"blocks": request.count, "failed": True},
                )
                trace.instant(
                    EventKind.FAULT, self.track, sim.now, {"attempt": attempt}
                )
            stats.transfer_ms += request.count * transfer_cost
            stats.faults += 1
            stats.fault_ms += positioning + request.count * transfer_cost
            self._head_cylinder = self.geometry.cylinder_of(last_address)
            injector.record_fault(self.drive_id, sim.now)
            if attempt >= injector.retry.max_attempts:
                self._abandon_request(request, attempt)
            delay = injector.retry.delay_ms(attempt, injector.rng)
            stats.retries += 1
            stats.retry_backoff_ms += delay
            stats.fault_ms += delay
            if delay > 0:
                if trace is not None:
                    trace.span(
                        EventKind.RETRY_BACKOFF,
                        self.track,
                        sim.now,
                        sim.now + delay,
                        {"attempt": attempt},
                    )
                yield sim.timeout(delay)

        finish = sim.now
        request.finish_time = finish
        request.completed.succeed(request)

        self._head_cylinder = self.geometry.cylinder_of(last_address)
        self._next_sequential_address = last_address + 1

        stats.requests += 1
        stats.blocks += request.count
        if request.kind is FetchKind.DEMAND:
            stats.demand_requests += 1
        else:
            stats.prefetch_requests += 1
        stats.busy_ms += finish - start
        if trace is not None:
            kind = (
                EventKind.DEMAND_FETCH
                if request.kind is FetchKind.DEMAND
                else EventKind.PREFETCH
            )
            # One span per whole request service, start to completion
            # (retries and backoff included): service on a drive is
            # sequential, so per-track sums of these spans equal
            # ``stats.busy_ms`` exactly.
            trace.span(
                kind,
                self.track,
                start,
                finish,
                {
                    "run": request.run,
                    "first_block": request.first_block,
                    "blocks": request.count,
                    "attempts": attempt,
                },
            )
            trace.observe_service(
                self.track, kind.value, finish - start,
                start - request.issue_time,
            )

    def _wait_out_outage(self, request: BlockFetchRequest) -> Generator:
        """Sleep through any outage covering the current time."""
        injector = self.injector
        until = injector.outage_until(self.drive_id, self.sim.now)
        while until is not None:
            if until == math.inf:
                from repro.faults.injector import DriveOfflineError

                self._fail_request(
                    request,
                    DriveOfflineError(
                        f"drive {self.drive_id} is permanently offline; "
                        f"{request!r} can never be serviced"
                    ),
                )
            wait = until - self.sim.now
            self.stats.outage_wait_ms += wait
            self.stats.fault_ms += wait
            if self.trace is not None:
                self.trace.span(
                    EventKind.OUTAGE_WAIT, self.track, self.sim.now, until
                )
            yield self.sim.timeout(wait)
            until = injector.outage_until(self.drive_id, self.sim.now)

    def _abandon_request(self, request: BlockFetchRequest, attempts: int) -> None:
        """Give up on a request that exhausted its retry budget."""
        from repro.faults.injector import FaultExhaustedError

        histogram = self.stats.retry_histogram
        histogram["exhausted"] = histogram.get("exhausted", 0) + 1
        self._fail_request(
            request,
            FaultExhaustedError(
                f"drive {self.drive_id}: {request!r} failed all "
                f"{attempts} attempt(s) of its retry budget"
            ),
        )

    def _fail_request(
        self, request: BlockFetchRequest, error: Exception
    ) -> None:
        """Fail the request's events and crash the service process.

        Waiters (the merge CPU, synchronized ``AllOf``s) see the error
        thrown into them; :meth:`repro.core.merge_sim.MergeTrial.run`
        also surfaces it via the drive process when nobody waits.
        """
        for event in request.block_events:
            if not event.triggered:
                event.fail(error)
        if not request.completed.triggered:
            request.completed.fail(error)
        raise error

    def _resolve_address(self, request: BlockFetchRequest) -> int:
        if self._address_of is None:
            raise RuntimeError(
                "DiskDrive needs an address_of resolver to map requests to "
                "block addresses"
            )
        return self._address_of(request)

    def _set_busy(self, busy: bool) -> None:
        if busy == self._is_busy:
            return
        self._is_busy = busy
        if self._on_busy_change is not None:
            self._on_busy_change(self.drive_id, busy)
