"""Record-key generators for exercising the real mergesort.

Each generator returns a list of integer keys with a distinct
distribution, used by the examples and by the depletion-model
validation experiment (different key distributions change how block
depletions interleave across runs during a real merge).
"""

from __future__ import annotations

import random


def uniform_keys(count: int, seed: int, key_range: int = 1 << 30) -> list[int]:
    """Independent uniform keys: the paper's implicit workload."""
    rng = random.Random(seed)
    return [rng.randrange(key_range) for _ in range(count)]


def gaussian_keys(
    count: int,
    seed: int,
    mean: float = 0.0,
    stddev: float = 1_000_000.0,
) -> list[int]:
    """Normally distributed keys (heavy central collisions)."""
    rng = random.Random(seed)
    return [int(rng.gauss(mean, stddev)) for _ in range(count)]


def sorted_keys(count: int) -> list[int]:
    """Already sorted: replacement selection yields one giant run."""
    return list(range(count))


def reverse_sorted_keys(count: int) -> list[int]:
    """Worst case for replacement selection: memory-sized runs."""
    return list(range(count, 0, -1))


def nearly_sorted_keys(
    count: int,
    seed: int,
    displacement: int = 16,
) -> list[int]:
    """Sorted keys with bounded random displacement.

    Each key is perturbed by at most ``displacement`` positions worth
    of key space -- models timestamped data arriving slightly out of
    order.
    """
    rng = random.Random(seed)
    return [i + rng.randint(-displacement, displacement) for i in range(count)]


def zipf_keys(
    count: int,
    seed: int,
    alpha: float = 1.2,
    universe: int = 1000,
) -> list[int]:
    """Zipf-skewed keys: many duplicates, stressing tie handling."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if universe < 1:
        raise ValueError("universe must be >= 1")
    rng = random.Random(seed)
    weights = [1.0 / (rank**alpha) for rank in range(1, universe + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    keys = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        keys.append(lo)
    return keys
