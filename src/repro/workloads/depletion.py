"""The random block-depletion process, standalone.

The Kwan-Baer model: at every step, one of the runs that still has
unmerged blocks is chosen uniformly at random and its leading block is
depleted.  The merge simulator implements this internally; this module
provides the same process as an inspectable sequence -- for statistical
tests of the model itself (inter-arrival distributions, seek-distance
frequencies) and to drive the simulator through its external
depletion-source interface.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence


def random_depletion_sequence(
    num_runs: int,
    blocks_per_run: int,
    seed: int,
) -> Iterator[int]:
    """Yield the run depleted at each step, until all blocks are gone."""
    if num_runs < 1 or blocks_per_run < 1:
        raise ValueError("num_runs and blocks_per_run must be >= 1")
    rng = random.Random(seed)
    remaining = [blocks_per_run] * num_runs
    alive = list(range(num_runs))
    while alive:
        position = rng.randrange(len(alive))
        run = alive[position]
        remaining[run] -= 1
        if remaining[run] == 0:
            alive.pop(position)
        yield run


def skewed_depletion_sequence(
    num_runs: int,
    blocks_per_run: int,
    seed: int,
    alpha: float = 1.0,
) -> Iterator[int]:
    """A Zipf-skewed variant of the depletion process.

    Run ``r`` (0-based) is chosen with probability proportional to
    ``1 / (r + 1)^alpha`` among alive runs -- modelling a merge whose
    runs contribute unevenly (e.g. runs drawn from different-sized key
    ranges).  ``alpha = 0`` recovers the uniform Kwan-Baer model.
    Skewed runs deplete and *finish* at very different times, so the
    late merge phase has few alive runs; used by ``ext-skewed-depletion``
    to probe the strategies' robustness to the uniformity assumption.
    """
    if num_runs < 1 or blocks_per_run < 1:
        raise ValueError("num_runs and blocks_per_run must be >= 1")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    rng = random.Random(seed)
    remaining = [blocks_per_run] * num_runs
    alive = list(range(num_runs))
    weights = [1.0 / ((run + 1) ** alpha) for run in range(num_runs)]
    while alive:
        total = sum(weights[run] for run in alive)
        pick = rng.random() * total
        accumulated = 0.0
        chosen_index = len(alive) - 1
        for position, run in enumerate(alive):
            accumulated += weights[run]
            if pick < accumulated:
                chosen_index = position
                break
        run = alive[chosen_index]
        remaining[run] -= 1
        if remaining[run] == 0:
            alive.pop(chosen_index)
        yield run


@dataclass(frozen=True)
class DepletionTrace:
    """A materialized depletion sequence with analysis helpers."""

    sequence: tuple[int, ...]
    num_runs: int

    @classmethod
    def random(
        cls, num_runs: int, blocks_per_run: int, seed: int
    ) -> "DepletionTrace":
        return cls(
            sequence=tuple(
                random_depletion_sequence(num_runs, blocks_per_run, seed)
            ),
            num_runs=num_runs,
        )

    @classmethod
    def from_sequence(cls, sequence: Sequence[int], num_runs: int) -> "DepletionTrace":
        if any(not 0 <= run < num_runs for run in sequence):
            raise ValueError("trace references a run outside [0, num_runs)")
        return cls(sequence=tuple(sequence), num_runs=num_runs)

    def __len__(self) -> int:
        return len(self.sequence)

    def __iter__(self) -> Iterator[int]:
        return iter(self.sequence)

    def counts(self) -> list[int]:
        """Blocks depleted per run."""
        totals = [0] * self.num_runs
        for run in self.sequence:
            totals[run] += 1
        return totals

    def move_distances(self) -> list[int]:
        """|run_t - run_{t-1}| per step: the seek-model's move counts.

        Under the random model these follow
        :class:`repro.analysis.seek_model.SeekDistanceModel` while all
        runs are alive.
        """
        return [
            abs(self.sequence[i] - self.sequence[i - 1])
            for i in range(1, len(self.sequence))
        ]

    def interleave_factor(self) -> float:
        """Fraction of steps that switch runs (1 - repeat rate).

        Random depletion over ``k`` alive runs switches with probability
        ``(k-1)/k``; a real merge of uncorrelated runs behaves
        similarly, which is why the random model predicts it well.
        """
        if len(self.sequence) < 2:
            return 0.0
        switches = sum(
            1
            for i in range(1, len(self.sequence))
            if self.sequence[i] != self.sequence[i - 1]
        )
        return switches / (len(self.sequence) - 1)


def trace_statistics(trace: DepletionTrace) -> dict[str, float]:
    """Summary statistics used by the model-validation experiment."""
    moves = trace.move_distances()
    mean_move = sum(moves) / len(moves) if moves else 0.0
    return {
        "length": float(len(trace)),
        "mean_move_distance": mean_move,
        "interleave_factor": trace.interleave_factor(),
    }
