"""Workload generation: depletion sequences and record data.

* :mod:`repro.workloads.depletion` -- the Kwan-Baer random
  block-depletion process as a standalone, analyzable sequence.
* :mod:`repro.workloads.generators` -- record-key distributions
  (uniform, Gaussian, nearly-sorted, reverse, Zipf) for exercising the
  real mergesort.
"""

from repro.workloads.depletion import (
    DepletionTrace,
    random_depletion_sequence,
    skewed_depletion_sequence,
    trace_statistics,
)
from repro.workloads.generators import (
    gaussian_keys,
    nearly_sorted_keys,
    reverse_sorted_keys,
    sorted_keys,
    uniform_keys,
    zipf_keys,
)

__all__ = [
    "DepletionTrace",
    "gaussian_keys",
    "nearly_sorted_keys",
    "random_depletion_sequence",
    "reverse_sorted_keys",
    "skewed_depletion_sequence",
    "sorted_keys",
    "trace_statistics",
    "uniform_keys",
    "zipf_keys",
]
