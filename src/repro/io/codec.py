"""Fixed-width binary record encoding.

The paper's configuration packs 64 records into each 4096-byte block,
i.e. 64 bytes per record.  The codec lays a record out as:

* bytes 0-7:   sort key, signed 64-bit big-endian (big-endian so that
  raw ``memcmp`` order equals key order for non-negative keys);
* bytes 8-15:  tag, unsigned 64-bit big-endian (creation sequence
  number -- the tie-breaker that makes sorts verifiable);
* bytes 16+:   payload, zero-padded.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.mergesort.records import RECORD_BYTES, Record

_HEADER = struct.Struct(">qQ")  # key, tag


@dataclass(frozen=True)
class RecordCodec:
    """Encodes/decodes :class:`Record` to fixed-width binary."""

    record_bytes: int = RECORD_BYTES

    def __post_init__(self) -> None:
        if self.record_bytes < _HEADER.size:
            raise ValueError(
                f"records need at least {_HEADER.size} bytes for key+tag"
            )

    @property
    def payload_bytes(self) -> int:
        return self.record_bytes - _HEADER.size

    def encode(self, record: Record) -> bytes:
        """Serialize ``record`` to exactly ``record_bytes`` bytes."""
        header = _HEADER.pack(record.key, record.tag)
        return header + b"\x00" * self.payload_bytes

    def decode(self, data: bytes) -> Record:
        """Deserialize one record; rejects wrong-length input."""
        if len(data) != self.record_bytes:
            raise ValueError(
                f"expected {self.record_bytes} bytes, got {len(data)}"
            )
        key, tag = _HEADER.unpack_from(data)
        return Record(key=key, tag=tag)

    def encode_many(self, records) -> bytes:
        """Concatenate the encodings of ``records``."""
        return b"".join(self.encode(record) for record in records)

    def decode_many(self, data: bytes) -> list[Record]:
        """Decode a buffer holding a whole number of records."""
        if len(data) % self.record_bytes:
            raise ValueError(
                f"buffer of {len(data)} bytes is not a whole number of "
                f"{self.record_bytes}-byte records"
            )
        return [
            self.decode(data[offset : offset + self.record_bytes])
            for offset in range(0, len(data), self.record_bytes)
        ]
