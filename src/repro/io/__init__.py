"""File-backed sorting: the on-disk realization of the mergesort.

Where :mod:`repro.mergesort` works on in-memory record lists (ideal for
model validation), this package sorts *files*: fixed-size binary
records packed 64-to-a-4096-byte-block exactly as in the paper's
configuration, spilled as temporary run files across a set of
directories (one per "disk"), and merged with bounded memory.

* :mod:`repro.io.codec` -- fixed-width binary record encoding.
* :mod:`repro.io.blockio` -- block-granular readers and writers with
  per-block accounting (the unit the paper's I/O model charges).
* :mod:`repro.io.filesort` -- the end-to-end bounded-memory file sort.
"""

from repro.io.blockio import BlockReader, BlockWriter
from repro.io.codec import RecordCodec
from repro.io.filesort import (
    FileSorter,
    FileSortStats,
    merge_files,
    verify_sorted_file,
    write_random_input,
)

__all__ = [
    "BlockReader",
    "BlockWriter",
    "FileSorter",
    "FileSortStats",
    "RecordCodec",
    "merge_files",
    "verify_sorted_file",
    "write_random_input",
]
