"""Bounded-memory external sorting of files.

The end-to-end pipeline the paper's system implements:

1. **Run formation**: read the input file one memory-load at a time,
   sort each load in memory, and spill it as a temporary run file --
   round-robin across the configured directories (one directory per
   physical disk, mirroring the paper's run placement).
2. **Merge**: open every run with a block reader, k-way merge through a
   loser tree, and stream the output file; per-run block-exhaustion
   events are recorded as the *depletion trace*, directly comparable to
   the random-depletion model the paper simulates.

At no point do more than ``memory_records`` records (plus one block per
open run during the merge) live in memory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.io.blockio import BLOCK_BYTES, BlockReader, BlockWriter
from repro.io.codec import RecordCodec
from repro.mergesort.records import Record
from repro.mergesort.tournament import LoserTree


@dataclass
class FileSortStats:
    """What one file sort did.

    ``runs``/``run_blocks``/``depletion_trace`` describe the *final*
    merge pass; ``merge_passes`` counts all rounds (1 unless a fan-in
    limit forced intermediate passes).
    """

    records: int
    runs: int
    run_blocks: list[int]
    output_blocks: int
    depletion_trace: list[int] = field(repr=False)
    bytes_read: int = 0
    bytes_written: int = 0
    initial_runs: int = 0
    merge_passes: int = 1

    @property
    def total_run_blocks(self) -> int:
        return sum(self.run_blocks)


class FileSorter:
    """Sorts binary record files with bounded memory.

    Attributes:
        memory_records: records held in memory during run formation.
        temp_dirs: spill directories, used round-robin (model one per
            disk); created if missing.
        codec: record encoding (64-byte records by default).
        block_bytes: I/O unit (4096 by default).
    """

    def __init__(
        self,
        memory_records: int,
        temp_dirs: Sequence[Path],
        codec: Optional[RecordCodec] = None,
        block_bytes: int = BLOCK_BYTES,
        max_fan_in: Optional[int] = None,
    ) -> None:
        if memory_records < 1:
            raise ValueError("memory must hold at least one record")
        if not temp_dirs:
            raise ValueError("need at least one spill directory")
        if max_fan_in is not None and max_fan_in < 2:
            raise ValueError("max_fan_in must be >= 2")
        self.memory_records = memory_records
        self.temp_dirs = [Path(d) for d in temp_dirs]
        self.codec = codec or RecordCodec()
        self.block_bytes = block_bytes
        self.max_fan_in = max_fan_in

    def sort_file(self, input_path: Path, output_path: Path) -> FileSortStats:
        """Sort ``input_path`` into ``output_path``; returns statistics."""
        input_path, output_path = Path(input_path), Path(output_path)
        run_paths = self._form_runs(input_path)
        initial_runs = len(run_paths)
        passes = 1
        try:
            while self.max_fan_in is not None and len(run_paths) > self.max_fan_in:
                run_paths = self._intermediate_pass(run_paths, passes)
                passes += 1
            stats = self._merge_runs(run_paths, output_path)
        finally:
            for path in run_paths:
                path.unlink(missing_ok=True)
        stats.initial_runs = initial_runs
        stats.merge_passes = passes
        return stats

    def _intermediate_pass(
        self, run_paths: list[Path], pass_index: int
    ) -> list[Path]:
        """Merge groups of ``max_fan_in`` runs into longer run files."""
        assert self.max_fan_in is not None
        merged: list[Path] = []
        for group_index in range(0, len(run_paths), self.max_fan_in):
            group = run_paths[group_index : group_index + self.max_fan_in]
            if len(group) == 1:
                merged.append(group[0])
                continue
            directory = self.temp_dirs[len(merged) % len(self.temp_dirs)]
            directory.mkdir(parents=True, exist_ok=True)
            target = directory / f"pass{pass_index:02d}-run{len(merged):05d}.blk"
            readers = [
                BlockReader(path, self.codec, self.block_bytes) for path in group
            ]
            with BlockWriter(target, self.codec, self.block_bytes) as writer:
                for record in LoserTree(readers):
                    writer.write(record)
            for path in group:
                path.unlink(missing_ok=True)
            merged.append(target)
        return merged

    # ------------------------------------------------------------------
    # Phase 1: run formation
    # ------------------------------------------------------------------
    def _form_runs(self, input_path: Path) -> list[Path]:
        reader = BlockReader(input_path, self.codec, self.block_bytes)
        if reader.record_count == 0:
            # An empty (but well-formed) input sorts to an empty output:
            # zero runs, and the merge phase writes a valid header-only
            # output file.
            return []
        run_paths: list[Path] = []
        load: list[Record] = []
        for record in reader:
            load.append(record)
            if len(load) == self.memory_records:
                run_paths.append(self._spill(load, len(run_paths)))
                load = []
        if load:
            run_paths.append(self._spill(load, len(run_paths)))
        return run_paths

    def _spill(self, load: list[Record], run_index: int) -> Path:
        directory = self.temp_dirs[run_index % len(self.temp_dirs)]
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"run-{run_index:05d}.blk"
        load.sort()
        with BlockWriter(path, self.codec, self.block_bytes) as writer:
            writer.write_many(load)
        return path

    # ------------------------------------------------------------------
    # Phase 2: merge
    # ------------------------------------------------------------------
    def _merge_runs(
        self, run_paths: Iterable[Path], output_path: Path
    ) -> FileSortStats:
        trace: list[int] = []
        readers: list[BlockReader] = []
        for index, path in enumerate(run_paths):
            readers.append(
                BlockReader(
                    path,
                    self.codec,
                    self.block_bytes,
                    on_block_exhausted=lambda i=index: trace.append(i),
                )
            )
        if not readers:
            # No runs (empty input): still emit a valid, loadable output
            # file whose header records zero records.
            with BlockWriter(output_path, self.codec, self.block_bytes):
                pass
            return FileSortStats(
                records=0,
                runs=0,
                run_blocks=[],
                output_blocks=0,
                depletion_trace=trace,
                bytes_read=0,
                bytes_written=self.block_bytes,
            )
        tree = LoserTree(readers)
        records = 0
        with BlockWriter(output_path, self.codec, self.block_bytes) as writer:
            for record in tree:
                writer.write(record)
                records += 1
            output_blocks = writer.blocks_written
        run_blocks = [reader.num_blocks for reader in readers]
        return FileSortStats(
            records=records,
            runs=len(readers),
            run_blocks=run_blocks,
            output_blocks=output_blocks,
            depletion_trace=trace,
            bytes_read=sum((b + 1) * self.block_bytes for b in run_blocks),
            bytes_written=(output_blocks + 1) * self.block_bytes,
        )


def merge_files(
    inputs: Sequence[Path],
    output_path: Path,
    codec: Optional[RecordCodec] = None,
    block_bytes: int = BLOCK_BYTES,
) -> FileSortStats:
    """Merge already-sorted run files into one sorted file.

    Each input must be individually sorted (checked lazily by the merge
    itself only for adjacent records it compares; use
    :func:`verify_sorted_file` for a full check).  Returns the same
    statistics a :class:`FileSorter` merge pass produces, including the
    depletion trace.
    """
    if not inputs:
        raise ValueError("need at least one input file")
    codec = codec or RecordCodec()
    trace: list[int] = []
    readers = []
    for index, path in enumerate(inputs):
        readers.append(
            BlockReader(
                Path(path),
                codec,
                block_bytes,
                on_block_exhausted=lambda i=index: trace.append(i),
            )
        )
    records = 0
    with BlockWriter(Path(output_path), codec, block_bytes) as writer:
        for record in LoserTree(readers):
            writer.write(record)
            records += 1
        output_blocks = writer.blocks_written
    run_blocks = [reader.num_blocks for reader in readers]
    return FileSortStats(
        records=records,
        runs=len(readers),
        run_blocks=run_blocks,
        output_blocks=output_blocks,
        depletion_trace=trace,
        bytes_read=sum((b + 1) * block_bytes for b in run_blocks),
        bytes_written=(output_blocks + 1) * block_bytes,
        initial_runs=len(readers),
        merge_passes=1,
    )


def write_random_input(
    path: Path,
    records: int,
    seed: int,
    codec: Optional[RecordCodec] = None,
    key_range: int = 1 << 40,
) -> None:
    """Generate a binary input file of ``records`` uniform-key records."""
    import random

    rng = random.Random(seed)
    with BlockWriter(Path(path), codec or RecordCodec()) as writer:
        for tag in range(records):
            writer.write(Record(key=rng.randrange(key_range), tag=tag))


def verify_sorted_file(path: Path, codec: Optional[RecordCodec] = None) -> int:
    """Check ``path`` is sorted; returns the record count."""
    reader = BlockReader(Path(path), codec or RecordCodec())
    previous = None
    count = 0
    for record in reader:
        if previous is not None and record < previous:
            raise AssertionError(f"{path} unsorted at record {count}")
        previous = record
        count += 1
    return count
