"""Block-granular file readers and writers.

All file traffic happens in whole blocks (4096 bytes by default) --
the transfer unit the paper's disk model charges.  The final block of a
file may be partial at the record level; it is padded to a whole block
on disk and the true record count is carried in the reader via the file
length of valid records, tracked in a 1-block header.

Layout of a run file::

    block 0:      header -- record count, record size (rest zero)
    blocks 1..n:  records, ``records_per_block`` each, last one padded
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.io.codec import RecordCodec
from repro.mergesort.records import Record

BLOCK_BYTES = 4096

_HEADER = struct.Struct(">QI")  # record count, record bytes
_MAGIC_OFFSET = _HEADER.size


class BlockWriter:
    """Writes records to a run file block by block."""

    def __init__(
        self,
        path: Path,
        codec: Optional[RecordCodec] = None,
        block_bytes: int = BLOCK_BYTES,
    ) -> None:
        self.codec = codec or RecordCodec()
        if block_bytes % self.codec.record_bytes:
            raise ValueError(
                f"block of {block_bytes} bytes is not a whole number of "
                f"{self.codec.record_bytes}-byte records"
            )
        self.path = Path(path)
        self.block_bytes = block_bytes
        self.records_per_block = block_bytes // self.codec.record_bytes
        self._handle = open(self.path, "wb")
        self._buffer = bytearray()
        self._records_written = 0
        self._blocks_written = 0
        self._closed = False
        # Header placeholder; rewritten on close.
        self._handle.write(b"\x00" * self.block_bytes)

    def write(self, record: Record) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer += self.codec.encode(record)
        self._records_written += 1
        if len(self._buffer) == self.block_bytes:
            self._flush_block()

    def write_many(self, records) -> None:
        for record in records:
            self.write(record)

    def _flush_block(self) -> None:
        if not self._buffer:
            return
        padding = self.block_bytes - len(self._buffer)
        self._handle.write(bytes(self._buffer) + b"\x00" * padding)
        self._blocks_written += 1
        self._buffer.clear()

    @property
    def records_written(self) -> int:
        return self._records_written

    @property
    def blocks_written(self) -> int:
        """Data blocks flushed so far (excludes the header block)."""
        return self._blocks_written

    def close(self) -> None:
        if self._closed:
            return
        self._flush_block()
        self._handle.seek(0)
        header = _HEADER.pack(self._records_written, self.codec.record_bytes)
        self._handle.write(header + b"\x00" * (self.block_bytes - len(header)))
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BlockReader:
    """Iterates the records of a run file, block by block.

    ``on_block_exhausted()`` (if given) fires each time the reader
    crosses a block boundary -- the depletion signal for trace capture.
    """

    def __init__(
        self,
        path: Path,
        codec: Optional[RecordCodec] = None,
        block_bytes: int = BLOCK_BYTES,
        on_block_exhausted: Optional[Callable[[], None]] = None,
    ) -> None:
        self.codec = codec or RecordCodec()
        self.path = Path(path)
        self.block_bytes = block_bytes
        self.records_per_block = block_bytes // self.codec.record_bytes
        self._on_block_exhausted = on_block_exhausted
        with open(self.path, "rb") as handle:
            header = handle.read(block_bytes)
        if len(header) < _HEADER.size:
            raise ValueError(f"{path} is not a run file (truncated header)")
        self.record_count, record_bytes = _HEADER.unpack_from(header)
        if record_bytes != self.codec.record_bytes:
            raise ValueError(
                f"{path} holds {record_bytes}-byte records, codec expects "
                f"{self.codec.record_bytes}"
            )
        self.blocks_read = 0

    @property
    def num_blocks(self) -> int:
        """Data blocks in the file."""
        return -(-self.record_count // self.records_per_block)

    def __iter__(self) -> Iterator[Record]:
        remaining = self.record_count
        with open(self.path, "rb") as handle:
            handle.seek(self.block_bytes)  # skip header
            while remaining > 0:
                block = handle.read(self.block_bytes)
                in_block = min(self.records_per_block, remaining)
                records = self.codec.decode_many(
                    block[: in_block * self.codec.record_bytes]
                )
                remaining -= in_block
                for record in records:
                    yield record
                self.blocks_read += 1
                if self._on_block_exhausted is not None:
                    self._on_block_exhausted()
