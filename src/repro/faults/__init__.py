"""Fault injection and resilience for the multi-disk merge.

The paper's model assumes ``D`` perfectly reliable, identical disks;
this subsystem drops that assumption.  A declarative, JSON-serializable
:class:`FaultPlan` schedules per-drive faults -- transient read errors,
fail-slow episodes, and full outages with optional recovery -- and a
seeded :class:`FaultInjector` replays them deterministically inside the
drive service loop.  The response side (capped-backoff retries, demand
re-queueing, and a degraded mode that drops flapping drives from
inter-run prefetch target selection) lives in the same plan, so one
JSON file describes both the failure scenario and the policy under
test.

Quickstart::

    from repro import SimulationConfig, MergeSimulation, PrefetchStrategy
    from repro.faults import fail_slow_plan

    config = SimulationConfig(
        num_runs=25, num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=10,
        fault_plan=fail_slow_plan(drive=0, factor=4.0),
    )
    result = MergeSimulation(config).run()

or from the command line: ``python -m repro run all --faults plan.json``.
"""

from repro.faults.injector import (
    DriveOfflineError,
    FaultError,
    FaultExhaustedError,
    FaultInjector,
)
from repro.faults.plan import (
    FaultPlan,
    OutageFault,
    RetryPolicy,
    SlowdownFault,
    TransientFault,
    fail_slow_plan,
    load_plan,
    transient_plan,
)

__all__ = [
    "DriveOfflineError",
    "FaultError",
    "FaultExhaustedError",
    "FaultInjector",
    "FaultPlan",
    "OutageFault",
    "RetryPolicy",
    "SlowdownFault",
    "TransientFault",
    "fail_slow_plan",
    "load_plan",
    "transient_plan",
]
