"""Declarative, JSON-serializable fault plans.

A :class:`FaultPlan` schedules per-drive faults against the input disk
array of one simulated merge:

* :class:`TransientFault` -- each service attempt on the drive fails
  with probability ``probability`` while the window is active; the
  drive retries under the plan's :class:`RetryPolicy`.
* :class:`SlowdownFault` -- a fail-slow episode: seek, rotation, and
  transfer times are multiplied by ``factor`` while active
  (overlapping episodes compound multiplicatively).
* :class:`OutageFault` -- the drive services nothing during the
  window; ``end_ms=None`` means the drive never recovers (the merge
  then fails with :class:`~repro.faults.injector.DriveOfflineError`
  once a request needs it).

The plan also carries the *response* knobs: the retry policy (capped
exponential backoff with jitter and a per-request attempt budget), an
optional demand-read timeout (a demand request still queued after this
long is re-queued at the head of its drive), and the flapping
thresholds that put a drive into degraded mode (dropped from inter-run
prefetch target selection) until it recovers.

Everything round-trips through :meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`; ``from_dict`` tolerates unknown keys so
plans written by newer schema versions still load.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Optional, Sequence


def _window_active(start_ms: float, end_ms: Optional[float], now: float) -> bool:
    return start_ms <= now and (end_ms is None or now < end_ms)


def _check_window(start_ms: float, end_ms: Optional[float]) -> None:
    if start_ms < 0:
        raise ValueError("start_ms must be non-negative")
    if end_ms is not None and end_ms <= start_ms:
        raise ValueError("end_ms must be greater than start_ms")


def _from_known_keys(cls, data: dict):
    """Build ``cls`` from ``data``, ignoring keys it does not declare."""
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class TransientFault:
    """Per-attempt read errors on one drive during a time window."""

    drive: int
    probability: float
    start_ms: float = 0.0
    end_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.drive < 0:
            raise ValueError("drive must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        _check_window(self.start_ms, self.end_ms)

    def active(self, now: float) -> bool:
        return _window_active(self.start_ms, self.end_ms, now)


@dataclass(frozen=True)
class SlowdownFault:
    """A fail-slow episode: service times multiplied by ``factor``."""

    drive: int
    factor: float
    start_ms: float = 0.0
    end_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.drive < 0:
            raise ValueError("drive must be non-negative")
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        _check_window(self.start_ms, self.end_ms)

    def active(self, now: float) -> bool:
        return _window_active(self.start_ms, self.end_ms, now)


@dataclass(frozen=True)
class OutageFault:
    """A full outage; ``end_ms`` is the recovery time (None = never)."""

    drive: int
    start_ms: float = 0.0
    end_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.drive < 0:
            raise ValueError("drive must be non-negative")
        _check_window(self.start_ms, self.end_ms)

    def active(self, now: float) -> bool:
        return _window_active(self.start_ms, self.end_ms, now)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter and an attempt budget.

    Attempt ``a`` (1-based) that fails waits
    ``min(max_delay_ms, base_delay_ms * multiplier**(a-1))`` scaled by
    a jitter factor drawn uniformly from ``[1 - jitter, 1]`` before the
    drive retries.  A request that fails ``max_attempts`` times is
    abandoned: its events fail and the trial surfaces
    :class:`~repro.faults.injector.FaultExhaustedError`.
    """

    max_attempts: int = 8
    base_delay_ms: float = 1.0
    max_delay_ms: float = 200.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_ms(self, attempt: int, rng: random.Random) -> float:
        """Backoff after the ``attempt``-th (1-based) failed attempt."""
        delay = min(
            self.max_delay_ms,
            self.base_delay_ms * self.multiplier ** (attempt - 1),
        )
        if self.jitter > 0.0:
            delay *= (1.0 - self.jitter) + self.jitter * rng.random()
        return delay

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_ms": self.base_delay_ms,
            "max_delay_ms": self.max_delay_ms,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return _from_known_keys(cls, data)


@dataclass(frozen=True)
class FaultPlan:
    """A full fault-and-response schedule for one simulated merge.

    Attributes:
        transients: per-attempt read-error windows.
        slowdowns: fail-slow episodes.
        outages: full-outage windows.
        retry: backoff policy for failed attempts.
        demand_timeout_ms: a demand request still *queued* (not yet in
            service) after this long is re-queued at the head of its
            drive's queue; ``None`` disables the timeout.
        flap_threshold: this many faults inside ``flap_window_ms`` puts
            the drive into degraded mode until the window drains.
        flap_window_ms: sliding window for flap detection.
    """

    transients: tuple[TransientFault, ...] = ()
    slowdowns: tuple[SlowdownFault, ...] = ()
    outages: tuple[OutageFault, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    demand_timeout_ms: Optional[float] = None
    flap_threshold: int = 3
    flap_window_ms: float = 2000.0

    def __post_init__(self) -> None:
        # JSON-loaded plans arrive as lists of dicts; normalize so the
        # plan is hashable and uniformly typed.
        object.__setattr__(
            self, "transients", _coerce(self.transients, TransientFault)
        )
        object.__setattr__(
            self, "slowdowns", _coerce(self.slowdowns, SlowdownFault)
        )
        object.__setattr__(self, "outages", _coerce(self.outages, OutageFault))
        if isinstance(self.retry, dict):
            object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
        if self.flap_threshold < 1:
            raise ValueError("flap_threshold must be >= 1")
        if self.flap_window_ms <= 0:
            raise ValueError("flap_window_ms must be positive")
        if self.demand_timeout_ms is not None and self.demand_timeout_ms <= 0:
            raise ValueError("demand_timeout_ms must be positive")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the plan cannot change simulation behaviour.

        An empty plan (no faults, no demand timeout) run through the
        injector is byte-identical to running with no injector at all.
        """
        return (
            not self.transients
            and not self.slowdowns
            and not self.outages
            and self.demand_timeout_ms is None
        )

    @property
    def max_drive(self) -> int:
        """Largest drive id any fault names (-1 when none do)."""
        drives = [
            f.drive for f in (*self.transients, *self.slowdowns, *self.outages)
        ]
        return max(drives) if drives else -1

    def validate(self, num_disks: int) -> None:
        """Raise if any fault targets a drive outside ``[0, num_disks)``."""
        if self.max_drive >= num_disks:
            raise ValueError(
                f"fault plan targets drive {self.max_drive} but only "
                f"{num_disks} input disk(s) exist"
            )

    def describe_short(self) -> str:
        """Compact tag for config descriptions, e.g. ``T1/S1/O0``."""
        return (
            f"T{len(self.transients)}/S{len(self.slowdowns)}"
            f"/O{len(self.outages)}"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able snapshot (inverse: :meth:`from_dict`)."""
        return {
            "transients": [
                {
                    "drive": f.drive,
                    "probability": f.probability,
                    "start_ms": f.start_ms,
                    "end_ms": f.end_ms,
                }
                for f in self.transients
            ],
            "slowdowns": [
                {
                    "drive": f.drive,
                    "factor": f.factor,
                    "start_ms": f.start_ms,
                    "end_ms": f.end_ms,
                }
                for f in self.slowdowns
            ],
            "outages": [
                {"drive": f.drive, "start_ms": f.start_ms, "end_ms": f.end_ms}
                for f in self.outages
            ],
            "retry": self.retry.to_dict(),
            "demand_timeout_ms": self.demand_timeout_ms,
            "flap_threshold": self.flap_threshold,
            "flap_window_ms": self.flap_window_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from a JSON dict, ignoring unknown keys."""
        return _from_known_keys(cls, data)

    def to_json(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_json(cls, path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _coerce(entries: Sequence, cls) -> tuple:
    return tuple(
        entry if isinstance(entry, cls) else _from_known_keys(cls, entry)
        for entry in entries
    )


def load_plan(path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    return FaultPlan.from_json(path)


def fail_slow_plan(
    drive: int = 0,
    factor: float = 4.0,
    start_ms: float = 0.0,
    end_ms: Optional[float] = None,
    **kwargs,
) -> FaultPlan:
    """One fail-slow drive; extra kwargs forward to :class:`FaultPlan`."""
    return FaultPlan(
        slowdowns=(
            SlowdownFault(
                drive=drive, factor=factor, start_ms=start_ms, end_ms=end_ms
            ),
        ),
        **kwargs,
    )


def transient_plan(
    probability: float,
    drives: Sequence[int] = (0,),
    **kwargs,
) -> FaultPlan:
    """Uniform per-attempt read-error probability on ``drives``."""
    return FaultPlan(
        transients=tuple(
            TransientFault(drive=d, probability=probability) for d in drives
        ),
        **kwargs,
    )
