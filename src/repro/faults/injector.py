"""The pluggable fault injector consulted by the drive service loop.

One :class:`FaultInjector` instance is shared by every drive of a
trial.  It answers four questions, all as pure functions of the plan,
the virtual time, and its *own* seeded random stream:

* :meth:`slowdown_factor` -- service-time multiplier right now,
* :meth:`outage_until` -- when (if ever) the current outage ends,
* :meth:`attempt_fails` -- does this service attempt hit a read error,
* :meth:`drive_degraded` -- should prefetch planning avoid this drive.

Because the injector draws from its own
:class:`~repro.sim.random_streams.RandomStreams` stream -- and draws
*nothing* while no transient window is active -- installing an
injector with an empty plan leaves every other stream untouched: the
simulation trajectory is byte-identical to running without one.  That
property is what makes faulty runs deterministic and sweep-cacheable;
it is pinned by ``tests/faults/test_fault_determinism.py``.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.faults.plan import FaultPlan, RetryPolicy


class FaultError(RuntimeError):
    """Base class for injected-fault failures surfaced by a trial."""


class FaultExhaustedError(FaultError):
    """A request failed every attempt its retry budget allowed."""


class DriveOfflineError(FaultError):
    """A request needs a drive that is in a permanent outage."""


class FaultInjector:
    """Evaluates a :class:`~repro.faults.plan.FaultPlan` at sim time.

    Args:
        plan: the fault schedule and response policy.
        num_disks: size of the input array (plan drive ids validated
            against it).
        rng: the injector's private random stream; used only for
            transient-error draws and retry jitter.
    """

    def __init__(
        self, plan: FaultPlan, num_disks: int, rng: random.Random
    ) -> None:
        plan.validate(num_disks)
        self.plan = plan
        self.num_disks = num_disks
        self.rng = rng
        self._transients = [
            [f for f in plan.transients if f.drive == d]
            for d in range(num_disks)
        ]
        self._slowdowns = [
            [f for f in plan.slowdowns if f.drive == d]
            for d in range(num_disks)
        ]
        self._outages = [
            [f for f in plan.outages if f.drive == d] for d in range(num_disks)
        ]
        # Recent fault timestamps per drive, for flap detection.
        self._fault_times: list[list[float]] = [[] for _ in range(num_disks)]

    @property
    def retry(self) -> RetryPolicy:
        return self.plan.retry

    @property
    def demand_timeout_ms(self) -> Optional[float]:
        return self.plan.demand_timeout_ms

    # ------------------------------------------------------------------
    # Fault evaluation
    # ------------------------------------------------------------------
    def slowdown_factor(self, drive: int, now: float) -> float:
        """Service-time multiplier (overlapping episodes compound)."""
        factor = 1.0
        for episode in self._slowdowns[drive]:
            if episode.active(now):
                factor *= episode.factor
        return factor

    def outage_until(self, drive: int, now: float) -> Optional[float]:
        """End time of the outage covering ``now``, or ``None``.

        Returns ``math.inf`` for a permanent outage.
        """
        until: Optional[float] = None
        for outage in self._outages[drive]:
            if outage.active(now):
                end = math.inf if outage.end_ms is None else outage.end_ms
                until = end if until is None else max(until, end)
        return until

    def attempt_fails(self, drive: int, now: float) -> bool:
        """Draw the transient-error outcome for one service attempt.

        Consumes randomness only while a transient window is active on
        ``drive``, so fault-free periods leave the stream untouched.
        """
        for fault in self._transients[drive]:
            if fault.active(now) and fault.probability > 0.0:
                if self.rng.random() < fault.probability:
                    return True
        return False

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def record_fault(self, drive: int, now: float) -> None:
        """Note one observed fault (for flap detection)."""
        times = self._fault_times[drive]
        times.append(now)
        cutoff = now - self.plan.flap_window_ms
        while times and times[0] < cutoff:
            times.pop(0)

    def flapping(self, drive: int, now: float) -> bool:
        """True when recent faults crossed the flap threshold."""
        cutoff = now - self.plan.flap_window_ms
        recent = [t for t in self._fault_times[drive] if t >= cutoff]
        return len(recent) >= self.plan.flap_threshold

    def drive_degraded(self, drive: int, now: float) -> bool:
        """Should inter-run prefetching avoid this drive right now?

        A drive is degraded while it is in an outage, inside a
        fail-slow episode, or flapping (too many recent transient
        faults).  It recovers -- and rejoins prefetch target selection
        -- as soon as none of those hold.
        """
        if self.outage_until(drive, now) is not None:
            return True
        if self.slowdown_factor(drive, now) > 1.0:
            return True
        return self.flapping(drive, now)
