"""Trace collection: per-trial event streams behind cheap guards.

The simulation never imports an exporter or touches the filesystem;
it holds (at most) a :class:`TrialTrace` and calls :meth:`span` /
:meth:`instant` on it.  Every call site is guarded by ``if trace is
not None`` so an untraced run pays exactly one attribute load and
branch per *potential* emission -- the zero-overhead-when-off
contract enforced by the bench-smoke comparison.

A :class:`TraceSession` owns the trials of one observed scope (one
``RunContext(trace=...)``): each :class:`MergeTrial` that starts while
the session is ambient registers one :class:`TrialTrace`, identified
by its seed and configuration description.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import SERVICE_KINDS, EventKind, TraceEvent
from repro.obs.registry import MetricsRegistry

#: Histogram bounds for queue depth (requests, not ms).
_QUEUE_DEPTH_BOUNDS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class TrialTrace:
    """The events and live instruments of one seeded trial."""

    __slots__ = (
        "trial_index",
        "seed",
        "config_description",
        "events",
        "registry",
    )

    def __init__(
        self,
        trial_index: int,
        seed: int,
        config_description: str = "",
    ) -> None:
        self.trial_index = trial_index
        self.seed = seed
        self.config_description = config_description
        self.events: list[TraceEvent] = []
        self.registry = MetricsRegistry()

    # -- emission hooks (hot path; guarded by the caller) ---------------
    def span(
        self,
        kind: EventKind,
        track: str,
        start_ms: float,
        end_ms: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record a closed interval (emitted at its end)."""
        self.events.append(
            TraceEvent(kind, track, start_ms, end_ms - start_ms, args)
        )

    def instant(
        self,
        kind: EventKind,
        track: str,
        ts_ms: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record a point event."""
        self.events.append(TraceEvent(kind, track, ts_ms, None, args))

    def observe_queue_depth(self, track: str, depth: int) -> None:
        """Queue length seen by a request arriving at a drive."""
        self.registry.histogram(
            "queue_depth", bounds=_QUEUE_DEPTH_BOUNDS, track=track
        ).observe(float(depth))

    def observe_service(self, track: str, kind_value: str, service_ms: float,
                        queue_wait_ms: float) -> None:
        """One completed request's service and queue-wait durations."""
        self.registry.histogram(
            "service_ms", kind=kind_value, track=track
        ).observe(service_ms)
        self.registry.histogram("queue_wait_ms", track=track).observe(
            queue_wait_ms
        )

    def observe_stall(self, stall_ms: float) -> None:
        """One demand-stall duration on the CPU track."""
        self.registry.histogram("demand_stall_ms").observe(stall_ms)

    # -- analysis helpers ----------------------------------------------
    def finalize(self, metrics) -> None:
        """Snapshot the trial's :class:`MergeMetrics` into the registry."""
        self.registry.snapshot_metrics(metrics)

    def service_busy_ms(self, disk: int) -> float:
        """Sum of service-span durations on one disk track.

        Request services on a drive never overlap, so this equals the
        drive's ``DriveStats.busy_ms`` (pinned to 1e-6 ms by
        ``tests/obs/test_trace_consistency.py``).
        """
        track = f"disk-{disk}"
        return sum(
            event.duration_ms
            for event in self.events
            if event.track == track
            and event.kind in SERVICE_KINDS
            and event.duration_ms is not None
        )

    def events_of(self, kind: EventKind) -> list[TraceEvent]:
        return [event for event in self.events if event.kind is kind]

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`from_dict`)."""
        return {
            "trial_index": self.trial_index,
            "seed": self.seed,
            "config_description": self.config_description,
            "events": [event.to_dict() for event in self.events],
            "registry": self.registry.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialTrace":
        """Inverse of :meth:`to_dict`."""
        trial = cls(
            trial_index=data["trial_index"],
            seed=data["seed"],
            config_description=data.get("config_description", ""),
        )
        trial.events = [
            TraceEvent.from_dict(event) for event in data.get("events", [])
        ]
        trial.registry = MetricsRegistry.from_dict(data.get("registry", {}))
        return trial


class TraceSession:
    """All trials observed while one trace scope was active.

    Usually created through ``RunContext(trace=True)`` (or by passing
    an explicit session as ``trace=``), then exported::

        with configure(trace=True) as ctx:
            MergeSimulation(config).run()
        ctx.trace.export_chrome("merge.json")
    """

    __slots__ = ("name", "trials")

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.trials: list[TrialTrace] = []

    def trial(self, seed: int, config_description: str = "") -> TrialTrace:
        """Register (and return) the trace of a newly started trial."""
        trace = TrialTrace(
            trial_index=len(self.trials),
            seed=seed,
            config_description=config_description,
        )
        self.trials.append(trace)
        return trace

    @property
    def total_events(self) -> int:
        return sum(len(trial.events) for trial in self.trials)

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "trials": [trial.to_dict() for trial in self.trials],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSession":
        """Inverse of :meth:`to_dict`."""
        session = cls(name=data.get("name", "trace"))
        session.trials = [
            TrialTrace.from_dict(trial) for trial in data.get("trials", [])
        ]
        return session

    # -- export conveniences (see repro.obs.export) ---------------------
    def to_chrome(self) -> dict:
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def export_chrome(self, path) -> None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, path)

    def export_jsonl(self, path) -> None:
        from repro.obs.export import write_jsonl

        write_jsonl(self, path)

    def render_timeline(self, width: int = 72, trial: int = 0) -> str:
        from repro.obs.export import render_timeline

        return render_timeline(self.trials[trial], width=width)
