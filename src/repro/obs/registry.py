"""The metrics registry: named counters, gauges, and histograms.

Where the trace collector records *what happened when*, the registry
records *how much*: monotonically increasing counters, last-value
gauges, and fixed-bucket histograms, each identified by a name plus
sorted ``key=value`` labels (``queue_depth{disk=0}``).

Two populations feed a traced trial's registry:

* **live** instruments updated from the same guard-checked hooks that
  emit trace events (queue depth at submission, per-request service
  times, stall durations), and
* an **end-of-trial snapshot** of the scalar counters the simulation
  already aggregates into :class:`~repro.core.metrics.MergeMetrics`
  (per-drive utilization, stall time, cache occupancy).

The snapshot direction is deliberate: ``MergeMetrics`` stays the
canonical result object -- byte-identical with tracing on or off --
and the registry mirrors it for export, never the other way around.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

#: Default histogram bucket upper bounds (ms for durations; the last
#: implicit bucket is +inf).
DEFAULT_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)


def _instrument_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "value")

    def __init__(self, key: str, value: float = 0.0) -> None:
        self.key = key
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A last-value measurement."""

    __slots__ = ("key", "value")

    def __init__(self, key: str, value: float = 0.0) -> None:
        self.key = key
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket distribution: counts per upper bound, plus sum."""

    __slots__ = ("key", "bounds", "counts", "count", "total")

    def __init__(
        self,
        key: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS_MS,
        counts: Optional[list[int]] = None,
        count: int = 0,
        total: float = 0.0,
    ) -> None:
        self.key = key
        self.bounds = tuple(bounds)
        # One slot per bound plus the overflow (+inf) bucket.
        self.counts = (
            list(counts) if counts is not None else [0] * (len(self.bounds) + 1)
        )
        self.count = count
        self.total = total

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of instruments, deterministic to export.

    Instruments are stored in creation order; :meth:`to_dict` sorts by
    key so snapshots diff cleanly regardless of code path order.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = _instrument_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = _instrument_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(key)
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS_MS,
        **labels,
    ) -> Histogram:
        key = _instrument_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(key, bounds)
        return instrument

    def instruments(self) -> Iterable[Instrument]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    # -- end-of-trial snapshot -----------------------------------------
    def snapshot_metrics(self, metrics) -> None:
        """Mirror one trial's :class:`MergeMetrics` into instruments.

        Counters/gauges named here are the registry view of the same
        quantities the metrics object reports; the trial's live
        histograms (service times, queue depth) are left untouched.
        """
        elapsed = metrics.total_time_ms
        self.counter("blocks_depleted").inc(metrics.blocks_depleted)
        self.counter("blocks_fetched").inc(metrics.blocks_fetched)
        self.counter("fetch_requests").inc(metrics.fetch_requests)
        self.counter("demand_situations").inc(metrics.demand_situations)
        self.counter("demand_timeouts").inc(metrics.demand_timeouts)
        self.counter("degraded_skips").inc(metrics.degraded_skips)
        self.counter("stall_ms", kind="cpu").inc(metrics.cpu_stall_ms)
        self.counter("stall_ms", kind="write").inc(metrics.write_stall_ms)
        self.counter("stall_ms", kind="fault").inc(metrics.fault_stall_ms)
        self.gauge("total_time_ms").set(elapsed)
        self.gauge("cache_occupancy", stat="mean").set(
            metrics.cache_mean_occupancy
        )
        self.gauge("cache_occupancy", stat="peak").set(
            float(metrics.cache_peak_occupancy)
        )
        self.gauge("cache_free", stat="min").set(float(metrics.cache_min_free))
        self.gauge("disk_concurrency", stat="mean").set(
            metrics.average_concurrency
        )
        self.gauge("disk_concurrency", stat="peak").set(
            float(metrics.peak_concurrency)
        )
        for disk, stats in enumerate(metrics.drive_stats):
            self.counter("drive_busy_ms", disk=disk).inc(stats.busy_ms)
            self.counter("drive_requests", disk=disk).inc(stats.requests)
            self.counter("drive_faults", disk=disk).inc(stats.faults)
            self.counter("drive_retries", disk=disk).inc(stats.retries)
            self.gauge("drive_utilization", disk=disk).set(
                stats.busy_ms / elapsed if elapsed > 0 else 0.0
            )
            self.gauge("drive_max_queue", disk=disk).set(
                float(stats.max_queue_length)
            )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able snapshot, keys sorted (see :meth:`from_dict`)."""
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value for key in sorted(self._gauges)
            },
            "histograms": {
                key: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                }
                for key, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict`."""
        registry = cls()
        for key, value in data.get("counters", {}).items():
            registry._counters[key] = Counter(key, value)
        for key, value in data.get("gauges", {}).items():
            registry._gauges[key] = Gauge(key, value)
        for key, payload in data.get("histograms", {}).items():
            registry._histograms[key] = Histogram(
                key,
                bounds=payload["bounds"],
                counts=payload["counts"],
                count=payload["count"],
                total=payload["total"],
            )
        return registry
