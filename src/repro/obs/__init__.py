"""repro.obs — structured tracing, metrics, and trace exporters.

The observability layer of the simulator: typed span/instant events
(:mod:`repro.obs.events`) collected per trial
(:mod:`repro.obs.collector`), a counters/gauges/histograms registry
(:mod:`repro.obs.registry`), and exporters for Chrome ``trace_event``
JSON, JSONL, and a text timeline (:mod:`repro.obs.export`).

Tracing is off unless a :class:`TraceSession` is made ambient through
:class:`repro.api.RunContext`; with it off, the simulation pays only
``if trace is not None`` guards.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.collector import TraceSession, TrialTrace
from repro.obs.events import SERVICE_KINDS, EventKind, TraceEvent, track_sort_key
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    print_timeline,
    render_timeline,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.schema import (
    load_schema,
    validate_chrome_trace,
    validate_chrome_trace_file,
)

__all__ = [
    "Counter",
    "EventKind",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SERVICE_KINDS",
    "TraceEvent",
    "TraceSession",
    "TrialTrace",
    "chrome_trace",
    "jsonl_lines",
    "load_schema",
    "print_timeline",
    "render_timeline",
    "track_sort_key",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
