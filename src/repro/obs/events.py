"""The event taxonomy of the observability layer.

A :class:`TraceEvent` is one timestamped thing the simulation did:
either a **span** (``duration_ms > 0`` or a zero-length interval that
still has semantic extent, e.g. a zero-cost CPU merge step recorded as
an instant) or an **instant** (``duration_ms is None``).  Events carry
the virtual-time clock of the simulation kernel, never a wall clock --
two identically seeded trials emit identical event streams on either
kernel, which is what makes traces diffable and cacheable.

Every event lives on a *track*: ``"cpu"`` for the merge process,
``"disk-0" .. "disk-D-1"`` for the input drives, ``"write-0" ..`` for
the output array.  Exporters map tracks to Chrome ``tid``s / text
timeline rows deterministically (CPU first, then disks by number).
"""

from __future__ import annotations

import enum
from typing import Optional


class EventKind(enum.Enum):
    """What one trace event records (the taxonomy of the layer).

    Spans (have a duration):

    * ``DEMAND_FETCH`` / ``PREFETCH``: one whole request service at a
      drive, from service start to completion (retries included) --
      their per-drive sums equal ``DriveStats.busy_ms`` exactly.
    * ``SEEK`` / ``ROTATION`` / ``TRANSFER``: the mechanical phases
      inside one service attempt.
    * ``CPU_MERGE``: merging the records of one block (a span when
      ``cpu_ms_per_block > 0``, an instant otherwise).
    * ``DEMAND_STALL``: the CPU waiting for a demand block.
    * ``WRITE_STALL``: the CPU blocked on write-buffer backpressure.
    * ``RETRY_BACKOFF``: a drive waiting out its retry delay.
    * ``OUTAGE_WAIT``: a drive sleeping through an injected outage.

    Instants (a point in virtual time):

    * ``FAULT``: one failed service attempt (transient read error).
    * ``DRIVE_DEGRADED``: the planner skipped a degraded drive.
    * ``DEMAND_TIMEOUT``: a demand stall exceeded its timeout and the
      stalled requests were escalated at their drives.

    Coordinator instants (``repro.dist``; wall-clock ms from the
    injected Clock seam on the ``"coordinator"`` track, not virtual
    simulation time):

    * ``LEASE_GRANTED``: a shard lease handed to a worker.
    * ``LEASE_RENEWED``: a heartbeat extended a live lease.
    * ``LEASE_EXPIRED``: a lease outlived its TTL and its shard was
      returned to the pending pool (the crash-recovery path).
    * ``SHARD_COMPLETE``: a worker streamed a shard's results back and
      the shard was settled.
    """

    DEMAND_FETCH = "demand-fetch"
    PREFETCH = "prefetch"
    SEEK = "seek"
    ROTATION = "rotation"
    TRANSFER = "transfer"
    CPU_MERGE = "cpu-merge"
    DEMAND_STALL = "demand-stall"
    WRITE_STALL = "write-stall"
    RETRY_BACKOFF = "retry-backoff"
    OUTAGE_WAIT = "outage-wait"
    FAULT = "fault"
    DRIVE_DEGRADED = "drive-degraded"
    DEMAND_TIMEOUT = "demand-timeout"
    LEASE_GRANTED = "lease-granted"
    LEASE_RENEWED = "lease-renewed"
    LEASE_EXPIRED = "lease-expired"
    SHARD_COMPLETE = "shard-complete"


#: Kinds whose per-drive span durations partition the drive's busy time.
SERVICE_KINDS = (EventKind.DEMAND_FETCH, EventKind.PREFETCH)


class TraceEvent:
    """One span or instant on one track (times in virtual ms).

    Slotted on purpose: traced runs emit one object per block merged
    plus several per I/O request, and the collector holds them all
    until export.
    """

    __slots__ = ("kind", "track", "start_ms", "duration_ms", "args")

    def __init__(
        self,
        kind: EventKind,
        track: str,
        start_ms: float,
        duration_ms: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        self.kind = kind
        self.track = track
        self.start_ms = start_ms
        self.duration_ms = duration_ms
        self.args = args

    @property
    def is_span(self) -> bool:
        return self.duration_ms is not None

    @property
    def end_ms(self) -> float:
        """Span end (== start for instants)."""
        if self.duration_ms is None:
            return self.start_ms
        return self.start_ms + self.duration_ms

    def to_dict(self) -> dict:
        """JSON-able snapshot (see :meth:`from_dict`)."""
        data: dict = {
            "kind": self.kind.value,
            "track": self.track,
            "start_ms": self.start_ms,
        }
        if self.duration_ms is not None:
            data["duration_ms"] = self.duration_ms
        if self.args is not None:
            data["args"] = self.args
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=EventKind(data["kind"]),
            track=data["track"],
            start_ms=data["start_ms"],
            duration_ms=data.get("duration_ms"),
            args=data.get("args"),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.track == other.track
            and self.start_ms == other.start_ms
            and self.duration_ms == other.duration_ms
            and self.args == other.args
        )

    def __repr__(self) -> str:
        extent = (
            f"+{self.duration_ms:.3f}ms" if self.duration_ms is not None else "!"
        )
        return (
            f"TraceEvent({self.kind.value} @{self.start_ms:.3f}ms {extent} "
            f"on {self.track})"
        )


def track_sort_key(track: str) -> tuple[int, int, str]:
    """Deterministic track ordering: cpu, disk-0..N, write-0..N, rest."""
    for rank, prefix in ((1, "disk-"), (2, "write-")):
        if track.startswith(prefix):
            suffix = track[len(prefix):]
            if suffix.isdigit():
                return (rank, int(suffix), track)
    if track == "cpu":
        return (0, 0, track)
    return (3, 0, track)
