"""Exporters: Chrome ``trace_event`` JSON, JSONL, and a text timeline.

All exporters are pure functions over an already-collected
:class:`~repro.obs.collector.TraceSession` / ``TrialTrace`` -- the
simulation itself never imports this module, so tracing hooks stay
import-light.

The Chrome exporter targets the ``trace_event`` JSON object format
(the ``{"traceEvents": [...]}`` envelope) that Perfetto and
``chrome://tracing`` load directly: one *process* per trial, one
*thread* per track, ``"X"`` complete events for spans and ``"i"``
instants, timestamps in microseconds of virtual simulation time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO, Union

from repro.obs.events import EventKind, TraceEvent, track_sort_key

#: Chrome event categories by kind (used for filtering in the UI).
_CATEGORIES = {
    EventKind.DEMAND_FETCH: "io",
    EventKind.PREFETCH: "io",
    EventKind.SEEK: "mechanics",
    EventKind.ROTATION: "mechanics",
    EventKind.TRANSFER: "mechanics",
    EventKind.CPU_MERGE: "cpu",
    EventKind.DEMAND_STALL: "stall",
    EventKind.WRITE_STALL: "stall",
    EventKind.RETRY_BACKOFF: "faults",
    EventKind.OUTAGE_WAIT: "faults",
    EventKind.FAULT: "faults",
    EventKind.DRIVE_DEGRADED: "faults",
    EventKind.DEMAND_TIMEOUT: "faults",
    EventKind.LEASE_GRANTED: "dist",
    EventKind.LEASE_RENEWED: "dist",
    EventKind.LEASE_EXPIRED: "dist",
    EventKind.SHARD_COMPLETE: "dist",
}


def _track_ids(trial) -> dict[str, int]:
    """Deterministic track -> tid mapping (cpu first, disks by number)."""
    tracks = sorted({event.track for event in trial.events}, key=track_sort_key)
    return {track: tid for tid, track in enumerate(tracks)}


def _chrome_event(event: TraceEvent, pid: int, tid: int) -> dict:
    payload: dict = {
        "name": event.kind.value,
        "cat": _CATEGORIES[event.kind],
        "pid": pid,
        "tid": tid,
        "ts": event.start_ms * 1000.0,  # virtual ms -> trace µs
    }
    if event.is_span:
        payload["ph"] = "X"
        payload["dur"] = event.duration_ms * 1000.0
    else:
        payload["ph"] = "i"
        payload["s"] = "t"  # thread-scoped instant
    if event.args:
        payload["args"] = event.args
    return payload


def chrome_trace(session) -> dict:
    """The session as a Chrome ``trace_event`` JSON object.

    One trace process per trial (named after its seed), one thread per
    track.  Loadable in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.
    """
    events: list[dict] = []
    for trial in session.trials:
        pid = trial.trial_index + 1  # pid 0 renders oddly in Perfetto
        label = f"trial {trial.trial_index} (seed {trial.seed})"
        if trial.config_description:
            label += f" · {trial.config_description}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        track_ids = _track_ids(trial)
        for track, tid in track_ids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for event in trial.events:
            events.append(_chrome_event(event, pid, track_ids[event.track]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "session": session.name,
            "trials": len(session.trials),
        },
    }


def write_chrome_trace(session, path: Union[str, Path]) -> None:
    """Write :func:`chrome_trace` output to ``path`` as JSON."""
    payload = chrome_trace(session)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")


def jsonl_lines(session) -> list[dict]:
    """The session as a flat record stream (one dict per line).

    Record types: ``trial`` (header with seed and config), ``event``
    (one trace event, tagged with its trial), and ``registry`` (the
    trial's metrics snapshot).  Grep-friendly and streamable.
    """
    lines: list[dict] = []
    for trial in session.trials:
        lines.append(
            {
                "type": "trial",
                "trial": trial.trial_index,
                "seed": trial.seed,
                "config": trial.config_description,
            }
        )
        for event in trial.events:
            record = {"type": "event", "trial": trial.trial_index}
            record.update(event.to_dict())
            lines.append(record)
        lines.append(
            {
                "type": "registry",
                "trial": trial.trial_index,
                "registry": trial.registry.to_dict(),
            }
        )
    return lines


def write_jsonl(session, path: Union[str, Path]) -> None:
    """Write :func:`jsonl_lines` to ``path``, one JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in jsonl_lines(session):
            json.dump(line, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")


#: One display character per kind for the text timeline.
_TIMELINE_MARKS = {
    EventKind.DEMAND_FETCH: "D",
    EventKind.PREFETCH: "p",
    EventKind.SEEK: "~",
    EventKind.ROTATION: "~",
    EventKind.TRANSFER: "=",
    EventKind.CPU_MERGE: "#",
    EventKind.DEMAND_STALL: "s",
    EventKind.WRITE_STALL: "w",
    EventKind.RETRY_BACKOFF: "r",
    EventKind.OUTAGE_WAIT: "o",
    EventKind.FAULT: "!",
    EventKind.DRIVE_DEGRADED: "x",
    EventKind.DEMAND_TIMEOUT: "T",
    EventKind.LEASE_GRANTED: "L",
    EventKind.LEASE_RENEWED: "h",
    EventKind.LEASE_EXPIRED: "e",
    EventKind.SHARD_COMPLETE: "C",
}

#: Kinds that win when several map onto the same timeline cell
#: (faults over stalls over service over mechanics).
_MARK_PRIORITY = (
    EventKind.SEEK,
    EventKind.ROTATION,
    EventKind.TRANSFER,
    EventKind.CPU_MERGE,
    EventKind.PREFETCH,
    EventKind.DEMAND_FETCH,
    EventKind.WRITE_STALL,
    EventKind.DEMAND_STALL,
    EventKind.OUTAGE_WAIT,
    EventKind.RETRY_BACKOFF,
    EventKind.DRIVE_DEGRADED,
    EventKind.DEMAND_TIMEOUT,
    EventKind.FAULT,
    # Coordinator instants: never share a track with simulation events,
    # but ordered here (expiry over renewals) for completeness.
    EventKind.LEASE_GRANTED,
    EventKind.LEASE_RENEWED,
    EventKind.SHARD_COMPLETE,
    EventKind.LEASE_EXPIRED,
)
_PRIORITY = {kind: rank for rank, kind in enumerate(_MARK_PRIORITY)}


def render_timeline(trial, width: int = 72) -> str:
    """One row per track, ``width`` virtual-time buckets per row.

    Generalizes :func:`repro.core.tracing.render_gantt` (which draws
    demand/prefetch service on disk rows) to every track and kind the
    collector knows: the CPU row shows merge work (``#``) and stalls
    (``s``/``w``), disk rows show service (``D``/``p``), retries
    (``r``), outages (``o``) and faults (``!``).
    """
    if not trial.events:
        return "(no events)"
    horizon = max(event.end_ms for event in trial.events)
    if horizon <= 0:
        horizon = 1.0
    scale = width / horizon
    tracks = sorted({event.track for event in trial.events}, key=track_sort_key)
    rows = {track: [" "] * width for track in tracks}
    ranks = {track: [-1] * width for track in tracks}
    for event in trial.events:
        first = min(int(event.start_ms * scale), width - 1)
        last = min(int(event.end_ms * scale), width - 1)
        mark = _TIMELINE_MARKS[event.kind]
        rank = _PRIORITY[event.kind]
        row, row_ranks = rows[event.track], ranks[event.track]
        for cell in range(first, last + 1):
            if rank >= row_ranks[cell]:
                row[cell] = mark
                row_ranks[cell] = rank
    label_width = max(len(track) for track in tracks)
    header = (
        f"trial {trial.trial_index} seed {trial.seed}: "
        f"0 .. {horizon:.1f} ms ({horizon / width:.2f} ms/col)"
    )
    legend = (
        "legend: #=merge s=stall w=write-stall D=demand p=prefetch "
        "r=retry o=outage !=fault x=degraded T=timeout"
    )
    lines = [header]
    for track in tracks:
        lines.append(f"{track.rjust(label_width)} |{''.join(rows[track])}|")
    lines.append(legend)
    return "\n".join(lines)


def write_trace(session, path: Union[str, Path]) -> str:
    """Write the session in the format implied by ``path``'s suffix.

    ``.jsonl`` -> JSONL event log; anything else -> Chrome trace JSON.
    Returns the format written (``"jsonl"`` or ``"chrome"``).
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        write_jsonl(session, path)
        return "jsonl"
    write_chrome_trace(session, path)
    return "chrome"


def print_timeline(session, stream: TextIO, width: int = 72) -> None:
    """Render every trial's timeline to ``stream``."""
    for index, trial in enumerate(session.trials):
        if index:
            stream.write("\n")
        stream.write(render_timeline(trial, width=width))
        stream.write("\n")
