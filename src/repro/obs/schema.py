"""Zero-dependency validation of exported Chrome traces.

The schema itself is data, checked in at
``docs/schemas/chrome_trace_schema.json`` so external consumers (CI,
other tools) can validate artifacts without importing this package.
:func:`validate` implements the subset of JSON Schema that file uses
-- ``type``, ``properties``, ``required``, ``additionalProperties``,
``items``, ``enum``, ``minimum`` -- in the same hand-rolled style as
``repro.bench.harness.validate_report``.

Beyond the structural schema, :func:`validate_chrome_trace` checks the
semantic invariants Perfetto relies on: every ``"X"`` event has
``ts``/``dur``, every ``"i"`` event has ``ts`` and a scope, and every
(pid, tid) seen on a timed event was introduced by metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

_SCHEMA_PATH = (
    Path(__file__).resolve().parents[3] / "docs" / "schemas"
    / "chrome_trace_schema.json"
)

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def load_schema() -> dict:
    """The checked-in Chrome-trace schema document."""
    with open(_SCHEMA_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def validate(value, schema: dict, path: str = "$") -> list[str]:
    """Errors from checking ``value`` against a schema subset.

    Returns a flat list of ``"<json-path>: <problem>"`` strings; empty
    means valid.  Only the keywords the checked-in schema uses are
    interpreted (unknown keywords are ignored, like JSON Schema).
    """
    errors: list[str] = []
    expected_type = schema.get("type")
    if expected_type is not None:
        check = _TYPE_CHECKS.get(expected_type)
        if check is None:
            errors.append(f"{path}: schema uses unsupported type "
                          f"{expected_type!r}")
            return errors
        if not check(value):
            errors.append(
                f"{path}: expected {expected_type}, "
                f"got {type(value).__name__}"
            )
            return errors
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value!r} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, item in value.items():
            if key in properties:
                errors.extend(validate(item, properties[key], f"{path}.{key}"))
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{index}]"))
    return errors


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural plus semantic errors for one exported trace document."""
    errors = validate(document, load_schema())
    if errors:
        return errors
    named: set[tuple[int, int]] = set()
    for index, event in enumerate(document["traceEvents"]):
        where = f"$.traceEvents[{index}]"
        phase = event["ph"]
        if phase == "M":
            named.add((event["pid"], event["tid"]))
            continue
        if "ts" not in event:
            errors.append(f"{where}: {phase!r} event missing 'ts'")
        if phase == "X" and "dur" not in event:
            errors.append(f"{where}: complete event missing 'dur'")
        if phase == "i" and "s" not in event:
            errors.append(f"{where}: instant event missing scope 's'")
        if (event["pid"], event["tid"]) not in named:
            errors.append(
                f"{where}: pid/tid ({event['pid']}, {event['tid']}) "
                "has no metadata name"
            )
    return errors


def validate_chrome_trace_file(path: Union[str, Path]) -> list[str]:
    """Validate a trace file on disk (parse errors become one finding)."""
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"$: cannot read trace: {error}"]
    return validate_chrome_trace(document)
