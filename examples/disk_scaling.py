#!/usr/bin/env python3
"""How merge time scales with the number of disks, per strategy.

Sweeps D for a fixed workload and compares the measured speedup over
one disk against the paper's two analytical ceilings:

* intra-run prefetching: concurrency saturates at the urn-game value
  E(L) = sqrt(pi*D/2) - 1/3 -- adding disks stops paying off;
* inter-run prefetching: approaches the full D-fold transfer bound.

Run:  python examples/disk_scaling.py
"""

from repro import PrefetchStrategy, SimulationConfig
from repro.analysis import expected_concurrency
from repro.core.simulator import MergeSimulation

K_RUNS = 24  # divisible by every swept D
BLOCKS_PER_RUN = 150
DEPTH = 12
TRIALS = 2
DISK_COUNTS = [1, 2, 3, 4, 6, 8, 12]


def measure(strategy: PrefetchStrategy, disks: int) -> float:
    config = SimulationConfig(
        num_runs=K_RUNS,
        num_disks=disks,
        strategy=strategy,
        prefetch_depth=DEPTH,
        blocks_per_run=BLOCKS_PER_RUN,
        trials=TRIALS,
    )
    return MergeSimulation(config).run().total_time_s.mean


def main() -> None:
    print(f"k={K_RUNS} runs of {BLOCKS_PER_RUN} blocks, N={DEPTH}\n")
    intra_base = measure(PrefetchStrategy.INTRA_RUN, 1)
    inter_base = measure(PrefetchStrategy.INTER_RUN, 1)

    print(f"{'D':>3s} {'intra (s)':>10s} {'speedup':>8s} {'urn E(L)':>9s}"
          f" {'inter (s)':>10s} {'speedup':>8s} {'ideal':>6s}")
    for disks in DISK_COUNTS:
        intra = measure(PrefetchStrategy.INTRA_RUN, disks)
        inter = measure(PrefetchStrategy.INTER_RUN, disks)
        print(
            f"{disks:3d} {intra:10.2f} {intra_base / intra:8.2f} "
            f"{expected_concurrency(disks):9.2f} "
            f"{inter:10.2f} {inter_base / inter:8.2f} {disks:6d}"
        )

    print(
        "\nIntra-run speedup tracks the urn-game column, not D: past a few\n"
        "disks the array idles.  Inter-run prefetching (with enough cache)\n"
        "keeps scaling toward the ideal D-fold speedup."
    )


if __name__ == "__main__":
    main()
