#!/usr/bin/env python3
"""Capacity planning: how much cache does a target merge time need?

The scenario the paper motivates: a database server must merge k sorted
runs off a D-disk array within a time budget, and RAM for the block
cache is the scarce resource.  This example sweeps the cache size for
inter-run prefetching at several fetch depths N, finds the cheapest
(cache, N) meeting the budget, and prints the full trade-off surface --
exactly the Figure 3.5/3.6 trade-off, used as a sizing tool.

Run:  python examples/capacity_planning.py
"""

from repro import PrefetchStrategy, SimulationConfig
from repro.analysis import lower_bound_total_s
from repro.core.simulator import MergeSimulation

K_RUNS = 25
DISKS = 5
BLOCKS_PER_RUN = 200
TRIALS = 2
DEPTHS = [1, 5, 10]
CACHES = [25, 50, 100, 150, 250, 400, 600, 800]


def measure(depth: int, cache: int):
    config = SimulationConfig(
        num_runs=K_RUNS,
        num_disks=DISKS,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=depth,
        cache_capacity=cache,
        blocks_per_run=BLOCKS_PER_RUN,
        trials=TRIALS,
    )
    return MergeSimulation(config).run()


def main() -> None:
    bound = lower_bound_total_s(
        K_RUNS, DISKS, SimulationConfig(num_runs=K_RUNS, num_disks=DISKS).disk,
        blocks_per_run=BLOCKS_PER_RUN,
    )
    budget = bound * 1.5
    print(f"Transfer-time floor: {bound:.2f}s -- budget set to 1.5x = "
          f"{budget:.2f}s\n")

    header = "cache  " + "".join(f"   N={n:<2d} time/sr   " for n in DEPTHS)
    print(header)
    cheapest: tuple[int, int, float] | None = None
    for cache in CACHES:
        cells = [f"{cache:5d}"]
        for depth in DEPTHS:
            if cache < K_RUNS * depth:
                cells.append("      (too small) ")
                continue
            result = measure(depth, cache)
            time_s = result.total_time_s.mean
            ratio = result.success_ratio.mean
            marker = "*" if time_s <= budget else " "
            cells.append(f"  {time_s:7.2f}/{ratio:4.2f}{marker}  ")
            if time_s <= budget and (cheapest is None or cache < cheapest[0]):
                cheapest = (cache, depth, time_s)
        print("".join(cells))

    print("\n(* meets the budget)")
    if cheapest:
        cache, depth, time_s = cheapest
        print(
            f"\nCheapest configuration meeting {budget:.2f}s: "
            f"cache={cache} blocks ({cache * 4} KiB) with N={depth} "
            f"-> {time_s:.2f}s"
        )
    else:
        print("\nNo swept configuration meets the budget; increase cache.")

    print(
        "\nReading the surface: small caches favour small N (concurrency\n"
        "beats amortization); large caches let a bigger N amortize seek\n"
        "and rotation without starving the success ratio."
    )


if __name__ == "__main__":
    main()
