#!/usr/bin/env python3
"""Sort real records end to end, then cost the merge's I/O.

Uses the record-level external mergesort -- run formation, loser-tree
k-way merge -- on several key distributions, then feeds the *actual*
block-depletion trace of each merge into the multi-disk I/O simulator
and compares against the paper's random-depletion model.

This is the bridge between the abstract model and a real sort: for
independent runs (uniform keys) the random model is accurate; for
correlated data (nearly sorted) runs deplete one after another and
multi-disk prefetching behaves very differently.

Run:  python examples/sort_real_data.py
"""

from repro import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.mergesort import ExternalMergesort, make_records
from repro.mergesort.external import trace_driven_metrics
from repro.workloads import generators

K_RUNS = 8
BLOCKS_PER_RUN = 100
RECORDS_PER_BLOCK = 16
DISKS = 4
MEMORY_RECORDS = BLOCKS_PER_RUN * RECORDS_PER_BLOCK
TOTAL_RECORDS = K_RUNS * MEMORY_RECORDS


def merge_config() -> SimulationConfig:
    return SimulationConfig(
        num_runs=K_RUNS,
        num_disks=DISKS,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=5,
        cache_capacity=K_RUNS * 5 * 4,
        blocks_per_run=BLOCKS_PER_RUN,
        trials=2,
    )


def main() -> None:
    print(f"Sorting {TOTAL_RECORDS} records ({K_RUNS} runs of "
          f"{BLOCKS_PER_RUN} blocks) and costing the merge on "
          f"{DISKS} disks\n")

    random_model = MergeSimulation(merge_config()).run()
    print(f"{'workload':16s} {'runs':>5s} {'passes':>7s} "
          f"{'sim time (s)':>13s} {'vs model':>9s}")
    print(f"{'(random model)':16s} {'-':>5s} {'-':>7s} "
          f"{random_model.total_time_s.mean:13.3f} {'-':>9s}")

    workloads = {
        "uniform": generators.uniform_keys(TOTAL_RECORDS, seed=11),
        "gaussian": generators.gaussian_keys(TOTAL_RECORDS, seed=12),
        "zipf": generators.zipf_keys(TOTAL_RECORDS, seed=13),
        "nearly-sorted": generators.nearly_sorted_keys(TOTAL_RECORDS, seed=14),
    }
    sorter = ExternalMergesort(
        memory_records=MEMORY_RECORDS, records_per_block=RECORDS_PER_BLOCK
    )
    for name, keys in workloads.items():
        stats = sorter.sort(make_records(keys))  # verifies correctness
        metrics = trace_driven_metrics(stats, merge_config())
        delta = (
            100.0
            * (metrics.total_time_s - random_model.total_time_s.mean)
            / random_model.total_time_s.mean
        )
        print(
            f"{name:16s} {stats.initial_runs:5d} {stats.merge_passes:7d} "
            f"{metrics.total_time_s:13.3f} {delta:+8.1f}%"
        )

    print(
        "\nUniform/gaussian/zipf keys give independent runs whose blocks\n"
        "deplete in a near-random interleave -- the Kwan-Baer model the\n"
        "paper assumes.  Nearly-sorted input drains runs sequentially:\n"
        "prefetches for the 'wrong' runs sit in cache and the merge\n"
        "behaves like a single-stream scan."
    )


if __name__ == "__main__":
    main()
